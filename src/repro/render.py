"""Human-readable rendering of instances (Figure 1 / Figure 2 style).

Produces the two views the paper's figures use: an indented tree of the
graph structure (with edge labels, types and values), and the tabular
listing of ``lch`` / ``card`` / OPF / VPF entries that Figure 2 prints.
Intended for examples, debugging and doctest-style documentation — the
output is deterministic.
"""

from __future__ import annotations

from repro.core.instance import ProbabilisticInstance
from repro.semistructured.graph import EdgeLabeledGraph, Oid
from repro.semistructured.instance import SemistructuredInstance


def _format_child_set(child_set: frozenset) -> str:
    if not child_set:
        return "{}"
    return "{" + ", ".join(sorted(child_set)) + "}"


def render_tree(
    instance: SemistructuredInstance, max_depth: int | None = None
) -> str:
    """An indented tree view of a semistructured instance.

    Shared objects (DAGs) are expanded once and referenced afterwards
    with ``*`` (the rendering equivalent of the XML codec's refs).
    """
    lines: list[str] = []
    seen: set[Oid] = set()

    def describe(oid: Oid) -> str:
        parts = [oid]
        leaf_type = instance.tau(oid)
        if leaf_type is not None:
            parts.append(f": {leaf_type.name}")
        value = instance.val(oid)
        if value is not None:
            parts.append(f" = {value!r}")
        return "".join(parts)

    def walk(oid: Oid, prefix: str, label: str | None, depth: int) -> None:
        tag = f"--{label}--> " if label is not None else ""
        if oid in seen:
            lines.append(f"{prefix}{tag}{oid} *")
            return
        seen.add(oid)
        lines.append(f"{prefix}{tag}{describe(oid)}")
        if max_depth is not None and depth >= max_depth:
            if instance.children(oid):
                lines.append(f"{prefix}  ...")
            return
        for child in sorted(instance.children(oid)):
            walk(child, prefix + "  ", instance.label(oid, child), depth + 1)

    walk(instance.root, "", None, 0)
    return "\n".join(lines)


def render_weak_graph(graph: EdgeLabeledGraph, root: Oid) -> str:
    """An indented view of a weak instance graph."""
    helper = SemistructuredInstance(root)
    for src, dst, label in graph.edges():
        helper.add_edge(src, dst, label)
    return render_tree(helper)


def render_tables(pi: ProbabilisticInstance) -> str:
    """The Figure 2 tabular view: lch, card, OPFs and VPFs."""
    weak = pi.weak
    lines: list[str] = []

    lines.append("o          l            lch(o, l)")
    for oid in sorted(weak.objects):
        for label in sorted(weak.labels_of(oid)):
            children = _format_child_set(weak.lch(oid, label))
            lines.append(f"{oid:<10} {label:<12} {children}")

    lines.append("")
    lines.append("o          l            card(o, l)")
    any_card = False
    for oid in sorted(weak.objects):
        for label in sorted(weak.labels_of(oid)):
            if weak.has_explicit_card(oid, label):
                any_card = True
                lines.append(f"{oid:<10} {label:<12} {weak.card(oid, label)}")
    if not any_card:
        lines.append("(all unconstrained)")

    for oid in sorted(weak.non_leaves()):
        opf = pi.opf(oid)
        if opf is None:
            continue
        lines.append("")
        lines.append(f"c in PC({oid})          p({oid})(c)")
        for child_set, probability in opf.to_tabular().items_sorted():
            lines.append(f"{_format_child_set(child_set):<22} {probability:.6g}")

    for oid in sorted(weak.leaves()):
        vpf = pi.effective_vpf(oid)
        if vpf is None:
            continue
        lines.append("")
        lines.append(f"v in dom(tau({oid}))    p({oid})(v)")
        for value, probability in vpf.to_tabular().items_sorted():
            lines.append(f"{value!r:<22} {probability:.6g}")

    return "\n".join(lines)


def render_instance(pi: ProbabilisticInstance) -> str:
    """Structure view plus probability tables, separated by a rule."""
    structure = render_weak_graph(pi.weak.graph(), pi.root)
    return f"{structure}\n{'-' * 40}\n{render_tables(pi)}"


def to_dot(pi: ProbabilisticInstance) -> str:
    """Graphviz DOT of the weak instance graph, annotated with marginals.

    Nodes show the object id (and type/default value for leaves); edges
    show the label and the child's marginal inclusion probability under
    its parent's OPF.  Paste into ``dot -Tpng`` or any DOT viewer.
    """
    weak = pi.weak
    lines = ["digraph pxml {", "  rankdir=TB;", "  node [shape=box];"]
    for oid in sorted(weak.objects):
        attributes = [f'label="{oid}']
        leaf_type = weak.tau(oid)
        if leaf_type is not None:
            attributes[0] += f"\\n{leaf_type.name}"
        if weak.is_leaf(oid):
            vpf = pi.effective_vpf(oid)
            if vpf is not None:
                entries = sorted(vpf.support(), key=lambda kv: -kv[1])
                if len(entries) == 1:
                    attributes[0] += f" = {entries[0][0]}"
                else:
                    attributes[0] += f" ~ {len(entries)} values"
        attributes[0] += '"'
        if weak.is_leaf(oid):
            attributes.append("style=rounded")
        lines.append(f'  "{oid}" [{", ".join(attributes)}];')
    for oid in sorted(weak.non_leaves()):
        opf = pi.opf(oid)
        for label in sorted(weak.labels_of(oid)):
            for child in sorted(weak.lch(oid, label)):
                marginal = opf.marginal_inclusion(child) if opf else None
                text = label if marginal is None else f"{label}\\np={marginal:.3f}"
                lines.append(f'  "{oid}" -> "{child}" [label="{text}"];')
    lines.append("}")
    return "\n".join(lines)


def render_distribution(
    distribution, limit: int = 20, min_probability: float = 0.0
) -> str:
    """Render a :class:`GlobalInterpretation` as a ranked world list."""
    rows = sorted(distribution.support(), key=lambda kv: -kv[1])
    lines = []
    shown = 0
    for world, probability in rows:
        if probability < min_probability or shown >= limit:
            break
        objects = ", ".join(sorted(world.objects - {world.root}))
        values = ", ".join(
            f"{oid}={world.val(oid)!r}"
            for oid in sorted(world.objects)
            if world.val(oid) is not None
        )
        detail = f" [{values}]" if values else ""
        lines.append(f"{probability:8.5f}  {{{objects}}}{detail}")
        shown += 1
    remaining = len(rows) - shown
    if remaining > 0:
        lines.append(f"... and {remaining} more worlds")
    return "\n".join(lines)
