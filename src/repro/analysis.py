"""Analysis utilities over probabilistic instances and world distributions.

The paper motivates keeping query results as probabilistic instances so
"further enquiries (e.g., about probabilities) can be made"; this module
supplies the enquiries that are about the *distributions themselves*:
entropies, expected instance size, divergences between interpretations,
and summary statistics of an instance's local functions.

Exact computations enumerate worlds where needed (small instances); the
per-object quantities (local entropies, expected size on trees) work at
any scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.instance import ProbabilisticInstance
from repro.errors import SemanticsError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid


def _entropy(probabilities) -> float:
    return -sum(p * math.log2(p) for p in probabilities if p > 0.0)


def opf_entropy(pi: ProbabilisticInstance, oid: Oid) -> float:
    """The Shannon entropy (bits) of an object's child-set choice."""
    opf = pi.opf(oid)
    if opf is None:
        raise SemanticsError(f"object {oid!r} has no OPF")
    return _entropy(p for _, p in opf.support())


def vpf_entropy(pi: ProbabilisticInstance, oid: Oid) -> float:
    """The Shannon entropy (bits) of a leaf's value choice."""
    vpf = pi.effective_vpf(oid)
    if vpf is None:
        raise SemanticsError(f"object {oid!r} has no VPF")
    return _entropy(p for _, p in vpf.support())


def world_entropy(pi: ProbabilisticInstance) -> float:
    """The entropy (bits) of the full distribution over compatible worlds.

    Exact, by enumeration — exponential in instance size.
    """
    interpretation = GlobalInterpretation.from_local(pi)
    return _entropy(p for _, p in interpretation.support())


def local_entropy_total(pi: ProbabilisticInstance) -> float:
    """The sum of all local (OPF and VPF) entropies.

    On a tree this upper-bounds :func:`world_entropy` (children of absent
    objects never get sampled, so their entropy is not always spent).
    """
    total = 0.0
    for _, opf in pi.interpretation.opf_items():
        total += _entropy(p for _, p in opf.support())
    for oid in pi.weak.leaves():
        vpf = pi.effective_vpf(oid)
        if vpf is not None:
            total += _entropy(p for _, p in vpf.support())
    return total


def existence_probability(pi: ProbabilisticInstance, oid: Oid) -> float:
    """``P(o occurs)`` on a *tree-structured* instance, in closed form.

    The product of marginal inclusion probabilities up the (unique)
    parent chain.
    """
    graph = pi.weak.graph()
    if not graph.is_tree(pi.root):
        raise SemanticsError("closed-form existence needs a tree; use the BN engine")
    probability = 1.0
    current = oid
    while current != pi.root:
        (parent,) = graph.parents(current)
        opf = pi.opf(parent)
        if opf is None:
            return 0.0
        probability *= opf.marginal_inclusion(current)
        if probability == 0.0:
            return 0.0
        current = parent
    return probability


def expected_size(pi: ProbabilisticInstance) -> float:
    """The expected number of objects in a compatible world (trees).

    ``E[|S|] = sum_o P(o occurs)`` by linearity — no enumeration needed.
    """
    return sum(existence_probability(pi, oid) for oid in pi.objects)


def kl_divergence(
    p: GlobalInterpretation, q: GlobalInterpretation
) -> float:
    """``KL(p || q)`` in bits; infinite when q misses mass p has."""
    total = 0.0
    for world, probability in p.support():
        other = q.prob(world)
        if other <= 0.0:
            return math.inf
        total += probability * math.log2(probability / other)
    return max(total, 0.0)


def total_variation(p: GlobalInterpretation, q: GlobalInterpretation) -> float:
    """Total-variation distance ``(1/2) sum |p - q|`` in [0, 1]."""
    worlds = {w for w, _ in p.support()} | {w for w, _ in q.support()}
    return 0.5 * sum(abs(p.prob(w) - q.prob(w)) for w in worlds)


@dataclass(frozen=True)
class InstanceSummary:
    """Shape and uncertainty statistics for a probabilistic instance."""

    objects: int
    non_leaves: int
    leaves: int
    interpretation_entries: int
    max_opf_support: int
    mean_opf_entropy: float
    is_tree: bool
    expected_objects: float | None   # None for non-trees

    def __str__(self) -> str:
        expected = (
            f"{self.expected_objects:.2f}" if self.expected_objects is not None
            else "n/a (DAG)"
        )
        return (
            f"objects={self.objects} (non-leaves={self.non_leaves}, "
            f"leaves={self.leaves}), entries={self.interpretation_entries}, "
            f"max |support|={self.max_opf_support}, "
            f"mean OPF entropy={self.mean_opf_entropy:.3f} bits, "
            f"tree={self.is_tree}, E[|S|]={expected}"
        )


def summarize(pi: ProbabilisticInstance) -> InstanceSummary:
    """Compute an :class:`InstanceSummary` (cheap; no enumeration)."""
    opf_sizes = []
    opf_entropies = []
    for _, opf in pi.interpretation.opf_items():
        support = list(opf.support())
        opf_sizes.append(len(support))
        opf_entropies.append(_entropy(p for _, p in support))
    is_tree = pi.weak.graph().is_tree(pi.root)
    return InstanceSummary(
        objects=len(pi),
        non_leaves=len(pi.weak.non_leaves()),
        leaves=len(pi.weak.leaves()),
        interpretation_entries=pi.total_interpretation_entries(),
        max_opf_support=max(opf_sizes, default=0),
        mean_opf_entropy=(
            sum(opf_entropies) / len(opf_entropies) if opf_entropies else 0.0
        ),
        is_tree=is_tree,
        expected_objects=expected_size(pi) if is_tree else None,
    )
