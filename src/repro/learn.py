"""Learning a probabilistic instance from observed worlds.

The paper's motivation is data produced by noisy processes (extraction,
sensors); in practice one often has a *corpus of observed semistructured
instances* and wants the probabilistic instance that explains it.  For
fully-observed worlds this is closed-form maximum likelihood, and it is
exactly the empirical counterpart of the Theorem 2 factorization:

* the weak instance is the union of everything observed (``lch`` from
  observed labeled edges, ``card`` from the observed per-label count
  ranges, types from observed leaf types);
* each object's OPF is the frequency of its child sets *among the worlds
  containing the object* (Definition 4.5's conditional);
* each leaf's VPF is the frequency of its observed values.

``smoothing`` adds Laplace pseudo-counts over the *observed* support
(PXML's ``PC(o)`` can be astronomically large, so smoothing over all of
it would be both intractable and statistically silly).

Consistency — learning from samples of a known instance recovers it as
the sample count grows — is verified in ``tests/test_learn.py``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.cardinality import CardinalityInterval
from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.potential import ChildSet
from repro.core.weak_instance import WeakInstance
from repro.errors import ModelError
from repro.semistructured.graph import Label, Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import LeafType, Value

WeightedWorld = tuple[SemistructuredInstance, float]


def _normalize_corpus(
    worlds: Iterable[SemistructuredInstance | WeightedWorld],
) -> list[WeightedWorld]:
    corpus: list[WeightedWorld] = []
    for entry in worlds:
        if isinstance(entry, SemistructuredInstance):
            corpus.append((entry, 1.0))
        else:
            world, weight = entry
            if weight < 0.0:
                raise ModelError("world weights must be non-negative")
            corpus.append((world, float(weight)))
    if not corpus or sum(weight for _, weight in corpus) <= 0.0:
        raise ModelError("the corpus must contain positively weighted worlds")
    roots = {world.root for world, _ in corpus}
    if len(roots) != 1:
        raise ModelError(f"worlds disagree on the root: {sorted(roots)}")
    return corpus


def learn_instance(
    worlds: Iterable[SemistructuredInstance | WeightedWorld],
    smoothing: float = 0.0,
) -> ProbabilisticInstance:
    """Maximum-likelihood probabilistic instance for a corpus of worlds.

    Args:
        worlds: observed semistructured instances, optionally weighted
            (pass ``(world, weight)`` pairs; plain worlds weigh 1).  All
            must share the same root object id.
        smoothing: Laplace pseudo-count added to every *observed* child
            set / value of an object before normalizing.

    Raises:
        ModelError: on empty corpora, disagreeing roots, conflicting edge
            labels, or conflicting leaf types.
    """
    corpus = _normalize_corpus(worlds)
    root = corpus[0][0].root

    weak = WeakInstance(root)
    edge_labels: dict[tuple[Oid, Oid], Label] = {}
    lch: dict[Oid, dict[Label, set[Oid]]] = {}
    leaf_types: dict[Oid, LeafType] = {}
    presence: dict[Oid, float] = {}
    choice_counts: dict[Oid, dict[ChildSet, float]] = {}
    value_counts: dict[Oid, dict[Value, float]] = {}
    label_counts: dict[tuple[Oid, Label], list[int]] = {}

    # Pass 1: structure — every observed labeled edge and leaf type.
    for world, _ in corpus:
        for src, dst, label in world.edges():
            previous = edge_labels.get((src, dst))
            if previous is not None and previous != label:
                raise ModelError(
                    f"edge ({src!r}, {dst!r}) observed with labels "
                    f"{previous!r} and {label!r}"
                )
            edge_labels[(src, dst)] = label
            lch.setdefault(src, {}).setdefault(label, set()).add(dst)
        for oid, leaf_type, _value in world.typed_leaves():
            previous_type = leaf_types.get(oid)
            if previous_type is not None and previous_type != leaf_type:
                raise ModelError(f"leaf {oid!r} observed with two types")
            leaf_types[oid] = leaf_type

    # Pass 2: statistics — child-set choices, values, per-label counts.
    for world, weight in corpus:
        if weight == 0.0:
            continue
        for oid in world.objects:
            presence[oid] = presence.get(oid, 0.0) + weight
            children = world.children(oid)
            if oid in lch:  # a non-leaf of the learned weak instance
                choice = frozenset(children)
                by_choice = choice_counts.setdefault(oid, {})
                by_choice[choice] = by_choice.get(choice, 0.0) + weight
            value = world.val(oid)
            if value is not None:
                by_value = value_counts.setdefault(oid, {})
                by_value[value] = by_value.get(value, 0.0) + weight
            by_label: dict[Label, int] = {}
            for child in children:
                label = world.label(oid, child)
                by_label[label] = by_label.get(label, 0) + 1
            for label in lch.get(oid, {}):
                count = by_label.get(label, 0)
                bounds = label_counts.setdefault((oid, label), [count, count])
                bounds[0] = min(bounds[0], count)
                bounds[1] = max(bounds[1], count)

    # -- assemble the weak instance --------------------------------------
    for oid, by_label in lch.items():
        weak.add_object(oid)
        for label, children in by_label.items():
            weak.set_lch(oid, label, children)
    for (oid, label), (low, high) in label_counts.items():
        weak.set_card(oid, label, CardinalityInterval(low, high))
    for oid, leaf_type in leaf_types.items():
        if oid in weak:
            weak.set_type(oid, leaf_type)

    # -- local interpretation (conditional frequencies) -------------------
    interp = LocalInterpretation()
    for oid, by_choice in choice_counts.items():
        if oid not in weak or weak.is_leaf(oid):
            continue  # objects only ever seen childless stay leaves
        table = {
            choice: count + smoothing for choice, count in by_choice.items()
        }
        total = sum(table.values())
        interp.set_opf(
            oid, TabularOPF({c: n / total for c, n in table.items()})
        )
    for oid, by_value in value_counts.items():
        if oid not in weak:
            continue
        table = {value: count + smoothing for value, count in by_value.items()}
        total = sum(table.values())
        interp.set_vpf(
            oid, TabularVPF({v: n / total for v, n in table.items()})
        )
    return ProbabilisticInstance(weak, interp)


def log_likelihood(
    pi: ProbabilisticInstance,
    worlds: Sequence[SemistructuredInstance],
) -> float:
    """``sum_i log P_p(world_i)`` — ``-inf`` if any world is impossible."""
    import math

    from repro.semantics.compatible import world_probability

    total = 0.0
    for world in worlds:
        probability = world_probability(pi, world)
        if probability <= 0.0:
            return -math.inf
        total += math.log(probability)
    return total
