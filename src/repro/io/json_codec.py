"""JSON (de)serialization of instances.

Disk writes are a *measured component* of the paper's experiments (for
selection they dominate the total query time), so the codec is part of the
system, not an afterthought.  The format is versioned and round-trips
every model feature: ``lch``, explicit ``card``, types, default values,
tabular and independent OPFs, and VPFs.

Leaf values must be JSON-representable scalars (str, int, float, bool).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.core.cardinality import CardinalityInterval
from repro.core.compact import IndependentOPF
from repro.core.distributions import (
    ObjectProbabilityFunction,
    TabularOPF,
    TabularVPF,
)
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.errors import CodecError, CorruptInstanceError
from repro.resilience.faults import fault_point
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import LeafType, TypeRegistry

FORMAT_PROBABILISTIC = "pxml-probabilistic-instance"
FORMAT_SEMISTRUCTURED = "pxml-semistructured-instance"
VERSION = 1

_SCALARS = (str, int, float, bool)


def _check_scalar(value: Any) -> Any:
    if not isinstance(value, _SCALARS):
        raise CodecError(
            f"value {value!r} is not JSON-serializable (need str/int/float/bool)"
        )
    return value


# ----------------------------------------------------------------------
# Probabilistic instances
# ----------------------------------------------------------------------
def encode_instance(pi: ProbabilisticInstance) -> dict:
    """Encode a probabilistic instance as a JSON-ready dict."""
    types: dict[str, list] = {}
    objects: dict[str, dict] = {}
    weak = pi.weak
    for oid in sorted(weak.objects):
        entry: dict[str, Any] = {}
        lch = {
            label: sorted(children)
            for label, children in weak.lch_map(oid).items()
        }
        if lch:
            entry["lch"] = lch
        card = {
            label: [weak.card(oid, label).min, weak.card(oid, label).max]
            for label in weak.labels_of(oid)
            if weak.has_explicit_card(oid, label)
        }
        if card:
            entry["card"] = card
        leaf_type = weak.tau(oid)
        if leaf_type is not None:
            types[leaf_type.name] = [_check_scalar(v) for v in leaf_type.domain]
            entry["type"] = leaf_type.name
        default = weak.val(oid)
        if default is not None:
            entry["val"] = _check_scalar(default)
        opf = pi.opf(oid)
        if opf is not None:
            entry["opf"] = _encode_opf(opf)
        vpf = pi.vpf(oid)
        if vpf is not None:
            entry["vpf"] = [
                [_check_scalar(v), p] for v, p in vpf.to_tabular().items_sorted()
            ]
        objects[oid] = entry
    return {
        "format": FORMAT_PROBABILISTIC,
        "version": VERSION,
        "root": pi.root,
        "types": types,
        "objects": objects,
    }


def _encode_opf(opf: ObjectProbabilityFunction) -> dict:
    if isinstance(opf, IndependentOPF):
        return {"kind": "independent", "inclusion": opf.inclusion}
    tabular = opf if isinstance(opf, TabularOPF) else opf.to_tabular()
    return {
        "kind": "tabular",
        "entries": [[sorted(c), p] for c, p in tabular.items_sorted()],
    }


def decode_instance(data: dict) -> ProbabilisticInstance:
    """Decode a dict produced by :func:`encode_instance`."""
    if data.get("format") != FORMAT_PROBABILISTIC:
        raise CodecError(f"unexpected format: {data.get('format')!r}")
    if data.get("version") != VERSION:
        raise CodecError(f"unsupported version: {data.get('version')!r}")
    registry = TypeRegistry(
        LeafType(name, domain) for name, domain in data.get("types", {}).items()
    )
    weak = WeakInstance(data["root"])
    interp = LocalInterpretation()
    objects = data.get("objects", {})
    for oid in objects:
        weak.add_object(oid)
    for oid, entry in objects.items():
        for label, children in entry.get("lch", {}).items():
            weak.set_lch(oid, label, children)
        for label, (low, high) in entry.get("card", {}).items():
            weak.set_card(oid, label, CardinalityInterval(low, high))
        if "type" in entry:
            weak.set_type(oid, registry[entry["type"]])
        if "val" in entry:
            weak.set_val(oid, entry["val"])
        if "opf" in entry:
            interp.set_opf(oid, _decode_opf(entry["opf"]))
        if "vpf" in entry:
            interp.set_vpf(oid, TabularVPF({v: p for v, p in entry["vpf"]}))
    return ProbabilisticInstance(weak, interp)


def _decode_opf(data: dict) -> ObjectProbabilityFunction:
    kind = data.get("kind")
    if kind == "independent":
        return IndependentOPF(data["inclusion"])
    if kind == "tabular":
        return TabularOPF({frozenset(c): p for c, p in data["entries"]})
    raise CodecError(f"unknown OPF kind: {kind!r}")


# ----------------------------------------------------------------------
# Semistructured instances
# ----------------------------------------------------------------------
def encode_semistructured(instance: SemistructuredInstance) -> dict:
    """Encode an ordinary semistructured instance."""
    types: dict[str, list] = {}
    leaves = []
    for oid, leaf_type, value in sorted(instance.typed_leaves()):
        types[leaf_type.name] = [_check_scalar(v) for v in leaf_type.domain]
        leaves.append([oid, leaf_type.name, _check_scalar(value)])
    return {
        "format": FORMAT_SEMISTRUCTURED,
        "version": VERSION,
        "root": instance.root,
        "objects": sorted(instance.objects),
        "edges": sorted([src, dst, label] for src, dst, label in instance.edges()),
        "types": types,
        "leaves": leaves,
    }


def decode_semistructured(data: dict) -> SemistructuredInstance:
    """Decode a dict produced by :func:`encode_semistructured`."""
    if data.get("format") != FORMAT_SEMISTRUCTURED:
        raise CodecError(f"unexpected format: {data.get('format')!r}")
    registry = TypeRegistry(
        LeafType(name, domain) for name, domain in data.get("types", {}).items()
    )
    instance = SemistructuredInstance(data["root"])
    for oid in data.get("objects", []):
        instance.add_object(oid)
    for src, dst, label in data.get("edges", []):
        instance.add_edge(src, dst, label)
    for oid, type_name, value in data.get("leaves", []):
        instance.set_leaf(oid, registry[type_name], value)
    return instance


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def dumps(pi: ProbabilisticInstance, indent: int | None = None) -> str:
    """Serialize a probabilistic instance to a JSON string."""
    return json.dumps(encode_instance(pi), indent=indent)


def loads(text: str) -> ProbabilisticInstance:
    """Deserialize a probabilistic instance from a JSON string."""
    return decode_instance(json.loads(text))


def checksum_sidecar(path: str | Path) -> Path:
    """The checksum-sidecar path of an instance file."""
    path = Path(path)
    return path.with_name(path.name + ".sha256")


def content_checksum(text: str) -> str:
    """The hex SHA-256 digest of an instance file's text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _replace_atomically(payload: str, target: Path) -> None:
    """Publish ``payload`` at ``target`` via tmp file + fsync + replace.

    Readers see either the old bytes or the new bytes, never a torn
    mixture: the payload is fully written and flushed to a sibling tmp
    file first, and ``os.replace`` swaps it in as one atomic rename.
    """
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point(f"codec.write.tmp:{target.name}")
        fault_point("codec.write.tmp")
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def replace_atomically(payload: str, target: str | Path) -> Path:
    """Atomically publish arbitrary text at ``target`` (public form).

    Same guarantee as instance writes: tmp file + fsync + ``os.replace``,
    so concurrent readers and crash recovery see either the complete old
    text or the complete new text.  Used by every catalog-adjacent
    read-modify-write (bench records, generation counter).
    """
    target = Path(target)
    _replace_atomically(payload, target)
    return target


def write_payload(payload: str, path: str | Path) -> int:
    """Atomically publish an already-serialized instance at ``path``.

    The data file is published with tmp-file + fsync + ``os.replace``
    (crash-safe: never torn), then a ``<name>.sha256`` sidecar records
    the content checksum :func:`read_instance` verifies.  A crash in the
    tiny window between the two replaces leaves a fresh data file with a
    stale sidecar; that surfaces on load as
    :class:`~repro.errors.CorruptInstanceError` — a clean, typed error
    the catalog's quarantine policy can absorb, and that the write-ahead
    journal (:mod:`repro.storage.journal`) repairs on reopen by
    recomputing the sidecar from the journaled payload checksum — never
    a wrong answer.  Returns the number of characters written.

    Split out of :func:`write_instance` so the catalog can checksum the
    payload *before* publication (the journal's begin record must carry
    the checksum of the bytes about to land on disk).
    """
    path = Path(path)
    _replace_atomically(payload, path)
    fault_point("codec.write.replace")
    _replace_atomically(content_checksum(payload) + "\n", checksum_sidecar(path))
    fault_point("codec.write.sidecar")
    return len(payload)


def write_instance(pi: ProbabilisticInstance, path: str | Path) -> int:
    """Atomically write a probabilistic instance to ``path``.

    ``dumps`` + :func:`write_payload`; see there for the crash-safety
    contract.  Returns the number of characters written.
    """
    payload = dumps(pi)
    corrupted = fault_point("codec.write.payload", payload)
    payload = corrupted if corrupted is not None else payload
    return write_payload(payload, path)


def read_instance(path: str | Path) -> ProbabilisticInstance:
    """Read a probabilistic instance from ``path``, verifying integrity.

    When a checksum sidecar exists its digest must match the file text;
    any mismatch — and any undecodable payload — raises
    :class:`~repro.errors.CorruptInstanceError` (a
    :class:`~repro.errors.CodecError`).  ``OSError`` s propagate for the
    caller's retry/translation layer.
    """
    path = Path(path)
    fault_point(f"codec.read.open:{path.name}")
    fault_point("codec.read.open")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    text = fault_point("codec.read", text)
    sidecar = checksum_sidecar(path)
    try:
        recorded = sidecar.read_text(encoding="utf-8").strip()
    except OSError:
        recorded = None
    if recorded is not None and recorded != content_checksum(text):
        raise CorruptInstanceError(
            f"checksum mismatch for {path}: file does not match its "
            f"{sidecar.name} sidecar (torn write or bit rot)"
        )
    try:
        return loads(text)
    except CorruptInstanceError:
        raise
    except (json.JSONDecodeError, ValueError, KeyError, TypeError) as exc:
        raise CorruptInstanceError(
            f"cannot decode {path}: {type(exc).__name__}: {exc}"
        ) from exc
