"""Serialization: a lossless JSON codec for probabilistic instances and an
XML codec for semistructured worlds."""

from repro.io import compact_codec, json_codec, xml_codec
from repro.io.corpus import iter_corpus, read_corpus, write_corpus
from repro.io.json_codec import (
    decode_instance,
    decode_semistructured,
    encode_instance,
    encode_semistructured,
    read_instance,
    write_instance,
)
from repro.io.xml_codec import read_world, write_world

__all__ = [
    "compact_codec",
    "decode_instance",
    "decode_semistructured",
    "encode_instance",
    "encode_semistructured",
    "iter_corpus",
    "json_codec",
    "read_corpus",
    "read_instance",
    "read_world",
    "write_corpus",
    "write_instance",
    "write_world",
    "xml_codec",
]
