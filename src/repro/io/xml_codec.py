"""XML (de)serialization of semistructured worlds.

Compatible worlds are ordinary semistructured instances — exactly the
data classic XML tooling consumes — so this codec renders them as XML and
parses them back.  Because instances may be DAGs, an object shared by
several parents is emitted in full once and referenced afterwards with a
``<pxml-ref oid="..." label="..."/>`` element (the OEM convention).

Element tags are the *incoming edge labels*; the root uses the fixed tag
``pxml-root``.  Object ids, types and values travel in attributes.
Values are stringified on write, so reading yields string values; the
codec is meant for interchange and display, while the JSON codec is the
lossless round-trip format.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.errors import CodecError
from repro.semistructured.graph import Oid
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import LeafType, TypeRegistry

ROOT_TAG = "pxml-root"
REF_TAG = "pxml-ref"


def to_element(instance: SemistructuredInstance) -> ET.Element:
    """Render a semistructured instance as an ElementTree element."""
    emitted: set[Oid] = set()

    def emit(oid: Oid, tag: str) -> ET.Element:
        if oid in emitted:
            return ET.Element(REF_TAG, {"oid": oid, "label": tag})
        emitted.add(oid)
        element = ET.Element(tag, {"oid": oid})
        leaf_type = instance.tau(oid)
        if leaf_type is not None:
            element.set("type", leaf_type.name)
            element.set("domain", "|".join(str(v) for v in leaf_type.domain))
        value = instance.val(oid)
        if value is not None:
            element.set("value", str(value))
        for child in sorted(instance.children(oid)):
            element.append(emit(child, instance.label(oid, child)))
        return element

    return emit(instance.root, ROOT_TAG)


def dumps(instance: SemistructuredInstance) -> str:
    """Serialize a semistructured instance to an XML string."""
    element = to_element(instance)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def from_element(element: ET.Element) -> SemistructuredInstance:
    """Rebuild a semistructured instance from an element tree."""
    if element.tag != ROOT_TAG:
        raise CodecError(f"expected root tag {ROOT_TAG!r}, got {element.tag!r}")
    root_oid = element.get("oid")
    if root_oid is None:
        raise CodecError("root element lacks an oid attribute")
    registry = TypeRegistry()
    instance = SemistructuredInstance(root_oid)

    def annotate(node: ET.Element, oid: Oid) -> None:
        type_name = node.get("type")
        if type_name is not None:
            domain = node.get("domain", "").split("|")
            if type_name not in registry:
                registry.add(LeafType(type_name, domain))
            instance.set_type(oid, registry[type_name])
        value = node.get("value")
        if value is not None:
            instance.set_value(oid, value)

    def walk(node: ET.Element, oid: Oid) -> None:
        annotate(node, oid)
        for child in node:
            child_oid = child.get("oid")
            if child_oid is None:
                raise CodecError("element without oid attribute")
            if child.tag == REF_TAG:
                label = child.get("label")
                if label is None:
                    raise CodecError(f"reference to {child_oid!r} lacks a label")
                instance.add_edge(oid, child_oid, label)
            else:
                instance.add_edge(oid, child_oid, child.tag)
                walk(child, child_oid)

    walk(element, root_oid)
    return instance


def loads(text: str) -> SemistructuredInstance:
    """Deserialize a semistructured instance from an XML string."""
    return from_element(ET.fromstring(text))


def write_world(instance: SemistructuredInstance, path: str | Path) -> int:
    """Write a world to ``path`` as XML; returns characters written."""
    payload = dumps(instance)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return len(payload)


def read_world(path: str | Path) -> SemistructuredInstance:
    """Read a world from an XML file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
