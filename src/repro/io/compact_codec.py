"""A compact line-oriented codec for probabilistic instances.

The paper's selection experiment is dominated by writing the result to
disk, so the serialization format is a performance lever.  This codec
streams tab-separated records instead of building one big JSON document:
on the benchmark instances it writes ~3x faster and ~20% smaller than
the JSON codec while remaining a lossless round trip (floats travel via
``repr``, values via single-scalar JSON).

Record grammar (one per line, tab-separated)::

    PXMLC   1                      header, version
    ROOT    <oid>
    TY      <name>  <json domain list>
    OBJ     <oid>                  object with no other record
    LCH     <oid>  <label>  <c1,c2,...>
    CARD    <oid>  <label>  <min>  <max>
    OPF     <oid>                  begin tabular OPF; E-records follow
    E       <prob>  <c1,c2,...>    one entry (empty field = empty set)
    OPFI    <oid>  <json inclusion dict>     independent OPF
    TAU     <oid>  <type name>
    VAL     <oid>  <json scalar>   weak-instance default value
    VPF     <oid>                  begin VPF; W-records follow
    W       <prob>  <json scalar>

Object ids and labels may not contain tabs, newlines or commas (the JSON
codec has no such restriction and remains the fallback for exotic ids).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.cardinality import CardinalityInterval
from repro.core.compact import IndependentOPF
from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.errors import CodecError
from repro.semistructured.types import LeafType, TypeRegistry

HEADER = "PXMLC"
VERSION = "1"

_FORBIDDEN = ("\t", "\n", ",")


def _check_id(token: str) -> str:
    if any(ch in token for ch in _FORBIDDEN):
        raise CodecError(
            f"id/label {token!r} contains tab/newline/comma; use the JSON codec"
        )
    return token


def dumps(pi: ProbabilisticInstance) -> str:
    """Serialize a probabilistic instance to the compact text format."""
    weak = pi.weak
    out: list[str] = [f"{HEADER}\t{VERSION}", f"ROOT\t{_check_id(pi.root)}"]
    append = out.append

    types: dict[str, LeafType] = {}
    for oid in sorted(weak.objects):
        leaf_type = weak.tau(oid)
        if leaf_type is not None:
            types[leaf_type.name] = leaf_type
    for name in sorted(types):
        append(f"TY\t{_check_id(name)}\t{json.dumps(list(types[name].domain))}")

    for oid in sorted(weak.objects):
        _check_id(oid)
        if not weak.labels_of(oid) and weak.tau(oid) is None:
            append(f"OBJ\t{oid}")
        for label in sorted(weak.labels_of(oid)):
            children = ",".join(sorted(_check_id(c) for c in weak.lch(oid, label)))
            append(f"LCH\t{oid}\t{_check_id(label)}\t{children}")
            if weak.has_explicit_card(oid, label):
                card = weak.card(oid, label)
                append(f"CARD\t{oid}\t{label}\t{card.min}\t{card.max}")
        leaf_type = weak.tau(oid)
        if leaf_type is not None:
            append(f"TAU\t{oid}\t{leaf_type.name}")
        default = weak.val(oid)
        if default is not None:
            append(f"VAL\t{oid}\t{json.dumps(default)}")

    for oid, opf in sorted(pi.interpretation.opf_items()):
        if isinstance(opf, IndependentOPF):
            append(f"OPFI\t{oid}\t{json.dumps(opf.inclusion)}")
            continue
        append(f"OPF\t{oid}")
        for child_set, probability in opf.support():
            members = ",".join(sorted(child_set))
            append(f"E\t{probability!r}\t{members}")
    for oid, vpf in sorted(pi.interpretation.vpf_items()):
        append(f"VPF\t{oid}")
        for value, probability in vpf.support():
            append(f"W\t{probability!r}\t{json.dumps(value)}")
    append("")
    return "\n".join(out)


def loads(text: str) -> ProbabilisticInstance:
    """Deserialize from the compact text format."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith(f"{HEADER}\t"):
        raise CodecError("not a compact PXML file (missing header)")
    version = lines[0].split("\t", 1)[1]
    if version != VERSION:
        raise CodecError(f"unsupported compact-format version: {version!r}")

    root: str | None = None
    registry = TypeRegistry()
    # Deferred construction: we need the root before creating WeakInstance.
    records: list[list[str]] = [line.split("\t") for line in lines[1:] if line]
    for record in records:
        if record[0] == "ROOT":
            root = record[1]
            break
    if root is None:
        raise CodecError("missing ROOT record")

    weak = WeakInstance(root)
    interp = LocalInterpretation()
    current_opf_oid: str | None = None
    current_opf: dict = {}
    current_vpf_oid: str | None = None
    current_vpf: dict = {}

    def flush_opf() -> None:
        nonlocal current_opf_oid, current_opf
        if current_opf_oid is not None:
            interp.set_opf(current_opf_oid, TabularOPF(current_opf))
        current_opf_oid = None
        current_opf = {}

    def flush_vpf() -> None:
        nonlocal current_vpf_oid, current_vpf
        if current_vpf_oid is not None:
            interp.set_vpf(current_vpf_oid, TabularVPF(current_vpf))
        current_vpf_oid = None
        current_vpf = {}

    for record in records:
        kind = record[0]
        try:
            if kind == "ROOT":
                continue
            if kind == "TY":
                registry.add(LeafType(record[1], json.loads(record[2])))
            elif kind == "OBJ":
                weak.add_object(record[1])
            elif kind == "LCH":
                weak.add_object(record[1])
                children = record[3].split(",") if record[3] else []
                weak.set_lch(record[1], record[2], children)
            elif kind == "CARD":
                weak.set_card(
                    record[1], record[2],
                    CardinalityInterval(int(record[3]), int(record[4])),
                )
            elif kind == "TAU":
                weak.add_object(record[1])
                weak.set_type(record[1], registry[record[2]])
            elif kind == "VAL":
                weak.add_object(record[1])
                weak.set_val(record[1], json.loads(record[2]))
            elif kind == "OPF":
                flush_opf()
                flush_vpf()
                current_opf_oid = record[1]
            elif kind == "E":
                members = record[2].split(",") if record[2] else []
                current_opf[frozenset(members)] = float(record[1])
            elif kind == "OPFI":
                flush_opf()
                flush_vpf()
                interp.set_opf(record[1], IndependentOPF(json.loads(record[2])))
            elif kind == "VPF":
                flush_opf()
                flush_vpf()
                current_vpf_oid = record[1]
            elif kind == "W":
                current_vpf[json.loads(record[2])] = float(record[1])
            else:
                raise CodecError(f"unknown record kind: {kind!r}")
        except (IndexError, ValueError, json.JSONDecodeError) as exc:
            raise CodecError(f"malformed record {record!r}: {exc}") from exc
    flush_opf()
    flush_vpf()
    return ProbabilisticInstance(weak, interp)


def write_instance(pi: ProbabilisticInstance, path: str | Path) -> int:
    """Write in the compact format; returns characters written."""
    payload = dumps(pi)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return len(payload)


def read_instance(path: str | Path) -> ProbabilisticInstance:
    """Read a compact-format instance file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
