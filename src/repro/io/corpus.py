"""JSON-lines corpora of semistructured worlds.

The learning module consumes corpora of observed worlds; this codec
streams them to and from disk, one world per line (the
``encode_semistructured`` format), so corpora larger than memory can be
processed incrementally with :func:`iter_corpus`.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.io.json_codec import decode_semistructured, encode_semistructured
from repro.semistructured.instance import SemistructuredInstance


def write_corpus(
    worlds: Iterable[SemistructuredInstance], path: str | Path
) -> int:
    """Write worlds as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for world in worlds:
            handle.write(json.dumps(encode_semistructured(world)))
            handle.write("\n")
            count += 1
    return count


def iter_corpus(path: str | Path) -> Iterator[SemistructuredInstance]:
    """Stream worlds back from a JSON-lines corpus file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield decode_semistructured(json.loads(line))


def read_corpus(path: str | Path) -> list[SemistructuredInstance]:
    """Load an entire corpus into memory."""
    return list(iter_corpus(path))
