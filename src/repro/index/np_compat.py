"""Optional numpy import shared by the index subsystem.

The index works without numpy — every vectorized routine has a
pure-Python twin — so the import is guarded once here instead of in
every module.  ``numpy`` is ``None`` when absent; callers must check
:data:`HAS_NUMPY` before touching it.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised indirectly by both code paths
    import numpy
except ImportError:  # pragma: no cover - depends on the environment
    numpy = None  # type: ignore[assignment]

#: Whether the vectorized fast paths are available in this process.
HAS_NUMPY = numpy is not None
