"""Catalog-wide path index over the strong dataguides.

The `repro.check` dataguide already is a path -> posting-list map with a
sharp membership guarantee: a label path appears in the guide **iff**
some object satisfies it with nonzero probability.  :class:`PathIndex`
reuses the (version- and generation-cached) guides as a query-time
pruning structure: before matching a path against an instance, the
engine asks :meth:`PathIndex.can_match` and skips the instance entirely
when the guide proves the answer is "no match, with certainty".

The answer is tri-state: ``True`` (the path has nonzero existence
probability), ``False`` (provably zero — safe to short-circuit numeric
query results), or ``None`` (unknown: the guide is truncated, rooted
elsewhere, or could not be built — proceed with a real match).
"""

from __future__ import annotations

from typing import Protocol

from repro.check.dataguide import DataGuide, DataGuideCache
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression


class _Catalog(Protocol):
    def get(self, name: str) -> object: ...
    def version(self, name: str) -> int: ...


class PathIndex:
    """Path -> posting-list lookups against a catalog's dataguides."""

    def __init__(self, guides: DataGuideCache | None = None) -> None:
        self._guides = guides if guides is not None else DataGuideCache()

    def guide(self, database: _Catalog, name: str) -> DataGuide | None:
        """The instance's dataguide, or ``None`` when it cannot be built."""
        try:
            return self._guides.get(database, name)
        except Exception:
            return None

    def can_match(
        self, database: _Catalog, name: str, path: PathExpression
    ) -> bool | None:
        """Whether ``path`` can match ``name`` with nonzero probability.

        ``False`` is a *proof* (guide membership iff nonzero existence
        probability) and only returned when the guide covers the path's
        root and was not truncated; anything weaker yields ``None``.
        """
        guide = self.guide(database, name)
        if guide is None or guide.truncated or not guide.covers(path):
            return None
        return guide.entry(path.labels) is not None

    def posting_list(
        self, database: _Catalog, name: str, path: PathExpression
    ) -> frozenset[Oid] | None:
        """The objects the path can reach, or ``None`` when unknown."""
        guide = self.guide(database, name)
        if guide is None or guide.truncated or not guide.covers(path):
            return None
        return guide.targets(path.labels)
