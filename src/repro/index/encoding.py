"""Pre/size/level interval encoding of tree-shaped instances.

The XPath-accelerator idea (Grust's single-axis accelerator): assign
every node its preorder rank ``pre(o)``, its subtree size ``size(o)``
and its depth ``level(o)``.  On a tree, node ``a`` is an ancestor of
``b`` iff

    pre(a) < pre(b) <= pre(a) + size(a) - 1

so ancestor/descendant tests — and the backward prune of a path match —
become integer range comparisons over flat arrays instead of graph
walks.  The encoding is only defined for trees; :meth:`from_graph`
returns ``None`` for DAG-shaped graphs, which is the signal the engine
uses to fall back to the walked operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.semistructured.graph import EdgeLabeledGraph, Oid


@dataclass(frozen=True)
class IntervalEncoding:
    """Pre/size/level columns over a caller-chosen node index space.

    Attributes:
        index_of: node id -> position in the columns.
        pre: preorder rank per position (children visited in sorted
            order, so the encoding is deterministic per graph).
        size: subtree size per position (``>= 1``; a node's subtree
            occupies preorder ranks ``[pre, pre + size)``).
        level: depth per position (root at 0).
    """

    index_of: Mapping[Oid, int]
    pre: tuple[int, ...]
    size: tuple[int, ...]
    level: tuple[int, ...]

    @classmethod
    def from_graph(
        cls, graph: EdgeLabeledGraph, root: Oid
    ) -> "IntervalEncoding | None":
        """Encode a rooted tree; ``None`` when the graph is not a tree."""
        if root not in graph or not graph.is_tree(root):
            return None
        order: list[Oid] = []
        level: dict[Oid, int] = {root: 0}
        parent: dict[Oid, Oid] = {}
        stack: list[Oid] = [root]
        while stack:
            oid = stack.pop()
            order.append(oid)
            for child in sorted(graph.children(oid), reverse=True):
                level[child] = level[oid] + 1
                parent[child] = oid
                stack.append(child)
        size: dict[Oid, int] = {oid: 1 for oid in order}
        for oid in reversed(order):
            if oid in parent:
                size[parent[oid]] += size[oid]
        pre_rank = {oid: rank for rank, oid in enumerate(order)}
        index_of = {oid: position for position, oid in enumerate(order)}
        return cls(
            index_of=index_of,
            pre=tuple(pre_rank[oid] for oid in order),
            size=tuple(size[oid] for oid in order),
            level=tuple(level[oid] for oid in order),
        )

    def __len__(self) -> int:
        return len(self.pre)

    def interval(self, oid: Oid) -> tuple[int, int]:
        """The half-open preorder interval ``[pre, pre + size)`` of ``oid``."""
        position = self.index_of[oid]
        start = self.pre[position]
        return (start, start + self.size[position])

    def is_ancestor(self, ancestor: Oid, descendant: Oid) -> bool:
        """Strict ancestorship via one range comparison."""
        a = self.index_of[ancestor]
        d = self.index_of[descendant]
        start = self.pre[a]
        return start < self.pre[d] < start + self.size[a]

    def is_ancestor_or_self(self, ancestor: Oid, descendant: Oid) -> bool:
        """Reflexive ancestorship via one range comparison."""
        a = self.index_of[ancestor]
        d = self.index_of[descendant]
        start = self.pre[a]
        return start <= self.pre[d] < start + self.size[a]

    def depth(self, oid: Oid) -> int:
        """``level(o)`` — the node's distance from the root."""
        return self.level[self.index_of[oid]]
