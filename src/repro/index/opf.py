"""Vectorized OPF marginalization for the epsilon pass (Section 6.1).

The projection algorithm's hot loop marginalizes each tabular OPF onto
its kept children, weighting every kept child ``o_j`` by its survival
probability ``eps_j``:

    p'(o)(c') = sum_{c in PC(o), c' subseteq c} p(o)(c)
                * prod_{j in c'} eps_j
                * prod_{j in (c ∩ kept) - c'} (1 - eps_j)

The reference implementation enumerates ``2^(#uncertain kept children)``
subsets per support entry in Python.  :func:`marginalize_opf` computes
the same table as a single dense weight matrix: support entries become
bitmask rows over the certain/uncertain kept children, every candidate
survivor subset becomes a column, and one ``bincount`` accumulates the
result keyed by ``(certain-mask << U) | survivor-mask``.  All weights
are nonnegative, so a zero accumulated bin means no contribution and the
nonzero bins are exactly the reference dict's keys.

Without numpy (or outside the size guards) :func:`marginalize_python`
runs — it is the former ``repro.algebra.projection_prob._marginalize``
body moved here verbatim, and the parity tests hold the two equal.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping

from repro.core.distributions import ObjectProbabilityFunction
from repro.core.potential import ChildSet
from repro.index.np_compat import HAS_NUMPY, numpy
from repro.semistructured.graph import Oid

#: Beyond this many uncertain kept children the bitmask key would not fit
#: comfortably in an int64 lane (and the dense matrix would be enormous);
#: fall back to the sparse Python enumeration.
MAX_UNCERTAIN = 20

#: Upper bound on the dense weight matrix (support entries x 2^uncertain)
#: before the vectorized path gives way to the Python one.
MAX_CELLS = 1 << 22


def marginalize_opf(
    opf: ObjectProbabilityFunction,
    kept: list[Oid],
    epsilon: Mapping[Oid, float],
) -> dict[ChildSet, float]:
    """Marginalize ``opf`` onto ``kept``, weighting by ``epsilon``.

    Drop-in for the epsilon pass's marginalization step: same keys, same
    (floating-point-summed) values as :func:`marginalize_python`, chosen
    automatically between the dense numpy path and the sparse Python
    enumeration.
    """
    certain = sorted(c for c in kept if epsilon[c] >= 1.0)
    uncertain = sorted(c for c in kept if epsilon[c] < 1.0)
    if not HAS_NUMPY or not uncertain or len(uncertain) > MAX_UNCERTAIN:
        return marginalize_python(opf, kept, epsilon)
    support = list(opf.support())
    if len(certain) + len(uncertain) > MAX_UNCERTAIN:
        return marginalize_python(opf, kept, epsilon)
    if len(support) * (1 << len(uncertain)) > MAX_CELLS:
        return marginalize_python(opf, kept, epsilon)
    return _marginalize_numpy(support, certain, uncertain, epsilon)


def marginalize_python(
    opf: ObjectProbabilityFunction,
    kept: list[Oid],
    epsilon: Mapping[Oid, float],
) -> dict[ChildSet, float]:
    """The sparse reference enumeration (former ``_marginalize``).

    Children with ``eps = 1`` (matched objects) always survive, so only
    the genuinely uncertain children are enumerated over — this keeps the
    inner loop at ``2^(#uncertain kept children)`` instead of
    ``2^(#kept children)``.
    """
    certain = frozenset(c for c in kept if epsilon[c] >= 1.0)
    uncertain = sorted(c for c in kept if epsilon[c] < 1.0)
    accum: dict[ChildSet, float] = {}
    for child_set, probability in opf.support():
        sure_part = child_set & certain
        unc_in = [c for c in uncertain if c in child_set]
        for size in range(len(unc_in) + 1):
            for chosen in combinations(unc_in, size):
                weight = probability
                for child in chosen:
                    weight *= epsilon[child]
                for child in unc_in:
                    if child not in chosen:
                        weight *= 1.0 - epsilon[child]
                if weight == 0.0:
                    continue
                new_set = sure_part | frozenset(chosen)
                accum[new_set] = accum.get(new_set, 0.0) + weight
    return accum


def _marginalize_numpy(
    support: list[tuple[ChildSet, float]],
    certain: list[Oid],
    uncertain: list[Oid],
    epsilon: Mapping[Oid, float],
) -> dict[ChildSet, float]:
    np = numpy
    n_uncertain = len(uncertain)
    n_subsets = 1 << n_uncertain
    certain_position = {child: bit for bit, child in enumerate(certain)}
    uncertain_position = {child: bit for bit, child in enumerate(uncertain)}

    probabilities = np.empty(len(support), dtype=np.float64)
    certain_masks = np.zeros(len(support), dtype=np.int64)
    uncertain_masks = np.zeros(len(support), dtype=np.int64)
    for row, (child_set, probability) in enumerate(support):
        probabilities[row] = probability
        c_mask = 0
        u_mask = 0
        for child in child_set:
            bit = certain_position.get(child)
            if bit is not None:
                c_mask |= 1 << bit
                continue
            bit = uncertain_position.get(child)
            if bit is not None:
                u_mask |= 1 << bit
        certain_masks[row] = c_mask
        uncertain_masks[row] = u_mask

    subsets = np.arange(n_subsets, dtype=np.int64)
    bits = ((subsets[:, None] >> np.arange(n_uncertain)) & 1).astype(bool)
    eps = np.asarray([epsilon[child] for child in uncertain], dtype=np.float64)
    survive_weight = np.prod(np.where(bits, eps, 1.0), axis=1)
    drop_weight = np.prod(np.where(bits, 1.0 - eps, 1.0), axis=1)

    # weights[i, m]: support row i keeps exactly survivor subset m.
    feasible = (subsets[None, :] & ~uncertain_masks[:, None]) == 0
    dropped = uncertain_masks[:, None] & ~subsets[None, :]
    weights = (
        probabilities[:, None] * survive_weight[None, :] * drop_weight[dropped]
    )
    weights = np.where(feasible, weights, 0.0)

    keys = (certain_masks[:, None] << n_uncertain) | subsets[None, :]
    accumulated = np.bincount(
        keys.ravel(),
        weights=weights.ravel(),
        minlength=1 << (len(certain) + n_uncertain),
    )

    result: dict[ChildSet, float] = {}
    for key in np.nonzero(accumulated)[0].tolist():
        survivor_mask = key & (n_subsets - 1)
        certain_mask = key >> n_uncertain
        members = [
            child for bit, child in enumerate(certain)
            if certain_mask & (1 << bit)
        ]
        members.extend(
            child for bit, child in enumerate(uncertain)
            if survivor_mask & (1 << bit)
        )
        result[frozenset(members)] = float(accumulated[key])
    return result
