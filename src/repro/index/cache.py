"""Versioned cache of columnar snapshots.

One :class:`ColumnarInstance` per catalog name, keyed by the name's
``(version, generation)`` pair: ``version`` invalidates on in-process
re-registration and ``Database.generation()`` invalidates when another
process mutates the shared catalog under the PR-5 file lock (the same
token the generation-aware :class:`~repro.check.dataguide.DataGuideCache`
uses).  Builds, hits and misses land on the ambient metrics registry
(``index.builds`` / ``index.hits`` / ``index.misses``) and every build
runs inside an ``index.build`` span, so ``PROFILE`` shows exactly when a
statement paid for a snapshot.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Protocol

from repro.index.columnar import ColumnarInstance
from repro.obs.metrics import current_registry
from repro.obs.tracing import current_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import ProbabilisticInstance


class _Catalog(Protocol):
    def get(self, name: str) -> "ProbabilisticInstance": ...
    def version(self, name: str) -> int: ...


def cache_token(database: _Catalog, name: str) -> tuple[int, int]:
    """``(version, generation)`` — the invalidation key for ``name``.

    Catalogs without a ``generation`` (plain dict-backed fakes in tests)
    contribute a constant 0, degrading gracefully to version-only keying.
    """
    generation = getattr(database, "generation", None)
    return (
        database.version(name),
        int(generation()) if callable(generation) else 0,
    )


class IndexCache:
    """Thread-safe name -> columnar snapshot cache for one engine."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[tuple[int, int], ColumnarInstance]] = {}
        self._lock = threading.Lock()

    def get(
        self,
        database: _Catalog,
        name: str,
        instance: "ProbabilisticInstance | None" = None,
    ) -> ColumnarInstance:
        """The current snapshot of ``name``, building it on miss.

        When the caller already holds the scanned instance it should
        pass it as ``instance`` so the snapshot is built from exactly
        the value being evaluated (not a possibly-racing re-read).
        """
        token = cache_token(database, name)
        registry = current_registry()
        with self._lock:
            entry = self._entries.get(name)
        if entry is not None and entry[0] == token:
            registry.counter("index.hits").inc()
            return entry[1]
        registry.counter("index.misses").inc()
        source = instance if instance is not None else database.get(name)
        with current_tracer().span("index.build", instance=name) as span:
            snapshot = ColumnarInstance.from_instance(source)
            span.attributes["objects"] = len(snapshot)
            span.attributes["edges"] = snapshot.num_edges
            span.attributes["tree"] = snapshot.is_tree
        registry.counter("index.builds").inc()
        with self._lock:
            self._entries[name] = (token, snapshot)
        return snapshot

    def invalidate(self, name: str | None = None) -> None:
        """Drop one name's snapshot, or all of them."""
        with self._lock:
            if name is None:
                self._entries.clear()
            else:
                self._entries.pop(name, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
