"""A struct-of-arrays snapshot of one instance's weak structure.

:class:`ColumnarInstance` flattens an :class:`~repro.semistructured.graph.
EdgeLabeledGraph` into integer columns — node ids, parent pointers,
per-label edge arrays, and the :class:`~repro.index.encoding.
IntervalEncoding` when the graph is a tree.  Built once per instance
version (see :class:`repro.index.cache.IndexCache`), it lets path
matching run as batched array operations instead of per-node ``lch``
calls:

* on trees the forward sweep is frontier-mask propagation through the
  parent-pointer and parent-edge-label columns (one gather + one compare
  per level); the backward prune reduces to interval containment against
  the final level's preorder ranks (the XPath-accelerator trick) plus a
  parent-pointer gather for the surviving edges;
* DAGs use the generic per-label edge-array sweep and edge-filter prune.

:func:`match_path_indexed` returns a :class:`~repro.semistructured.paths.
PathMatch` **identical** to :func:`~repro.semistructured.paths.match_path`
on the same graph — the randomized parity suite (``tests/test_index.py``)
holds the two implementations equal on generated instances, so every
consumer of a match (epsilon pass, aggregates, projections) is oblivious
to which matcher produced it.

Everything here works without numpy; the array code paths light up when
it is importable (see :mod:`repro.index.np_compat`).
"""

from __future__ import annotations

from itertools import groupby
from typing import TYPE_CHECKING, Any, Iterable

from repro.index.encoding import IntervalEncoding
from repro.index.np_compat import HAS_NUMPY, numpy
from repro.semistructured.graph import EdgeLabeledGraph, Label, Oid
from repro.semistructured.paths import PathExpression, PathMatch, empty_match

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import ProbabilisticInstance


class ColumnarInstance:
    """Flat integer columns over one graph, plus the interval encoding.

    Node positions follow the encoding's preorder on trees (so subtree
    ranges are contiguous) and sorted object-id order on DAGs.  The
    snapshot is immutable by convention: it is keyed by instance version
    in the :class:`~repro.index.cache.IndexCache` and rebuilt, never
    patched, when the catalog changes.
    """

    __slots__ = (
        "root",
        "oids",
        "index_of",
        "parent",
        "edges_by_label",
        "encoding",
        "is_tree",
        "num_edges",
        "_pre_np",
        "_size_np",
        "_parent_np",
        "_csr_cache",
        "_children_cache",
        "_match_memo",
        "_oids_np",
        "_parent_map",
    )

    def __init__(
        self,
        root: Oid,
        oids: tuple[Oid, ...],
        parent: tuple[int, ...],
        edges_by_label: dict[Label, tuple[Any, Any]],
        encoding: IntervalEncoding | None,
        num_edges: int,
    ) -> None:
        self.root = root
        self.oids = oids
        self.index_of: dict[Oid, int] = {
            oid: position for position, oid in enumerate(oids)
        }
        self.parent = parent
        self.edges_by_label = edges_by_label
        self.encoding = encoding
        self.is_tree = encoding is not None
        self.num_edges = num_edges
        self._oids_np = (
            numpy.array(oids, dtype=object) if HAS_NUMPY else None
        )
        if HAS_NUMPY and encoding is not None:
            self._pre_np = numpy.asarray(encoding.pre, dtype=numpy.int64)
            self._size_np = numpy.asarray(encoding.size, dtype=numpy.int64)
            self._parent_np = numpy.asarray(parent, dtype=numpy.int64)
        else:
            self._pre_np = None
            self._size_np = None
            self._parent_np = None
        # Per-label children adjacency in two lazily built forms: CSR
        # arrays for wide frontiers (:func:`_label_csr`) and plain dicts
        # for narrow ones (:func:`_label_children`).
        self._csr_cache: dict[Label, tuple[Any, Any]] = {}
        self._children_cache: dict[Label, dict[int, list[int]]] = {}
        # Bounded memo of materialized path matches.  Sound because the
        # snapshot is immutable: the IndexCache drops the whole snapshot
        # (memo included) when the instance's (version, generation) key
        # moves, so a memoized PathMatch can never go stale.
        self._match_memo: dict[PathExpression, PathMatch] = {}
        self._parent_map: dict[Oid, Oid] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: EdgeLabeledGraph, root: Oid) -> "ColumnarInstance":
        """Snapshot a rooted graph (tree or DAG) into columns."""
        encoding = IntervalEncoding.from_graph(graph, root)
        if encoding is not None:
            order = sorted(encoding.index_of, key=encoding.index_of.__getitem__)
            oids = tuple(order)
        else:
            oids = tuple(sorted(graph.vertices))
        index_of = {oid: position for position, oid in enumerate(oids)}

        parent = [-1] * len(oids)
        by_label: dict[Label, tuple[list[int], list[int]]] = {}
        num_edges = 0
        for src, dst, label in graph.edges():
            src_idx = index_of.get(src)
            dst_idx = index_of.get(dst)
            if src_idx is None or dst_idx is None:  # pragma: no cover - defensive
                continue
            srcs, dsts = by_label.setdefault(label, ([], []))
            srcs.append(src_idx)
            dsts.append(dst_idx)
            num_edges += 1
            if encoding is not None:
                parent[dst_idx] = src_idx

        edges_by_label: dict[Label, tuple[Any, Any]] = {}
        for label, (srcs, dsts) in by_label.items():
            if HAS_NUMPY:
                edges_by_label[label] = (
                    numpy.asarray(srcs, dtype=numpy.int64),
                    numpy.asarray(dsts, dtype=numpy.int64),
                )
            else:
                edges_by_label[label] = (tuple(srcs), tuple(dsts))

        return cls(root, oids, tuple(parent), edges_by_label, encoding, num_edges)

    @classmethod
    def from_instance(cls, pi: "ProbabilisticInstance") -> "ColumnarInstance":
        """Snapshot a probabilistic instance's weak structure."""
        return cls.from_graph(pi.weak.graph(), pi.root)

    # ------------------------------------------------------------------
    # Navigation helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.oids)

    def parent_map(self) -> dict[Oid, Oid]:
        """Child -> parent object ids (tree snapshots only; cached)."""
        if self._parent_map is None:
            self._parent_map = {
                self.oids[child]: self.oids[parent]
                for child, parent in enumerate(self.parent)
                if parent >= 0
            }
        return self._parent_map

    def chain_of(self, oid: Oid) -> list[Oid]:
        """The root-to-``oid`` object chain via parent pointers (trees)."""
        position = self.index_of[oid]
        chain = [oid]
        while self.parent[position] >= 0:
            position = self.parent[position]
            chain.append(self.oids[position])
        chain.reverse()
        return chain


#: Entries kept in a snapshot's path-match memo before FIFO eviction.
_MATCH_MEMO_CAP = 128


def match_path_indexed(
    col: ColumnarInstance, path: PathExpression, *, memo: bool = True
) -> PathMatch:
    """Match a path against a columnar snapshot.

    Byte-for-byte equivalent to :func:`~repro.semistructured.paths.
    match_path` on the snapshot's source graph, including the empty and
    zero-label cases.  Repeated queries against the same snapshot hit a
    bounded per-snapshot memo (the snapshot is immutable, so memoized
    matches cannot go stale); pass ``memo=False`` to force a fresh
    evaluation, e.g. when benchmarking the matcher itself.
    """
    if memo:
        cached = col._match_memo.get(path)
        if cached is not None:
            return cached
    root_position = col.index_of.get(path.root)
    if root_position is None:
        result = empty_match(path)
    elif not path.labels:
        result = PathMatch(path, (frozenset({path.root}),), frozenset(), ())
    elif HAS_NUMPY:
        result = _match_numpy(col, path, root_position)
    else:
        result = _match_python(col, path, root_position)
    if memo:
        if len(col._match_memo) >= _MATCH_MEMO_CAP:
            col._match_memo.pop(next(iter(col._match_memo)))
        col._match_memo[path] = result
    return result


_EMPTY_EDGES: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

#: Frontier width at which the tree matcher switches from per-node dict
#: lookups to the vectorized CSR gather.
_NARROW_FRONTIER = 128


def _match_numpy(
    col: ColumnarInstance, path: PathExpression, root_position: int
) -> PathMatch:
    if col.is_tree:
        return _match_numpy_tree(col, path, root_position)
    np = numpy
    frontier = np.asarray([root_position], dtype=np.int64)
    levels = [frontier]
    level_edges_idx: list[tuple[Any, Any]] = []
    for label in path.labels:
        pair = col.edges_by_label.get(label)
        if pair is None:
            return empty_match(path)
        srcs, dsts = pair
        mask = np.isin(srcs, frontier)
        level_srcs = srcs[mask]
        level_dsts = dsts[mask]
        frontier = np.unique(level_dsts)
        if frontier.size == 0:
            return empty_match(path)
        levels.append(frontier)
        level_edges_idx.append((level_srcs, level_dsts))

    depth = len(path.labels)
    pruned: list[Any] = [None] * (depth + 1)
    pruned[depth] = levels[depth]
    per_level_edges: list[frozenset[tuple[Oid, Oid]]] = [frozenset()] * depth

    for index in range(depth - 1, -1, -1):
        level_srcs, level_dsts = level_edges_idx[index]
        mask = np.isin(level_dsts, pruned[index + 1])
        kept_srcs = level_srcs[mask]
        kept_dsts = level_dsts[mask]
        pruned[index] = np.unique(kept_srcs)
        per_level_edges[index] = frozenset(
            (col.oids[src], col.oids[dst])
            for src, dst in zip(kept_srcs.tolist(), kept_dsts.tolist())
        )

    return _build_match(col, path, pruned, per_level_edges)


def _label_csr(col: ColumnarInstance, label: Label) -> tuple[Any, Any] | None:
    """Children-with-``label`` CSR adjacency (lazily built, cached).

    Returns ``(offsets, children)`` where ``children[offsets[v] :
    offsets[v + 1]]`` are the label-``label`` children of position ``v``,
    grouped by parent and ascending within each group.  ``None`` when the
    label does not occur.  Tree snapshots only (edge source == parent).
    """
    cached = col._csr_cache.get(label)
    if cached is not None:
        return cached
    pair = col.edges_by_label.get(label)
    if pair is None:
        return None
    srcs, dsts = pair
    order = numpy.lexsort((dsts, srcs))
    children = dsts[order]
    offsets = numpy.zeros(len(col.oids) + 1, dtype=numpy.int64)
    numpy.cumsum(
        numpy.bincount(srcs, minlength=len(col.oids)), out=offsets[1:]
    )
    col._csr_cache[label] = (offsets, children)
    return offsets, children


def _label_children(
    col: ColumnarInstance, label: Label
) -> dict[int, list[int]] | None:
    """Children-with-``label`` as a plain dict (lazily built, cached).

    The dict form wins on narrow frontiers, where a handful of lookups
    beat the fixed cost of a vectorized gather.  Child lists are sorted
    so expanded frontiers stay position-ascending.  ``None`` when the
    label does not occur.
    """
    cached = col._children_cache.get(label)
    if cached is not None:
        return cached
    pair = col.edges_by_label.get(label)
    if pair is None:
        return None
    srcs, dsts = pair
    if HAS_NUMPY:
        srcs = srcs.tolist()
        dsts = dsts.tolist()
    children: dict[int, list[int]] = {}
    for src, dst in zip(srcs, dsts):
        children.setdefault(src, []).append(dst)
    for kids in children.values():
        kids.sort()
    col._children_cache[label] = children
    return children


def _match_numpy_tree(
    col: ColumnarInstance, path: PathExpression, root_position: int
) -> PathMatch:
    """Tree fast path: per-label adjacency expansion + parent prune.

    The forward sweep expands each frontier through the label's
    children adjacency — per-node dict lookups while the frontier is
    narrow, one ragged CSR gather once it is wide — so the per-level
    cost tracks the frontier's fan-out, not the column length.  On a
    tree the frontier needs no dedup — every node has one parent, so
    distinct children stay distinct — and every level comes out sorted
    by position: same-depth subtrees are disjoint and preorder-ordered,
    so parents ascending with per-parent children ascending concatenate
    into an ascending whole.  The backward prune is equally direct: a
    level-``i`` node survives iff one of its matched children survives,
    i.e. pruned level ``i`` is exactly the set of parents of pruned
    level ``i + 1`` — and since those parents come out non-decreasing,
    dedup is a run-boundary scan rather than a sort or hash (again in
    dict-or-gather form depending on the level's width).
    """
    np = numpy
    frontier: Any = [root_position]
    for label in path.labels:
        if len(frontier) <= _NARROW_FRONTIER:
            # Narrow frontier: a few dict lookups beat vectorized
            # gathers' fixed per-call cost.
            children_map = _label_children(col, label)
            if children_map is None:
                return empty_match(path)
            if not isinstance(frontier, list):
                frontier = frontier.tolist()
            expanded: list[int] = []
            lookup = children_map.get
            for position in frontier:
                kids = lookup(position)
                if kids:
                    expanded.extend(kids)
            if not expanded:
                return empty_match(path)
            frontier = expanded
        else:
            csr = _label_csr(col, label)
            if csr is None:
                return empty_match(path)
            offsets, children = csr
            if isinstance(frontier, list):
                frontier = np.asarray(frontier, dtype=np.int64)
            starts = offsets[frontier]
            counts = offsets[frontier + 1] - starts
            ends = counts.cumsum()
            total = int(ends[-1])
            if total == 0:
                return empty_match(path)
            # Ragged gather: concatenate [start, start + count) runs
            # without a Python-level loop.
            slots = (
                np.repeat(starts + counts - ends, counts)
                + np.arange(total, dtype=np.int64)
            )
            frontier = children[slots]

    depth = len(path.labels)
    pruned: list[Any] = [None] * (depth + 1)
    pruned[depth] = frontier
    per_level_edges: list[frozenset[tuple[Oid, Oid]]] = [frozenset()] * depth
    oids_np = col._oids_np
    oids = col.oids
    parent_np = col._parent_np
    parent_t = col.parent
    prev: Any = frontier
    for index in range(depth - 1, -1, -1):
        if len(prev) <= _NARROW_FRONTIER:
            if not isinstance(prev, list):
                prev = prev.tolist()
            srcs = [parent_t[dst] for dst in prev]
            per_level_edges[index] = frozenset(
                zip(map(oids.__getitem__, srcs), map(oids.__getitem__, prev))
            )
            # srcs is non-decreasing, so consecutive dedup is exact.
            prev = [src for src, _run in groupby(srcs)]
        else:
            if isinstance(prev, list):
                prev = np.asarray(prev, dtype=np.int64)
            kept_srcs = parent_np[prev]
            per_level_edges[index] = frozenset(
                zip(oids_np[kept_srcs].tolist(), oids_np[prev].tolist())
            )
            boundary = np.empty(kept_srcs.size, dtype=bool)
            boundary[0] = True
            np.not_equal(kept_srcs[1:], kept_srcs[:-1], out=boundary[1:])
            prev = kept_srcs[boundary]
        pruned[index] = prev

    return _build_match(col, path, pruned, per_level_edges)


def _match_python(
    col: ColumnarInstance, path: PathExpression, root_position: int
) -> PathMatch:
    frontier = {root_position}
    levels: list[set[int]] = [frontier]
    level_edges_idx: list[list[tuple[int, int]]] = []
    for label in path.labels:
        srcs, dsts = col.edges_by_label.get(label, _EMPTY_EDGES)
        level_pairs = [
            (src, dst) for src, dst in zip(srcs, dsts) if src in frontier
        ]
        frontier = {dst for _src, dst in level_pairs}
        if not frontier:
            return empty_match(path)
        levels.append(frontier)
        level_edges_idx.append(level_pairs)

    depth = len(path.labels)
    pruned: list[set[int]] = [set()] * (depth + 1)
    pruned[depth] = levels[depth]
    per_level_edges: list[frozenset[tuple[Oid, Oid]]] = [frozenset()] * depth
    for index in range(depth - 1, -1, -1):
        kept_pairs = [
            (src, dst)
            for src, dst in level_edges_idx[index]
            if dst in pruned[index + 1]
        ]
        pruned[index] = {src for src, _dst in kept_pairs}
        per_level_edges[index] = frozenset(
            (col.oids[src], col.oids[dst]) for src, dst in kept_pairs
        )
    return _build_match(col, path, pruned, per_level_edges)


def _build_match(
    col: ColumnarInstance,
    path: PathExpression,
    pruned: list[Any],
    per_level_edges: list[frozenset[tuple[Oid, Oid]]],
) -> PathMatch:
    def level_oids(positions: Iterable[int]) -> frozenset[Oid]:
        if isinstance(positions, (list, set)):
            return frozenset(map(col.oids.__getitem__, positions))
        if col._oids_np is not None and hasattr(positions, "tolist"):
            return frozenset(col._oids_np[positions].tolist())
        return frozenset(col.oids[position] for position in positions)

    levels = tuple(level_oids(positions) for positions in pruned)
    all_edges: frozenset[tuple[Oid, Oid]] = frozenset().union(*per_level_edges)
    return PathMatch(path, levels, all_edges, tuple(per_level_edges))
