"""Structural path index and columnar instance core.

The walked evaluators navigate the Python object graph node-at-a-time;
this package gives the engine flat-array alternatives:

* :mod:`repro.index.encoding` — pre/size/level interval encoding of
  trees (the XPath-accelerator design), turning ancestor/descendant
  tests into integer range comparisons;
* :mod:`repro.index.columnar` — :class:`ColumnarInstance`, a
  struct-of-arrays snapshot of one instance version, plus
  :func:`match_path_indexed`, a batched path matcher that returns
  results identical to :func:`repro.semistructured.paths.match_path`;
* :mod:`repro.index.opf` — vectorized OPF marginalization for the
  Section 6.1 epsilon pass (numpy fast path, pure-Python fallback);
* :mod:`repro.index.pathindex` — catalog-wide path -> posting-list
  pruning built on the `repro.check` strong dataguides;
* :mod:`repro.index.cache` — the per-engine snapshot cache keyed by
  ``(version, Database.generation())``.

numpy is optional throughout (:mod:`repro.index.np_compat`); every
vectorized routine has a pure-Python twin with identical semantics.
"""

from repro.index.cache import IndexCache, cache_token
from repro.index.columnar import ColumnarInstance, match_path_indexed
from repro.index.encoding import IntervalEncoding
from repro.index.np_compat import HAS_NUMPY
from repro.index.opf import marginalize_opf, marginalize_python
from repro.index.pathindex import PathIndex

__all__ = [
    "HAS_NUMPY",
    "ColumnarInstance",
    "IndexCache",
    "IntervalEncoding",
    "PathIndex",
    "cache_token",
    "marginalize_opf",
    "marginalize_python",
    "match_path_indexed",
]
