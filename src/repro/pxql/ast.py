"""PXQL abstract syntax.

One dataclass per statement kind.  The grammar (EBNF-ish):

    statement   := (check | explain | profile | set | plain)
                   ["WITH" "TIMEOUT" number]
    plain       := project | select | product | point | exists | chain
                 | prob | count | dist | worlds | show | list | drop
                 | load | save

    set         := "SET" "TIMEOUT" number
                   (session-wide statement deadline in seconds; 0 clears.
                    "WITH TIMEOUT s" overrides it for one statement)
    check       := "CHECK" plain
                   (static diagnostics only; the statement never runs)
    explain     := "EXPLAIN" ["ANALYZE" | "LINT"] plain
                   (plain must be an algebra or query statement;
                    LINT adds the static checker's findings and the
                    per-rewrite soundness justifications to the plan)
    profile     := "PROFILE" plain
                   (executes the statement — side effects included —
                    and returns its span tree: per-node wall/CPU times,
                    cache status, rewrite firings; see repro.obs)

    project     := "PROJECT" [kind] path "FROM" name ["AS" name]
    kind        := "ANCESTOR" | "DESCENDANT" | "SINGLE"
    select      := "SELECT" path "=" oid ["AND" "VALUE" "=" literal]
                   ["AND" "CARD" "(" label ")" "IN" "[" int "," int "]"]
                   ["AND" "PROB" cmp number]
                   "FROM" name ["AS" name]
    cmp         := ">" | ">=" | "<" | "<="
    product     := "PRODUCT" name "," name ["ROOT" oid] ["AS" name]
    point       := "POINT" path ":" oid "IN" name
    exists      := "EXISTS" path "IN" name
    chain       := "CHAIN" dotted-oids "IN" name
    prob        := "PROB" oid "IN" name
    count       := "COUNT" path "IN" name          (expected #matches)
    dist        := "DIST" path "IN" name           (match-count distribution)
    unroll      := "UNROLL" name "HORIZON" int ["AS" name]
    estimate    := "ESTIMATE" path [":" oid] "IN" name ["SAMPLES" int]
    worlds      := "WORLDS" name ["LIMIT" int]
    show        := "SHOW" name
    list        := "LIST"
    drop        := "DROP" name
    load        := "LOAD" name "FROM" string
    save        := "SAVE" name ["TO" string]

Paths are the paper's dotted form (``R.book.author``); a bare object id
is a zero-label path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semistructured.paths import PathExpression


@dataclass(frozen=True)
class ProjectStatement:
    kind: str                      # "ancestor" | "descendant" | "single"
    path: PathExpression
    source: str
    target: str | None


@dataclass(frozen=True)
class SelectStatement:
    path: PathExpression
    oid: str
    value: object | None           # AND VALUE = ...
    card_label: str | None         # AND CARD(label) IN [lo, hi]
    card_bounds: tuple[int, int] | None
    source: str
    target: str | None
    prob_op: str | None = None     # AND PROB <cmp> <number> (assertion on
    prob_bound: float | None = None  # the condition probability)


@dataclass(frozen=True)
class ProductStatement:
    left: str
    right: str
    new_root: str | None
    target: str | None


@dataclass(frozen=True)
class PointStatement:
    path: PathExpression
    oid: str
    source: str


@dataclass(frozen=True)
class ExistsStatement:
    path: PathExpression
    source: str


@dataclass(frozen=True)
class ChainStatement:
    chain: tuple[str, ...]
    source: str


@dataclass(frozen=True)
class ProbStatement:
    oid: str
    source: str


@dataclass(frozen=True)
class CountStatement:
    path: PathExpression
    source: str


@dataclass(frozen=True)
class DistStatement:
    path: PathExpression
    source: str


@dataclass(frozen=True)
class UnrollStatement:
    source: str
    horizon: int
    target: str | None


@dataclass(frozen=True)
class EstimateStatement:
    path: PathExpression
    oid: str | None          # None = existential
    source: str
    samples: int


@dataclass(frozen=True)
class WorldsStatement:
    source: str
    limit: int


@dataclass(frozen=True)
class ShowStatement:
    source: str


@dataclass(frozen=True)
class ListStatement:
    pass


@dataclass(frozen=True)
class DropStatement:
    name: str


@dataclass(frozen=True)
class LoadStatement:
    name: str
    path: str


@dataclass(frozen=True)
class SaveStatement:
    name: str
    path: str | None


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE | LINT] <statement>``.

    ``analyze=False`` plans and optimizes without executing;
    ``analyze=True`` also executes (with the statement's normal side
    effects, e.g. registering an ``AS`` target) and reports per-node
    timings, cardinalities and cache status.  ``lint=True`` plans
    without executing and appends the static checker's diagnostics plus
    a machine-checked soundness justification per applied rewrite.
    """

    analyze: bool
    statement: "Statement"
    lint: bool = False


@dataclass(frozen=True)
class CheckStatement:
    """``CHECK <statement>``: static diagnostics only, never executed."""

    statement: "Statement"


@dataclass(frozen=True)
class ProfileStatement:
    """``PROFILE <statement>``: execute and return the span tree.

    The inner statement runs with its normal semantics and side effects
    (an ``AS`` target is registered, caches are consulted and filled);
    the result value is the root :class:`repro.obs.tracing.Span` of the
    execution, whose per-node wall times sum consistently (within
    scheduler tolerance) to the root on both cache-cold and cache-warm
    runs.
    """

    statement: "Statement"


@dataclass(frozen=True)
class SetStatement:
    """``SET TIMEOUT <seconds>``: a session option assignment.

    ``option`` is currently always ``"timeout"``; ``value`` is the new
    per-statement deadline in seconds (0 clears it).
    """

    option: str
    value: float


@dataclass(frozen=True)
class TimeoutStatement:
    """``<statement> WITH TIMEOUT <seconds>``: a one-statement deadline.

    The inner statement runs under a deadline-only execution budget
    (:class:`repro.resilience.budget.Budget`), overriding any session
    default from ``SET TIMEOUT``; exceeding it raises
    :class:`~repro.errors.BudgetExceeded` at the next cooperative
    checkpoint (a plan-node boundary or a sampling batch).
    """

    statement: "Statement"
    seconds: float


Statement = (
    ProjectStatement | SelectStatement | ProductStatement | PointStatement
    | ExistsStatement | ChainStatement | ProbStatement | CountStatement
    | DistStatement | UnrollStatement | EstimateStatement | WorldsStatement
    | ShowStatement | ListStatement | DropStatement | LoadStatement
    | SaveStatement | ExplainStatement | CheckStatement | ProfileStatement
    | SetStatement | TimeoutStatement
)
