"""Recursive-descent parser for PXQL (grammar in :mod:`repro.pxql.ast`).

Besides the AST, the parser records the *source span* of each semantic
role it consumes (the path, the condition object, the FROM/IN source,
...).  :func:`parse_spanned` exposes them as a ``{role: (start, end)}``
map so the static checker (:mod:`repro.check.query`) can anchor its
diagnostics in the statement text; :func:`parse` keeps the original
AST-only signature.
"""

from __future__ import annotations

from repro.pxql import ast
from repro.pxql.lexer import PXQLSyntaxError, Token, tokenize
from repro.semistructured.paths import PathExpression

#: A half-open character range in the source text.
SpanMap = dict[str, tuple[int, int]]

_PROB_OPS = (">", ">=", "<", "<=")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self.spans: SpanMap = {}

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_keyword(self, *keywords: str) -> str:
        token = self._advance()
        if token.kind != "KEYWORD" or token.value not in keywords:
            raise PXQLSyntaxError(
                f"expected {' or '.join(keywords)}, got {token.value!r}",
                position=token.position,
            )
        return token.value

    def _accept_keyword(self, *keywords: str) -> str | None:
        token = self._peek()
        if token.kind == "KEYWORD" and token.value in keywords:
            self._advance()
            return token.value
        return None

    def _expect_punct(self, symbol: str) -> None:
        token = self._advance()
        if token.kind != "PUNCT" or token.value != symbol:
            raise PXQLSyntaxError(
                f"expected {symbol!r}, got {token.value!r}",
                position=token.position,
            )

    def _expect_ident(self, role: str | None = None) -> str:
        token = self._advance()
        if token.kind != "IDENT":
            raise PXQLSyntaxError(
                f"expected an identifier, got {token.value!r}",
                position=token.position,
            )
        if role is not None:
            self.spans[role] = token.span
        return token.value

    def _expect_name(self, role: str | None = None) -> str:
        name = self._expect_ident(role)
        if "." in name:
            raise PXQLSyntaxError(f"expected a plain name, got path {name!r}")
        return name

    def _expect_path(self, role: str = "path") -> PathExpression:
        return PathExpression.parse(self._expect_ident(role))

    def _expect_literal(self, role: str | None = None) -> object:
        token = self._advance()
        if role is not None:
            self.spans[role] = token.span
        if token.kind == "STRING":
            return token.value
        if token.kind == "NUMBER":
            value = float(token.value)
            return int(value) if value.is_integer() else value
        if token.kind == "IDENT":
            return token.value
        raise PXQLSyntaxError(
            f"expected a literal, got {token.value!r}", position=token.position
        )

    def _expect_int(self) -> int:
        token = self._advance()
        if token.kind != "NUMBER" or "." in token.value:
            raise PXQLSyntaxError(
                f"expected an integer, got {token.value!r}",
                position=token.position,
            )
        return int(token.value)

    def _expect_number(self, role: str | None = None) -> float:
        token = self._advance()
        if token.kind != "NUMBER":
            raise PXQLSyntaxError(
                f"expected a number, got {token.value!r}",
                position=token.position,
            )
        if role is not None:
            self.spans[role] = token.span
        return float(token.value)

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise PXQLSyntaxError(
                f"trailing input from {token.value!r}", position=token.position
            )

    def _optional_target(self) -> str | None:
        if self._accept_keyword("AS"):
            return self._expect_name("target")
        return None

    # -- statements ------------------------------------------------------
    def parse(self) -> ast.Statement:
        if self._accept_keyword("CHECK"):
            statement: ast.Statement = ast.CheckStatement(self._parse_plain())
        elif self._accept_keyword("PROFILE"):
            statement = ast.ProfileStatement(self._parse_plain())
        elif self._accept_keyword("EXPLAIN"):
            lint = self._accept_keyword("LINT") is not None
            analyze = (not lint) and self._accept_keyword("ANALYZE") is not None
            statement = ast.ExplainStatement(analyze, self._parse_plain(), lint)
        elif self._accept_keyword("SET"):
            self._expect_keyword("TIMEOUT")
            seconds = self._expect_number("timeout")
            if seconds < 0:
                raise PXQLSyntaxError("SET TIMEOUT needs seconds >= 0")
            statement = ast.SetStatement("timeout", seconds)
        else:
            statement = self._parse_plain()
        if not isinstance(statement, ast.SetStatement) and self._accept_keyword(
            "WITH"
        ):
            self._expect_keyword("TIMEOUT")
            seconds = self._expect_number("timeout")
            if seconds <= 0:
                raise PXQLSyntaxError("WITH TIMEOUT needs seconds > 0")
            statement = ast.TimeoutStatement(statement, seconds)
        self._expect_eof()
        return statement

    def _parse_plain(self) -> ast.Statement:
        keyword = self._expect_keyword(
            "PROJECT", "SELECT", "PRODUCT", "POINT", "EXISTS", "CHAIN",
            "PROB", "COUNT", "DIST", "WORLDS", "SHOW", "LIST", "DROP",
            "LOAD", "SAVE", "UNROLL", "ESTIMATE",
        )
        return getattr(self, f"_parse_{keyword.lower()}")()

    def _parse_project(self) -> ast.ProjectStatement:
        kind = self._accept_keyword("ANCESTOR", "DESCENDANT", "SINGLE") or "ANCESTOR"
        path = self._expect_path()
        self._expect_keyword("FROM")
        source = self._expect_name("source")
        return ast.ProjectStatement(kind.lower(), path, source, self._optional_target())

    def _parse_select(self) -> ast.SelectStatement:
        path = self._expect_path()
        self._expect_punct("=")
        oid = self._expect_ident("oid")
        value = None
        card_label = None
        card_bounds = None
        prob_op = None
        prob_bound = None
        while self._accept_keyword("AND"):
            clause = self._expect_keyword("VALUE", "CARD", "PROB")
            if clause == "VALUE":
                self._expect_punct("=")
                value = self._expect_literal("value")
            elif clause == "PROB":
                prob_op, prob_bound = self._parse_prob_guard()
            else:
                self._expect_punct("(")
                card_label = self._expect_ident("card")
                self._expect_punct(")")
                self._expect_keyword("IN")
                self._expect_punct("[")
                low = self._expect_int()
                self._expect_punct(",")
                high = self._expect_int()
                self._expect_punct("]")
                card_bounds = (low, high)
        self._expect_keyword("FROM")
        source = self._expect_name("source")
        return ast.SelectStatement(
            path, oid, value, card_label, card_bounds, source,
            self._optional_target(), prob_op, prob_bound,
        )

    def _parse_prob_guard(self) -> tuple[str, float]:
        op_token = self._advance()
        if op_token.kind != "PUNCT" or op_token.value not in _PROB_OPS:
            raise PXQLSyntaxError(
                f"expected one of {', '.join(_PROB_OPS)} after PROB, got "
                f"{op_token.value!r}",
                position=op_token.position,
            )
        bound_token = self._advance()
        if bound_token.kind != "NUMBER":
            raise PXQLSyntaxError(
                f"expected a number after PROB {op_token.value}, got "
                f"{bound_token.value!r}",
                position=bound_token.position,
            )
        self.spans["prob"] = (op_token.position, bound_token.span[1])
        return op_token.value, float(bound_token.value)

    def _parse_product(self) -> ast.ProductStatement:
        left = self._expect_name("left")
        self._expect_punct(",")
        right = self._expect_name("right")
        new_root = None
        if self._accept_keyword("ROOT"):
            new_root = self._expect_ident("root")
        return ast.ProductStatement(left, right, new_root, self._optional_target())

    def _parse_point(self) -> ast.PointStatement:
        path = self._expect_path()
        self._expect_punct(":")
        oid = self._expect_ident("oid")
        self._expect_keyword("IN")
        return ast.PointStatement(path, oid, self._expect_name("source"))

    def _parse_exists(self) -> ast.ExistsStatement:
        path = self._expect_path()
        self._expect_keyword("IN")
        return ast.ExistsStatement(path, self._expect_name("source"))

    def _parse_chain(self) -> ast.ChainStatement:
        dotted = self._expect_ident("chain")
        self._expect_keyword("IN")
        return ast.ChainStatement(tuple(dotted.split(".")), self._expect_name("source"))

    def _parse_prob(self) -> ast.ProbStatement:
        oid = self._expect_ident("oid")
        self._expect_keyword("IN")
        return ast.ProbStatement(oid, self._expect_name("source"))

    def _parse_count(self) -> ast.CountStatement:
        path = self._expect_path()
        self._expect_keyword("IN")
        return ast.CountStatement(path, self._expect_name("source"))

    def _parse_dist(self) -> ast.DistStatement:
        path = self._expect_path()
        self._expect_keyword("IN")
        return ast.DistStatement(path, self._expect_name("source"))

    def _parse_unroll(self) -> ast.UnrollStatement:
        source = self._expect_name("source")
        self._expect_keyword("HORIZON")
        horizon = self._expect_int()
        return ast.UnrollStatement(source, horizon, self._optional_target())

    def _parse_estimate(self) -> ast.EstimateStatement:
        path = self._expect_path()
        oid = None
        token = self._peek()
        if token.kind == "PUNCT" and token.value == ":":
            self._advance()
            oid = self._expect_ident("oid")
        self._expect_keyword("IN")
        source = self._expect_name("source")
        samples = 1000
        if self._accept_keyword("SAMPLES"):
            samples = self._expect_int()
        return ast.EstimateStatement(path, oid, source, samples)

    def _parse_worlds(self) -> ast.WorldsStatement:
        source = self._expect_name("source")
        limit = 20
        if self._accept_keyword("LIMIT"):
            limit = self._expect_int()
        return ast.WorldsStatement(source, limit)

    def _parse_show(self) -> ast.ShowStatement:
        return ast.ShowStatement(self._expect_name("source"))

    def _parse_list(self) -> ast.ListStatement:
        return ast.ListStatement()

    def _parse_drop(self) -> ast.DropStatement:
        return ast.DropStatement(self._expect_name("source"))

    def _parse_load(self) -> ast.LoadStatement:
        name = self._expect_name("target")
        self._expect_keyword("FROM")
        token = self._advance()
        if token.kind != "STRING":
            raise PXQLSyntaxError(
                "LOAD needs a quoted file path", position=token.position
            )
        self.spans["file"] = token.span
        return ast.LoadStatement(name, token.value)

    def _parse_save(self) -> ast.SaveStatement:
        name = self._expect_name("source")
        path = None
        if self._accept_keyword("TO"):
            token = self._advance()
            if token.kind != "STRING":
                raise PXQLSyntaxError(
                    "SAVE ... TO needs a quoted file path",
                    position=token.position,
                )
            self.spans["file"] = token.span
            path = token.value
        return ast.SaveStatement(name, path)


def parse(text: str) -> ast.Statement:
    """Parse one PXQL statement."""
    return _Parser(tokenize(text)).parse()


def parse_spanned(text: str) -> tuple[ast.Statement, SpanMap]:
    """Parse one statement and also return the source spans of its parts.

    The span map keys are semantic roles (``"path"``, ``"oid"``,
    ``"source"``, ``"target"``, ``"left"``, ``"right"``, ``"value"``,
    ``"card"``, ``"prob"``, ``"chain"``, ``"file"``, ``"root"``), each
    mapped to a half-open ``(start, end)`` character range of ``text``.
    """
    parser = _Parser(tokenize(text))
    statement = parser.parse()
    return statement, parser.spans
