"""Recursive-descent parser for PXQL (grammar in :mod:`repro.pxql.ast`)."""

from __future__ import annotations

from repro.pxql import ast
from repro.pxql.lexer import PXQLSyntaxError, Token, tokenize
from repro.semistructured.paths import PathExpression


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_keyword(self, *keywords: str) -> str:
        token = self._advance()
        if token.kind != "KEYWORD" or token.value not in keywords:
            raise PXQLSyntaxError(
                f"expected {' or '.join(keywords)}, got {token.value!r}"
            )
        return token.value

    def _accept_keyword(self, *keywords: str) -> str | None:
        token = self._peek()
        if token.kind == "KEYWORD" and token.value in keywords:
            self._advance()
            return token.value
        return None

    def _expect_punct(self, symbol: str) -> None:
        token = self._advance()
        if token.kind != "PUNCT" or token.value != symbol:
            raise PXQLSyntaxError(f"expected {symbol!r}, got {token.value!r}")

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind != "IDENT":
            raise PXQLSyntaxError(f"expected an identifier, got {token.value!r}")
        return token.value

    def _expect_name(self) -> str:
        name = self._expect_ident()
        if "." in name:
            raise PXQLSyntaxError(f"expected a plain name, got path {name!r}")
        return name

    def _expect_path(self) -> PathExpression:
        return PathExpression.parse(self._expect_ident())

    def _expect_literal(self) -> object:
        token = self._advance()
        if token.kind == "STRING":
            return token.value
        if token.kind == "NUMBER":
            value = float(token.value)
            return int(value) if value.is_integer() else value
        if token.kind == "IDENT":
            return token.value
        raise PXQLSyntaxError(f"expected a literal, got {token.value!r}")

    def _expect_int(self) -> int:
        token = self._advance()
        if token.kind != "NUMBER" or "." in token.value:
            raise PXQLSyntaxError(f"expected an integer, got {token.value!r}")
        return int(token.value)

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise PXQLSyntaxError(f"trailing input from {token.value!r}")

    def _optional_target(self) -> str | None:
        if self._accept_keyword("AS"):
            return self._expect_name()
        return None

    # -- statements ------------------------------------------------------
    def parse(self) -> ast.Statement:
        if self._accept_keyword("EXPLAIN"):
            analyze = self._accept_keyword("ANALYZE") is not None
            statement = ast.ExplainStatement(analyze, self._parse_plain())
        else:
            statement = self._parse_plain()
        self._expect_eof()
        return statement

    def _parse_plain(self) -> ast.Statement:
        keyword = self._expect_keyword(
            "PROJECT", "SELECT", "PRODUCT", "POINT", "EXISTS", "CHAIN",
            "PROB", "COUNT", "DIST", "WORLDS", "SHOW", "LIST", "DROP",
            "LOAD", "SAVE", "UNROLL", "ESTIMATE",
        )
        return getattr(self, f"_parse_{keyword.lower()}")()

    def _parse_project(self) -> ast.ProjectStatement:
        kind = self._accept_keyword("ANCESTOR", "DESCENDANT", "SINGLE") or "ANCESTOR"
        path = self._expect_path()
        self._expect_keyword("FROM")
        source = self._expect_name()
        return ast.ProjectStatement(kind.lower(), path, source, self._optional_target())

    def _parse_select(self) -> ast.SelectStatement:
        path = self._expect_path()
        self._expect_punct("=")
        oid = self._expect_ident()
        value = None
        card_label = None
        card_bounds = None
        while self._accept_keyword("AND"):
            clause = self._expect_keyword("VALUE", "CARD")
            if clause == "VALUE":
                self._expect_punct("=")
                value = self._expect_literal()
            else:
                self._expect_punct("(")
                card_label = self._expect_ident()
                self._expect_punct(")")
                self._expect_keyword("IN")
                self._expect_punct("[")
                low = self._expect_int()
                self._expect_punct(",")
                high = self._expect_int()
                self._expect_punct("]")
                card_bounds = (low, high)
        self._expect_keyword("FROM")
        source = self._expect_name()
        return ast.SelectStatement(
            path, oid, value, card_label, card_bounds, source,
            self._optional_target(),
        )

    def _parse_product(self) -> ast.ProductStatement:
        left = self._expect_name()
        self._expect_punct(",")
        right = self._expect_name()
        new_root = None
        if self._accept_keyword("ROOT"):
            new_root = self._expect_ident()
        return ast.ProductStatement(left, right, new_root, self._optional_target())

    def _parse_point(self) -> ast.PointStatement:
        path = self._expect_path()
        self._expect_punct(":")
        oid = self._expect_ident()
        self._expect_keyword("IN")
        return ast.PointStatement(path, oid, self._expect_name())

    def _parse_exists(self) -> ast.ExistsStatement:
        path = self._expect_path()
        self._expect_keyword("IN")
        return ast.ExistsStatement(path, self._expect_name())

    def _parse_chain(self) -> ast.ChainStatement:
        dotted = self._expect_ident()
        self._expect_keyword("IN")
        return ast.ChainStatement(tuple(dotted.split(".")), self._expect_name())

    def _parse_prob(self) -> ast.ProbStatement:
        oid = self._expect_ident()
        self._expect_keyword("IN")
        return ast.ProbStatement(oid, self._expect_name())

    def _parse_count(self) -> ast.CountStatement:
        path = self._expect_path()
        self._expect_keyword("IN")
        return ast.CountStatement(path, self._expect_name())

    def _parse_dist(self) -> ast.DistStatement:
        path = self._expect_path()
        self._expect_keyword("IN")
        return ast.DistStatement(path, self._expect_name())

    def _parse_unroll(self) -> ast.UnrollStatement:
        source = self._expect_name()
        self._expect_keyword("HORIZON")
        horizon = self._expect_int()
        return ast.UnrollStatement(source, horizon, self._optional_target())

    def _parse_estimate(self) -> ast.EstimateStatement:
        path = self._expect_path()
        oid = None
        token = self._peek()
        if token.kind == "PUNCT" and token.value == ":":
            self._advance()
            oid = self._expect_ident()
        self._expect_keyword("IN")
        source = self._expect_name()
        samples = 1000
        if self._accept_keyword("SAMPLES"):
            samples = self._expect_int()
        return ast.EstimateStatement(path, oid, source, samples)

    def _parse_worlds(self) -> ast.WorldsStatement:
        source = self._expect_name()
        limit = 20
        if self._accept_keyword("LIMIT"):
            limit = self._expect_int()
        return ast.WorldsStatement(source, limit)

    def _parse_show(self) -> ast.ShowStatement:
        return ast.ShowStatement(self._expect_name())

    def _parse_list(self) -> ast.ListStatement:
        return ast.ListStatement()

    def _parse_drop(self) -> ast.DropStatement:
        return ast.DropStatement(self._expect_name())

    def _parse_load(self) -> ast.LoadStatement:
        name = self._expect_name()
        self._expect_keyword("FROM")
        token = self._advance()
        if token.kind != "STRING":
            raise PXQLSyntaxError("LOAD needs a quoted file path")
        return ast.LoadStatement(name, token.value)

    def _parse_save(self) -> ast.SaveStatement:
        name = self._expect_name()
        path = None
        if self._accept_keyword("TO"):
            token = self._advance()
            if token.kind != "STRING":
                raise PXQLSyntaxError("SAVE ... TO needs a quoted file path")
            path = token.value
        return ast.SaveStatement(name, path)


def parse(text: str) -> ast.Statement:
    """Parse one PXQL statement."""
    return _Parser(tokenize(text)).parse()
