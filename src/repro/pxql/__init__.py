"""PXQL: a small textual query language over PXML probabilistic instances.

Statements map one-to-one onto the paper's algebra and queries::

    PROJECT ANCESTOR R.book.author FROM bib AS authors
    SELECT R.book = B1 FROM bib AS sure
    SELECT R.book.author = A1 AND VALUE = "Hung" FROM bib
    PRODUCT bib, other ROOT lib AS combined
    POINT R.book.author : A1 IN bib
    EXISTS R.book.author IN bib
    CHAIN R.B1.A1 IN bib
    PROB A1 IN bib
    WORLDS bib LIMIT 10
    SHOW bib
    LIST / DROP name / LOAD name FROM "f.json" / SAVE name [TO "f.json"]

See :mod:`repro.pxql.ast` for the grammar and
``python -m repro.pxql --help`` for the command-line shell.
"""

from repro.pxql.interpreter import Interpreter, Result
from repro.pxql.lexer import PXQLSyntaxError, tokenize
from repro.pxql.parser import parse

__all__ = ["Interpreter", "PXQLSyntaxError", "Result", "parse", "tokenize"]
