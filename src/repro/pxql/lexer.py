"""Tokenizer for PXQL, the small query language over PXML instances.

The token set is deliberately tiny: keywords, identifiers (object ids /
instance names), dotted path expressions, string and number literals, and
a little punctuation.  Keywords are case-insensitive; identifiers are
case-sensitive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PXMLError


class PXQLSyntaxError(PXMLError):
    """Raised for malformed PXQL input.

    Carries the character offset the problem was detected at (``None``
    when unknown), so front-end diagnostics can point into the source.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


KEYWORDS = frozenset({
    "PROJECT", "ANCESTOR", "DESCENDANT", "SINGLE",
    "SELECT", "WHERE", "VALUE", "CARD",
    "PRODUCT", "ROOT",
    "POINT", "EXISTS", "CHAIN", "PROB",
    "IN", "FROM", "AS", "AND",
    "WORLDS", "LIMIT", "SHOW", "LIST", "DROP", "COUNT", "DIST",
    "LOAD", "SAVE", "TO", "UNROLL", "HORIZON", "ESTIMATE", "SAMPLES",
    "EXPLAIN", "ANALYZE", "CHECK", "LINT", "PROFILE",
    "SET", "TIMEOUT", "WITH",
})


@dataclass(frozen=True)
class Token:
    kind: str          # KEYWORD, IDENT, STRING, NUMBER, PUNCT, EOF
    value: str
    position: int
    end: int = -1      # one past the last source character (-1: unknown)

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"

    @property
    def span(self) -> tuple[int, int]:
        """The token's ``(start, end)`` source offsets."""
        return (self.position, self.end if self.end >= 0 else self.position)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-@]*(?:\.[A-Za-z0-9_\-@]+)*)
  | (?P<punct>>=|<=|[=:,()\[\]<>])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Turn a PXQL statement into a token list ending in EOF."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PXQLSyntaxError(
                f"unexpected character {text[position]!r} at offset {position}",
                position=position,
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "string":
            tokens.append(Token("STRING", value[1:-1].replace('\\"', '"'),
                                match.start(), match.end()))
        elif match.lastgroup == "number":
            tokens.append(Token("NUMBER", value, match.start(), match.end()))
        elif match.lastgroup == "ident":
            upper = value.upper()
            if upper in KEYWORDS and "." not in value:
                tokens.append(Token("KEYWORD", upper, match.start(), match.end()))
            else:
                tokens.append(Token("IDENT", value, match.start(), match.end()))
        else:
            tokens.append(Token("PUNCT", value, match.start(), match.end()))
    tokens.append(Token("EOF", "", len(text), len(text)))
    return tokens
