"""The PXQL interpreter: executes parsed statements against a Database.

Algebra statements (PROJECT / SELECT / PRODUCT) produce new probabilistic
instances — registered under the ``AS`` name when given, otherwise under
an auto-generated ``_resultN`` name — so queries compose across
statements exactly the way Section 2's situations chain operations.
Query statements (POINT / EXISTS / CHAIN / PROB) return probabilities.

Since the engine PR, algebra and query statements are routed through
:class:`repro.engine.Engine`: statements become logical plans, the
lineage of registered results is inlined so rewrite rules can work
across statement boundaries, sub-plan results are cached under
``(fingerprint, instance versions)`` keys, and ``EXPLAIN`` /
``EXPLAIN ANALYZE`` expose the chosen plan, per-node strategy, timings
and cache status.  Construct the interpreter with ``strategy="naive"``
to get the original eager one-call-per-statement path (used by the
parity test suite for A/B comparison).

Efficient algorithms are used on tree-structured instances; DAGs fall
back to the exact Bayesian-network / global engines automatically.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.algebra.projection_more import (
    descendant_projection_local,
    single_projection_local,
)
from repro.algebra.projection_prob import ancestor_projection_local
from repro.algebra.product import cartesian_product
from repro.algebra.selection import (
    ObjectCardinalityCondition,
    ObjectCondition,
    ObjectValueCondition,
    select_local,
)
from repro.check.dataguide import DataGuideCache
from repro.check.diagnostics import ERROR, CheckError, Diagnostic, DiagnosticReport
from repro.core.cardinality import CardinalityInterval
from repro.core.instance import ProbabilisticInstance
from repro.engine.executor import Engine, ExecutionResult, check_probability_guard
from repro.errors import BudgetExceeded, EmptyResultError, PXMLError
from repro.obs.export import render_span_tree
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Tracer, use_tracer
from repro.pxql import ast
from repro.pxql.parser import SpanMap, parse, parse_spanned
from repro.queries.engine import QueryEngine
from repro.render import render_distribution, render_instance
from repro.resilience.budget import Budget, use_budget
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.storage.database import Database, DatabaseError

_STRATEGIES = ("engine", "naive")
_CHECK_MODES = ("error", "warn", "off")

#: Statement kinds routed through the engine — the ones the graceful
#: degradation path can re-run on the naive strategy.
_ENGINE_ROUTED = (
    ast.ProjectStatement, ast.SelectStatement, ast.ProductStatement,
    ast.PointStatement, ast.ExistsStatement, ast.ChainStatement,
    ast.ProbStatement, ast.CountStatement, ast.DistStatement,
)

#: Failures that must *not* trigger the naive fallback: budgets are
#: user-imposed limits, check/catalog/empty-result errors are semantic —
#: the naive path would fail identically (or worse, mask the limit).
_FALLBACK_EXEMPT = (
    BudgetExceeded, CheckError, DatabaseError, EmptyResultError,
)


@dataclass
class Result:
    """The outcome of one statement.

    Attributes:
        value: a probability (float), a rendered string, a list of names,
            or ``None`` for pure side effects.
        instance_name: set when the statement produced/registered an
            instance.
        text: a human-readable rendering of the outcome.
    """

    value: object
    instance_name: str | None
    text: str


class Interpreter:
    """Executes PXQL statements against a :class:`Database`.

    Args:
        database: the catalog to execute against (fresh one if omitted).
        strategy: ``"engine"`` (plan, optimize, cache) or ``"naive"``
            (the original eager path; kept for A/B parity testing).
        optimizer: whether the engine applies its rewrite rules.
        use_index: whether the engine lowers path navigation onto the
            structural index (:mod:`repro.index`); off = pre-index plans.
        cache_size: LRU capacity of the engine's plan and result caches.
        check: check-before-execute mode.  ``"error"`` (default) runs
            the static checker before each statement and raises
            :class:`~repro.check.diagnostics.CheckError` with the whole
            batch when any error-severity finding is present;
            ``"warn"`` records findings in :attr:`last_diagnostics`
            without blocking; ``"off"`` skips the checker entirely.
        slow_query_s: statements at least this slow (wall-clock) are
            recorded in :attr:`slow_log` with their span tree.
        tracer: span collector shared with the engine (own instance if
            omitted).  Every statement becomes a root span; plan-node,
            rewrite, query, sampler and catalog spans nest beneath it.
        metrics: metrics registry shared with the engine (own instance
            if omitted).
    """

    def __init__(
        self,
        database: Database | None = None,
        strategy: str = "engine",
        optimizer: bool = True,
        use_index: bool = True,
        cache_size: int = 256,
        check: str = "error",
        slow_query_s: float = 0.25,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise PXMLError(
                f"unknown interpreter strategy {strategy!r}; "
                f"choose one of {_STRATEGIES}"
            )
        if check not in _CHECK_MODES:
            raise PXMLError(
                f"unknown check mode {check!r}; choose one of {_CHECK_MODES}"
            )
        self.database = database if database is not None else Database()
        self.strategy = strategy
        self.check = check
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slow_log = SlowQueryLog(threshold_s=slow_query_s)
        self.engine = Engine(self.database, optimizer=optimizer,
                             use_index=use_index, cache_size=cache_size,
                             tracer=self.tracer, metrics=self.metrics)
        self._counter = 0
        self._guides = DataGuideCache()
        #: Session-level dataflow state (:mod:`repro.check.script`):
        #: every executed statement is recorded, so ``CHECK`` and
        #: ``EXPLAIN LINT`` can flag shadowed results / timeouts (PX31x).
        # Imported here: repro.check.script needs the pxql AST, so a
        # module-level import would be circular.
        from repro.check.script import ScriptTracker

        self.script = ScriptTracker()
        self._spans: SpanMap | None = None
        self._subject: str | None = None
        #: WITH TIMEOUT seconds of the statement currently running
        #: (None when it carried no wrapper); used by the lint preview.
        self._statement_timeout_s: float | None = None
        #: The static checker's findings for the last checked statement.
        self.last_diagnostics: list[Diagnostic] = []
        #: Session-wide statement deadline set by ``SET TIMEOUT`` (None: off).
        self._session_timeout_s: float | None = None
        #: Record of graceful degradations: ``(statement label, engine error)``
        #: for every statement that was retried on the naive path.
        self.fallbacks: list[tuple[str, Exception]] = []

    # ------------------------------------------------------------------
    def execute(self, text: str) -> Result:
        """Parse and run one statement."""
        statement, spans = parse_spanned(text)
        return self.run(statement, spans=spans, subject=text.strip())

    def run(
        self,
        statement: ast.Statement,
        spans: SpanMap | None = None,
        subject: str | None = None,
    ) -> Result:
        original = statement
        timeout_s = self._session_timeout_s
        self._statement_timeout_s = None
        if isinstance(statement, ast.TimeoutStatement):
            timeout_s = statement.seconds
            self._statement_timeout_s = statement.seconds
            statement = statement.statement
        handler = getattr(self, f"_run_{type(statement).__name__}", None)
        if handler is None:
            raise PXMLError(f"unsupported statement: {statement!r}")
        self._spans = spans
        self._subject = subject
        if self.check != "off" and not isinstance(
            statement, (ast.CheckStatement, ast.ExplainStatement)
        ):
            # PROFILE is checked through its inner statement (the
            # checker unwraps it): it executes, so it must be gated.
            self.last_diagnostics = self._static_diagnostics(
                statement, spans, subject
            )
            if self.check == "error":
                errors = [d for d in self.last_diagnostics
                          if d.severity == ERROR]
                if errors:
                    raise CheckError(errors)
        label = subject if subject is not None else type(statement).__name__
        with use_tracer(self.tracer), use_registry(self.metrics):
            with self.tracer.span(
                "pxql.statement",
                kind=type(statement).__name__,
                statement=label,
            ) as span:
                try:
                    with self._budget_scope(timeout_s):
                        result = self._dispatch(handler, statement, label)
                except BaseException:
                    self.metrics.counter("pxql.errors").inc()
                    raise
        self.metrics.counter("pxql.statements").inc()
        self.metrics.histogram("pxql.statement_s").observe(span.wall_s)
        self.slow_log.observe(label, span.wall_s, span)
        try:
            # Record the statement *as written* (wrappers included) so
            # the session-level dataflow pass sees WITH TIMEOUT etc.
            self.script.observe(original, subject)
        except Exception:
            pass
        return result

    @contextmanager
    def _budget_scope(self, timeout_s: float | None) -> Iterator[Budget | None]:
        """Install a deadline-only execution budget when a timeout is set."""
        if timeout_s is None or timeout_s <= 0:
            yield None
            return
        with use_budget(Budget(deadline_s=timeout_s)) as budget:
            yield budget

    def _dispatch(self, handler, statement: ast.Statement, label: str):
        """Run a handler, degrading engine failures to the naive path.

        An unexpected engine-strategy failure on an engine-routed
        statement is retried once with ``strategy="naive"`` — the
        original eager path, which shares no planner/optimizer/cache
        machinery with the engine — and recorded in :attr:`fallbacks`,
        the ``resilience.fallbacks`` counter and a ``resilience.fallback``
        trace event.  Budget, check, catalog and empty-result errors
        propagate untouched (see ``_FALLBACK_EXEMPT``).
        """
        try:
            return handler(statement)
        except _FALLBACK_EXEMPT:
            raise
        except Exception as exc:
            if self.strategy != "engine" or not isinstance(
                statement, _ENGINE_ROUTED
            ):
                raise
            self.metrics.counter("resilience.fallbacks").inc()
            self.tracer.event(
                "resilience.fallback",
                statement=label,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.fallbacks.append((label, exc))
            self.strategy = "naive"
            try:
                return handler(statement)
            finally:
                self.strategy = "engine"

    def _static_diagnostics(
        self,
        statement: ast.Statement,
        spans: SpanMap | None,
        subject: str | None,
        rewrites: bool = False,
    ) -> list[Diagnostic]:
        """Run the static checker, never letting a checker bug block execution."""
        try:
            from repro.check.query import check_statement

            return check_statement(
                statement, self.database, spans=spans, guides=self._guides,
                subject=subject, rewrites=rewrites,
            )
        except Exception:
            return []

    @property
    def cache_stats(self) -> dict[str, dict[str, int]]:
        """The engine's plan/result cache counters."""
        return self.engine.cache_stats

    # ------------------------------------------------------------------
    def _fresh_name(self) -> str:
        self._counter += 1
        return f"_result{self._counter}"

    def _register(self, target: str | None, instance: ProbabilisticInstance) -> str:
        name = target if target is not None else self._fresh_name()
        self.database.register(name, instance, replace=True)
        return name

    def _query_engine(self, name: str) -> QueryEngine:
        return QueryEngine(self.database.get(name))

    # ------------------------------------------------------------------
    # Engine routing
    # ------------------------------------------------------------------
    def _engine_algebra(
        self, statement: ast.Statement, target: str | None
    ) -> tuple[ExecutionResult, str]:
        """Execute an instance-producing statement through the engine."""
        plan = self.engine.plan_statement(statement)
        input_versions = self.engine.versions_of(plan)
        execution = self.engine.execute_plan(plan)
        name = self._register(target, execution.value)
        self.engine.record_lineage(name, plan, input_versions)
        return execution, name

    def _engine_query(self, statement: ast.Statement) -> ExecutionResult:
        """Execute a probability-returning statement through the engine."""
        return self.engine.execute_statement(statement)

    # ------------------------------------------------------------------
    # Algebra statements
    # ------------------------------------------------------------------
    def _run_ProjectStatement(self, stmt: ast.ProjectStatement) -> Result:
        if self.strategy == "naive":
            source = self.database.get(stmt.source)
            operator = {
                "ancestor": ancestor_projection_local,
                "descendant": descendant_projection_local,
                "single": single_projection_local,
            }[stmt.kind]
            projected = operator(source, stmt.path)
            name = self._register(stmt.target, projected)
        else:
            execution, name = self._engine_algebra(stmt, stmt.target)
            projected = execution.value
        return Result(
            projected, name,
            f"{stmt.kind} projection of {stmt.path} -> {name} "
            f"({len(projected)} objects)",
        )

    def _run_SelectStatement(self, stmt: ast.SelectStatement) -> Result:
        condition = self._condition_of(stmt)
        if self.strategy == "naive":
            source = self.database.get(stmt.source)
            selection = select_local(source, condition)
            check_probability_guard(
                selection.probability, stmt.prob_op, stmt.prob_bound
            )
            instance = selection.instance
            probability = selection.probability
            name = self._register(stmt.target, instance)
        else:
            execution, name = self._engine_algebra(stmt, stmt.target)
            instance = execution.value
            probability = execution.condition_probability
        return Result(
            instance, name,
            f"selection [{condition}] -> {name} "
            f"(condition probability {probability:.6g})",
        )

    @staticmethod
    def _condition_of(stmt: ast.SelectStatement):
        if stmt.card_label is not None:
            low, high = stmt.card_bounds
            return ObjectCardinalityCondition(
                stmt.path, stmt.oid, stmt.card_label, CardinalityInterval(low, high)
            )
        if stmt.value is not None:
            return ObjectValueCondition(stmt.path, stmt.oid, stmt.value)
        return ObjectCondition(stmt.path, stmt.oid)

    def _run_ProductStatement(self, stmt: ast.ProductStatement) -> Result:
        if self.strategy == "naive":
            product = cartesian_product(
                self.database.get(stmt.left),
                self.database.get(stmt.right),
                stmt.new_root,
            )
            name = self._register(stmt.target, product)
        else:
            execution, name = self._engine_algebra(stmt, stmt.target)
            product = execution.value
        return Result(
            product, name,
            f"product of {stmt.left} and {stmt.right} -> {name} "
            f"({len(product)} objects)",
        )

    # ------------------------------------------------------------------
    # Query statements
    # ------------------------------------------------------------------
    def _run_PointStatement(self, stmt: ast.PointStatement) -> Result:
        if self.strategy == "naive":
            probability = self._query_engine(stmt.source).point(stmt.path, stmt.oid)
        else:
            probability = self._engine_query(stmt).value
        return Result(
            probability, None,
            f"P({stmt.oid} in {stmt.path}) = {probability:.6g}",
        )

    def _run_ExistsStatement(self, stmt: ast.ExistsStatement) -> Result:
        if self.strategy == "naive":
            probability = self._query_engine(stmt.source).exists(stmt.path)
        else:
            probability = self._engine_query(stmt).value
        return Result(
            probability, None,
            f"P(exists {stmt.path}) = {probability:.6g}",
        )

    def _run_ChainStatement(self, stmt: ast.ChainStatement) -> Result:
        if self.strategy == "naive":
            probability = self._query_engine(stmt.source).chain(list(stmt.chain))
        else:
            probability = self._engine_query(stmt).value
        return Result(
            probability, None,
            f"P({'.'.join(stmt.chain)}) = {probability:.6g}",
        )

    def _run_ProbStatement(self, stmt: ast.ProbStatement) -> Result:
        if self.strategy == "naive":
            probability = self._query_engine(stmt.source).object_exists(stmt.oid)
        else:
            probability = self._engine_query(stmt).value
        return Result(
            probability, None,
            f"P({stmt.oid} exists) = {probability:.6g}",
        )

    def _run_CountStatement(self, stmt: ast.CountStatement) -> Result:
        if self.strategy == "naive":
            from repro.queries.aggregates import expected_match_count

            expectation = expected_match_count(
                self.database.get(stmt.source), stmt.path
            )
        else:
            expectation = self._engine_query(stmt).value
        return Result(
            expectation, None,
            f"E[#objects in {stmt.path}] = {expectation:.6g}",
        )

    def _run_DistStatement(self, stmt: ast.DistStatement) -> Result:
        if self.strategy == "naive":
            from repro.queries.aggregates import match_count_distribution

            distribution = match_count_distribution(
                self.database.get(stmt.source), stmt.path
            )
        else:
            distribution = self._engine_query(stmt).value
        rows = "\n".join(
            f"  {count}: {probability:.6g}"
            for count, probability in sorted(distribution.items())
        )
        return Result(
            distribution, None,
            f"#objects in {stmt.path}:\n{rows}",
        )

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------
    def _run_ExplainStatement(self, stmt: ast.ExplainStatement) -> Result:
        inner = stmt.statement
        plan = self.engine.plan_statement(inner)
        if plan is None:
            raise PXMLError(
                "EXPLAIN supports algebra (PROJECT/SELECT/PRODUCT) and "
                "query (POINT/EXISTS/CHAIN/PROB/COUNT/DIST) statements"
            )
        if getattr(stmt, "lint", False):
            diagnostics = self._static_diagnostics(
                inner, self._spans, self._subject, rewrites=True
            )
            diagnostics.extend(self._script_preview(inner))
            self.last_diagnostics = diagnostics
            report = DiagnosticReport(list(diagnostics))
            text = self.engine.explain(plan) + "\n" + report.to_text()
            return Result(diagnostics, None, text)
        if not stmt.analyze:
            text = self.engine.explain(plan)
            return Result(text, None, text)
        with self._verified_execution():
            if isinstance(
                inner,
                (ast.ProjectStatement, ast.SelectStatement,
                 ast.ProductStatement),
            ):
                execution, name = self._engine_algebra(inner, inner.target)
            else:
                execution, name = self._engine_query(inner), None
            # Rendered inside the scope: explain_analyze only prints the
            # violations line while verification is on.
            text = self.engine.explain_analyze(execution)
        if not isinstance(execution.value, ProbabilisticInstance):
            text += f"\nresult: {execution.value}"
        elif name is not None:
            text += f"\nresult: registered as {name}"
        return Result(text, name, text)

    # ------------------------------------------------------------------
    # CHECK: static diagnostics only, never executed
    # ------------------------------------------------------------------
    def _run_CheckStatement(self, stmt: ast.CheckStatement) -> Result:
        diagnostics = self._static_diagnostics(
            stmt.statement, self._spans, self._subject, rewrites=True
        )
        diagnostics.extend(self._script_preview(stmt.statement))
        self.last_diagnostics = diagnostics
        report = DiagnosticReport(list(diagnostics))
        return Result(diagnostics, None, report.to_text())

    def _script_preview(self, statement: ast.Statement) -> list[Diagnostic]:
        """Session-dataflow findings a statement would add (never raises).

        A ``WITH TIMEOUT`` on the ``CHECK`` / ``EXPLAIN LINT`` wrapper
        is re-attached to the previewed statement: the user is vetting
        the statement as they would run it, deadline included.
        """
        try:
            if self._statement_timeout_s is not None:
                statement = ast.TimeoutStatement(
                    statement, self._statement_timeout_s
                )
            return self.script.preview(statement, self._subject)
        except Exception:
            return []

    @contextmanager
    def _verified_execution(self) -> Iterator[None]:
        """Turn on runtime certificate verification for one execution.

        Under ``EXPLAIN ANALYZE`` / ``PROFILE`` the engine checks every
        observed cardinality and probability against the absint
        certificate's intervals; violations land in the
        ``check.absint_violations`` counter and the execution result.
        """
        previous = self.engine.absint_verify
        self.engine.absint_verify = True
        try:
            yield
        finally:
            self.engine.absint_verify = previous

    # ------------------------------------------------------------------
    # PROFILE: execute and return the span tree
    # ------------------------------------------------------------------
    def _run_ProfileStatement(self, stmt: ast.ProfileStatement) -> Result:
        inner = stmt.statement
        handler = getattr(self, f"_run_{type(inner).__name__}", None)
        if handler is None or isinstance(
            inner, (ast.ExplainStatement, ast.CheckStatement,
                    ast.ProfileStatement)
        ):
            raise PXMLError(
                "PROFILE takes an executable statement "
                "(not EXPLAIN/CHECK/PROFILE)"
            )
        with self.tracer.span(
            "pxql.profile",
            kind=type(inner).__name__,
            statement=self._subject or type(inner).__name__,
        ) as root, self._verified_execution():
            try:
                inner_result = handler(inner)
            except BudgetExceeded as exc:
                # Ship the partial span tree with the error: everything
                # executed before the budget tripped is already recorded
                # under ``root``.
                exc.span = root
                raise
        self.metrics.counter("pxql.profiles").inc()
        text = render_span_tree(root)
        if inner_result.instance_name is not None:
            text += f"\nresult: registered as {inner_result.instance_name}"
        elif not isinstance(inner_result.value, (ProbabilisticInstance, str)):
            text += f"\nresult: {inner_result.value}"
        return Result(root, inner_result.instance_name, text)

    # ------------------------------------------------------------------
    # SET: session options
    # ------------------------------------------------------------------
    def _run_SetStatement(self, stmt: ast.SetStatement) -> Result:
        if stmt.option != "timeout":
            raise PXMLError(f"unknown session option {stmt.option!r}")
        self._session_timeout_s = stmt.value if stmt.value > 0 else None
        if self._session_timeout_s is None:
            return Result(None, None, "timeout cleared")
        return Result(
            self._session_timeout_s, None,
            f"timeout set to {self._session_timeout_s:g}s per statement",
        )

    # ------------------------------------------------------------------
    # Remaining (eager) statements
    # ------------------------------------------------------------------
    def _run_UnrollStatement(self, stmt: ast.UnrollStatement) -> Result:
        from repro.core.unroll import unroll

        unrolled = unroll(self.database.get(stmt.source), stmt.horizon)
        name = self._register(stmt.target, unrolled)
        return Result(
            unrolled, name,
            f"unrolled {stmt.source} to horizon {stmt.horizon} -> {name} "
            f"({len(unrolled)} objects)",
        )

    def _run_EstimateStatement(self, stmt: ast.EstimateStatement) -> Result:
        from repro.semantics.sampling import (
            estimate_existential_query,
            estimate_point_query,
        )

        source = self.database.get(stmt.source)
        if stmt.oid is None:
            estimate = estimate_existential_query(source, stmt.path, stmt.samples)
            label = f"P(exists {stmt.path})"
        else:
            estimate = estimate_point_query(source, stmt.path, stmt.oid,
                                            stmt.samples)
            label = f"P({stmt.oid} in {stmt.path})"
        return Result(estimate, None, f"{label} ~= {estimate}")

    def _run_WorldsStatement(self, stmt: ast.WorldsStatement) -> Result:
        interpretation = GlobalInterpretation.from_local(
            self.database.get(stmt.source)
        )
        text = render_distribution(interpretation, limit=stmt.limit)
        return Result(interpretation, None, text)

    def _run_ShowStatement(self, stmt: ast.ShowStatement) -> Result:
        text = render_instance(self.database.get(stmt.source))
        return Result(text, None, text)

    def _run_ListStatement(self, stmt: ast.ListStatement) -> Result:
        names = self.database.names()
        return Result(names, None, "\n".join(names) if names else "(empty)")

    def _run_DropStatement(self, stmt: ast.DropStatement) -> Result:
        self.database.drop(stmt.name)
        return Result(None, None, f"dropped {stmt.name}")

    def _run_LoadStatement(self, stmt: ast.LoadStatement) -> Result:
        instance = self.database.load_file(stmt.name, stmt.path)
        return Result(
            instance, stmt.name,
            f"loaded {stmt.name} from {stmt.path} ({len(instance)} objects)",
        )

    def _run_SaveStatement(self, stmt: ast.SaveStatement) -> Result:
        if stmt.path is not None:
            from repro.io.json_codec import write_instance

            write_instance(self.database.get(stmt.name), stmt.path)
            return Result(None, stmt.name, f"saved {stmt.name} to {stmt.path}")
        path = self.database.save(stmt.name)
        return Result(None, stmt.name, f"saved {stmt.name} to {path}")
