"""The PXQL interpreter: executes parsed statements against a Database.

Algebra statements (PROJECT / SELECT / PRODUCT) produce new probabilistic
instances — registered under the ``AS`` name when given, otherwise under
an auto-generated ``_resultN`` name — so queries compose across
statements exactly the way Section 2's situations chain operations.
Query statements (POINT / EXISTS / CHAIN / PROB) return probabilities.

Efficient algorithms are used on tree-structured instances; DAGs fall
back to the exact Bayesian-network / global engines automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.projection_more import (
    descendant_projection_local,
    single_projection_local,
)
from repro.algebra.projection_prob import ancestor_projection_local
from repro.algebra.product import cartesian_product
from repro.algebra.selection import (
    ObjectCardinalityCondition,
    ObjectCondition,
    ObjectValueCondition,
    select_local,
)
from repro.core.cardinality import CardinalityInterval
from repro.core.instance import ProbabilisticInstance
from repro.errors import PXMLError
from repro.pxql import ast
from repro.pxql.parser import parse
from repro.queries.engine import QueryEngine
from repro.render import render_distribution, render_instance
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.storage.database import Database


@dataclass
class Result:
    """The outcome of one statement.

    Attributes:
        value: a probability (float), a rendered string, a list of names,
            or ``None`` for pure side effects.
        instance_name: set when the statement produced/registered an
            instance.
        text: a human-readable rendering of the outcome.
    """

    value: object
    instance_name: str | None
    text: str


class Interpreter:
    """Executes PXQL statements against a :class:`Database`."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database if database is not None else Database()
        self._counter = 0

    # ------------------------------------------------------------------
    def execute(self, text: str) -> Result:
        """Parse and run one statement."""
        return self.run(parse(text))

    def run(self, statement: ast.Statement) -> Result:
        handler = getattr(self, f"_run_{type(statement).__name__}", None)
        if handler is None:
            raise PXMLError(f"unsupported statement: {statement!r}")
        return handler(statement)

    # ------------------------------------------------------------------
    def _fresh_name(self) -> str:
        self._counter += 1
        return f"_result{self._counter}"

    def _register(self, target: str | None, instance: ProbabilisticInstance) -> str:
        name = target if target is not None else self._fresh_name()
        self.database.register(name, instance, replace=True)
        return name

    def _engine(self, name: str) -> QueryEngine:
        return QueryEngine(self.database.get(name))

    # ------------------------------------------------------------------
    def _run_ProjectStatement(self, stmt: ast.ProjectStatement) -> Result:
        source = self.database.get(stmt.source)
        operator = {
            "ancestor": ancestor_projection_local,
            "descendant": descendant_projection_local,
            "single": single_projection_local,
        }[stmt.kind]
        projected = operator(source, stmt.path)
        name = self._register(stmt.target, projected)
        return Result(
            projected, name,
            f"{stmt.kind} projection of {stmt.path} -> {name} "
            f"({len(projected)} objects)",
        )

    def _run_SelectStatement(self, stmt: ast.SelectStatement) -> Result:
        source = self.database.get(stmt.source)
        if stmt.card_label is not None:
            low, high = stmt.card_bounds
            condition = ObjectCardinalityCondition(
                stmt.path, stmt.oid, stmt.card_label, CardinalityInterval(low, high)
            )
        elif stmt.value is not None:
            condition = ObjectValueCondition(stmt.path, stmt.oid, stmt.value)
        else:
            condition = ObjectCondition(stmt.path, stmt.oid)
        selection = select_local(source, condition)
        name = self._register(stmt.target, selection.instance)
        return Result(
            selection.instance, name,
            f"selection [{condition}] -> {name} "
            f"(condition probability {selection.probability:.6g})",
        )

    def _run_ProductStatement(self, stmt: ast.ProductStatement) -> Result:
        product = cartesian_product(
            self.database.get(stmt.left),
            self.database.get(stmt.right),
            stmt.new_root,
        )
        name = self._register(stmt.target, product)
        return Result(
            product, name,
            f"product of {stmt.left} and {stmt.right} -> {name} "
            f"({len(product)} objects)",
        )

    def _run_PointStatement(self, stmt: ast.PointStatement) -> Result:
        probability = self._engine(stmt.source).point(stmt.path, stmt.oid)
        return Result(
            probability, None,
            f"P({stmt.oid} in {stmt.path}) = {probability:.6g}",
        )

    def _run_ExistsStatement(self, stmt: ast.ExistsStatement) -> Result:
        probability = self._engine(stmt.source).exists(stmt.path)
        return Result(
            probability, None,
            f"P(exists {stmt.path}) = {probability:.6g}",
        )

    def _run_ChainStatement(self, stmt: ast.ChainStatement) -> Result:
        probability = self._engine(stmt.source).chain(list(stmt.chain))
        return Result(
            probability, None,
            f"P({'.'.join(stmt.chain)}) = {probability:.6g}",
        )

    def _run_ProbStatement(self, stmt: ast.ProbStatement) -> Result:
        probability = self._engine(stmt.source).object_exists(stmt.oid)
        return Result(
            probability, None,
            f"P({stmt.oid} exists) = {probability:.6g}",
        )

    def _run_CountStatement(self, stmt: ast.CountStatement) -> Result:
        from repro.queries.aggregates import expected_match_count

        expectation = expected_match_count(self.database.get(stmt.source), stmt.path)
        return Result(
            expectation, None,
            f"E[#objects in {stmt.path}] = {expectation:.6g}",
        )

    def _run_DistStatement(self, stmt: ast.DistStatement) -> Result:
        from repro.queries.aggregates import match_count_distribution

        distribution = match_count_distribution(
            self.database.get(stmt.source), stmt.path
        )
        rows = "\n".join(
            f"  {count}: {probability:.6g}"
            for count, probability in sorted(distribution.items())
        )
        return Result(
            distribution, None,
            f"#objects in {stmt.path}:\n{rows}",
        )

    def _run_UnrollStatement(self, stmt: ast.UnrollStatement) -> Result:
        from repro.core.unroll import unroll

        unrolled = unroll(self.database.get(stmt.source), stmt.horizon)
        name = self._register(stmt.target, unrolled)
        return Result(
            unrolled, name,
            f"unrolled {stmt.source} to horizon {stmt.horizon} -> {name} "
            f"({len(unrolled)} objects)",
        )

    def _run_EstimateStatement(self, stmt: ast.EstimateStatement) -> Result:
        from repro.semantics.sampling import (
            estimate_existential_query,
            estimate_point_query,
        )

        source = self.database.get(stmt.source)
        if stmt.oid is None:
            estimate = estimate_existential_query(source, stmt.path, stmt.samples)
            label = f"P(exists {stmt.path})"
        else:
            estimate = estimate_point_query(source, stmt.path, stmt.oid,
                                            stmt.samples)
            label = f"P({stmt.oid} in {stmt.path})"
        return Result(estimate, None, f"{label} ~= {estimate}")

    def _run_WorldsStatement(self, stmt: ast.WorldsStatement) -> Result:
        interpretation = GlobalInterpretation.from_local(
            self.database.get(stmt.source)
        )
        text = render_distribution(interpretation, limit=stmt.limit)
        return Result(interpretation, None, text)

    def _run_ShowStatement(self, stmt: ast.ShowStatement) -> Result:
        text = render_instance(self.database.get(stmt.source))
        return Result(text, None, text)

    def _run_ListStatement(self, stmt: ast.ListStatement) -> Result:
        names = self.database.names()
        return Result(names, None, "\n".join(names) if names else "(empty)")

    def _run_DropStatement(self, stmt: ast.DropStatement) -> Result:
        self.database.drop(stmt.name)
        return Result(None, None, f"dropped {stmt.name}")

    def _run_LoadStatement(self, stmt: ast.LoadStatement) -> Result:
        instance = self.database.load_file(stmt.name, stmt.path)
        return Result(
            instance, stmt.name,
            f"loaded {stmt.name} from {stmt.path} ({len(instance)} objects)",
        )

    def _run_SaveStatement(self, stmt: ast.SaveStatement) -> Result:
        if stmt.path is not None:
            from repro.io.json_codec import write_instance

            write_instance(self.database.get(stmt.name), stmt.path)
            return Result(None, stmt.name, f"saved {stmt.name} to {stmt.path}")
        path = self.database.save(stmt.name)
        return Result(None, stmt.name, f"saved {stmt.name} to {path}")
