"""The PXQL command-line shell.

Usage::

    python -m repro.pxql -d ./mydb 'POINT R.book.author : A1 IN bib'
    python -m repro.pxql -d ./mydb            # interactive REPL
    echo 'LIST' | python -m repro.pxql -d ./mydb

With ``-d DIR`` instances persist across invocations (one JSON file per
instance).  With no statement arguments the shell reads statements from
stdin, one per line; blank lines and ``#`` comments are skipped.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import PXMLError
from repro.pxql.interpreter import Interpreter
from repro.storage.database import Database


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pxql",
        description="Run PXQL statements against a PXML instance database.",
    )
    parser.add_argument("-d", "--database", metavar="DIR",
                        help="backing directory for named instances")
    parser.add_argument("statements", nargs="*",
                        help="statements to run (default: read stdin)")
    args = parser.parse_args(argv)

    database = Database(args.database) if args.database else Database()
    interpreter = Interpreter(database)

    def run_one(line: str) -> bool:
        line = line.strip()
        if not line or line.startswith("#"):
            return True
        try:
            result = interpreter.execute(line)
        except PXMLError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return False
        print(result.text)
        return True

    ok = True
    if args.statements:
        for statement in args.statements:
            ok = run_one(statement) and ok
    else:
        interactive = sys.stdin.isatty()
        if interactive:
            print("PXQL shell — end with Ctrl-D. Try: LIST")
        for line in sys.stdin:
            if interactive:
                print("pxql> ", end="", flush=True)
            ok = run_one(line) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
