"""PXML: a probabilistic semistructured data model and algebra.

A full reproduction of Hung, Getoor & Subrahmanian, *"PXML: A
Probabilistic Semistructured Data Model and Algebra"* (ICDE 2003):

* ``repro.semistructured`` — the OEM-style semistructured substrate.
* ``repro.core`` — weak instances, OPFs/VPFs, probabilistic instances.
* ``repro.semantics`` — compatible worlds, global interpretations,
  Theorem 1 checking and Theorem 2 factorization.
* ``repro.algebra`` — ancestor/descendant/single projection, selection,
  Cartesian product, and the efficient local algorithms of Section 6.
* ``repro.queries`` — chain, point and existential path queries.
* ``repro.bayesnet`` — the Bayesian-network mapping and exact inference.
* ``repro.protdb`` — the ProTDB baseline and its translation into PXML.
* ``repro.pixml`` — the interval-probability extension.
* ``repro.io`` — JSON/XML codecs.
* ``repro.workloads`` / ``repro.bench`` — Section 7's experiments.

Quickstart::

    from repro import InstanceBuilder, QueryEngine

    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"], card=(1, 2))
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.5})
    builder.leaf("B1", "title", ["VQDB", "Lore"], {"VQDB": 1.0})
    builder.leaf("B2", "title", vpf={"Lore": 1.0})
    instance = builder.build()
    print(QueryEngine(instance).point("R.book", "B1"))   # 0.8
"""

from repro.algebra import (
    CardinalityCondition,
    ObjectCondition,
    ObjectValueCondition,
    ValueCondition,
    ancestor_projection,
    ancestor_projection_global,
    ancestor_projection_local,
    cartesian_product,
    descendant_projection,
    select_global,
    select_local,
    single_projection,
)
from repro.core import (
    CardinalityInterval,
    IndependentOPF,
    InstanceBuilder,
    LocalInterpretation,
    NonEmptyIndependentOPF,
    PerLabelOPF,
    ProbabilisticInstance,
    SymmetricOPF,
    TabularOPF,
    TabularVPF,
    WeakInstance,
)
from repro.errors import PXMLError
from repro.events import (
    ChainExists,
    Event,
    HasValue,
    ObjectExists,
    PathNonEmpty,
    Reaches,
    conditional_probability,
    estimate,
    probability,
)
from repro.learn import learn_instance, log_likelihood
from repro.queries import QueryEngine, chain_probability, existential_query, point_query
from repro.semantics import GlobalInterpretation, factorize, verify_theorem1
from repro.semistructured import (
    LeafType,
    PathExpression,
    SemistructuredInstance,
    TypeRegistry,
)

__version__ = "1.0.0"

__all__ = [
    "CardinalityCondition",
    "CardinalityInterval",
    "ChainExists",
    "Event",
    "GlobalInterpretation",
    "HasValue",
    "IndependentOPF",
    "InstanceBuilder",
    "LeafType",
    "LocalInterpretation",
    "NonEmptyIndependentOPF",
    "ObjectCondition",
    "ObjectExists",
    "ObjectValueCondition",
    "PXMLError",
    "PathExpression",
    "PathNonEmpty",
    "PerLabelOPF",
    "ProbabilisticInstance",
    "QueryEngine",
    "Reaches",
    "SemistructuredInstance",
    "SymmetricOPF",
    "TabularOPF",
    "TabularVPF",
    "TypeRegistry",
    "ValueCondition",
    "WeakInstance",
    "__version__",
    "ancestor_projection",
    "ancestor_projection_global",
    "ancestor_projection_local",
    "cartesian_product",
    "chain_probability",
    "conditional_probability",
    "descendant_projection",
    "estimate",
    "existential_query",
    "factorize",
    "learn_instance",
    "log_likelihood",
    "point_query",
    "probability",
    "select_global",
    "select_local",
    "single_projection",
    "verify_theorem1",
]
