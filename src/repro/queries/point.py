"""Probabilistic point queries and existential path queries (Section 6.2).

* :func:`point_query` — ``P(o in p)``: the probability that object ``o``
  satisfies path expression ``p`` in a compatible world (Definition 6.1).
  On a tree the paper's "extract o and its path ancestors, compute
  ``eps_r``" recipe collapses to the chain-probability product, because
  the path ancestors of ``o`` form the unique parent chain.

* :func:`existential_query` — ``P(exists o: o in p)``: keep *all* objects
  satisfying ``p`` plus their path ancestors and compute ``eps_r`` — the
  root's survival probability from the Section 6.1 epsilon pass, which
  performs exactly the inclusion-exclusion over sibling branches the sum
  requires.
"""

from __future__ import annotations

from repro.algebra.projection_prob import epsilon_pass
from repro.algebra.selection import chain_to
from repro.core.instance import ProbabilisticInstance
from repro.errors import AlgebraError
from repro.queries.chain import chain_probability
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression


def point_query(
    pi: ProbabilisticInstance, path: PathExpression | str, oid: Oid
) -> float:
    """``P(o in p)`` on a tree-structured probabilistic instance.

    Returns 0.0 when ``o`` does not satisfy the path even in the weak
    instance ("it is obvious that the probability must be zero").
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    try:
        chain = chain_to(pi, path, oid)
    except AlgebraError:
        return 0.0
    return chain_probability(pi, chain)


def existential_query(pi: ProbabilisticInstance, path: PathExpression | str) -> float:
    """``P(exists o: o in p)`` via the epsilon pass (``eps_r``)."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    sweep = epsilon_pass(pi, path)
    return sweep.root_epsilon
