"""Aggregate queries over probabilistic instances.

Beyond the paper's boolean point queries, downstream users routinely ask
*count* and *value* aggregates: "how many authors does B1 have in
expectation?", "what is the distribution over the number of objects
satisfying p?", "what is P(val(o) = v and o is reached via p)?".  These
are all computable from the local interpretation without enumeration on
tree-structured instances.
"""

from __future__ import annotations

from repro.core.instance import ProbabilisticInstance
from repro.errors import QueryError
from repro.queries.chain import chain_probability
from repro.queries.point import point_query
from repro.semistructured.graph import Label, Oid
from repro.semistructured.paths import PathExpression, PathMatch, match_path
from repro.semistructured.types import Value


def child_count_distribution(
    pi: ProbabilisticInstance, oid: Oid, label: Label
) -> dict[int, float]:
    """``P(|lch(o, label)| = k | o exists)`` for each k with positive mass."""
    opf = pi.opf(oid)
    if opf is None:
        raise QueryError(f"object {oid!r} has no OPF (is it a leaf?)")
    pool = pi.weak.lch(oid, label)
    distribution: dict[int, float] = {}
    for child_set, probability in opf.support():
        count = len(child_set & pool)
        distribution[count] = distribution.get(count, 0.0) + probability
    return distribution


def expected_child_count(
    pi: ProbabilisticInstance, oid: Oid, label: Label, conditional: bool = True
) -> float:
    """``E[|lch(o, label)|]`` given the object exists (or unconditionally).

    With ``conditional=False`` the expectation is multiplied by the
    probability that ``o`` occurs at all (tree-structured instances).
    """
    expectation = sum(
        count * probability
        for count, probability in child_count_distribution(pi, oid, label).items()
    )
    if conditional:
        return expectation
    from repro.analysis import existence_probability

    return expectation * existence_probability(pi, oid)


def expected_match_count(
    pi: ProbabilisticInstance,
    path: PathExpression | str,
    match: PathMatch | None = None,
) -> float:
    """``E[#objects satisfying p]`` — the sum of the point probabilities.

    Exact on trees by linearity of expectation; no enumeration.  A
    precomputed ``match`` (e.g. from the columnar matcher) skips the
    structural locate step.
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    if match is None:
        match = match_path(pi.weak.graph(), path)
    return sum(point_query(pi, path, oid) for oid in match.matched)


def match_count_distribution(
    pi: ProbabilisticInstance,
    path: PathExpression | str,
    match: PathMatch | None = None,
) -> dict[int, float]:
    """The exact distribution of ``#objects satisfying p`` (trees).

    Computed bottom-up with per-branch count-generating convolutions —
    polynomial in the number of matched objects, never enumerating
    worlds.  A precomputed ``match`` skips the structural locate step.
    """
    if isinstance(path, str):
        path = PathExpression.parse(path)
    from repro.algebra.projection_prob import _require_tree

    _require_tree(pi)
    if match is None:
        match = match_path(pi.weak.graph(), path)
    if match.is_empty:
        return {0: 1.0}
    depth = len(match.levels) - 1
    if depth == 0:
        return {1: 1.0}

    # counts[o] = distribution of matched descendants given o exists.
    counts: dict[Oid, dict[int, float]] = {}
    for oid in match.levels[depth]:
        counts[oid] = {1: 1.0}
    for level in range(depth - 1, -1, -1):
        children_of: dict[Oid, list[Oid]] = {}
        for src, dst in match.level_edges[level]:
            if dst in counts:
                children_of.setdefault(src, []).append(dst)
        for oid in match.levels[level]:
            kept = children_of.get(oid, [])
            opf = pi.opf(oid)
            if opf is None:
                raise QueryError(f"non-leaf object {oid!r} has no OPF")
            dist: dict[int, float] = {}
            for child_set, p_children in opf.support():
                partial = {0: 1.0}
                for child in kept:
                    if child not in child_set:
                        continue
                    merged: dict[int, float] = {}
                    for left, lp in partial.items():
                        for right, rp in counts[child].items():
                            merged[left + right] = (
                                merged.get(left + right, 0.0) + lp * rp
                            )
                    partial = merged
                for total, probability in partial.items():
                    dist[total] = dist.get(total, 0.0) + p_children * probability
            counts[oid] = dist
    return counts.get(pi.root, {0: 1.0})


def value_point_query(
    pi: ProbabilisticInstance,
    path: PathExpression | str,
    oid: Oid,
    value: Value,
) -> float:
    """``P(o in p and val(o) = value)`` on a tree-structured instance."""
    if isinstance(path, str):
        path = PathExpression.parse(path)
    reach = point_query(pi, path, oid)
    if reach == 0.0:
        return 0.0
    vpf = pi.effective_vpf(oid)
    if vpf is None:
        raise QueryError(f"object {oid!r} carries no value distribution")
    return reach * vpf.prob(value)


def value_distribution_at(
    pi: ProbabilisticInstance, path: PathExpression | str, oid: Oid
) -> dict[Value, float]:
    """The (conditional) value distribution of ``o`` given it satisfies ``p``.

    Value choices are independent of structure given existence, so this
    is simply the VPF — exposed with the reach probability folded out for
    symmetry with :func:`value_point_query`.
    """
    vpf = pi.effective_vpf(oid)
    if vpf is None:
        raise QueryError(f"object {oid!r} carries no value distribution")
    if isinstance(path, str):
        path = PathExpression.parse(path)
    if point_query(pi, path, oid) == 0.0:
        raise QueryError(f"object {oid!r} never satisfies {path}")
    return dict(vpf.support())


def expected_chain_extensions(
    pi: ProbabilisticInstance, chain: list[Oid], label: Label
) -> float:
    """``E[#label-children of the chain's last object | chain exists]``
    times the chain probability — the expected number of ways the chain
    extends by one ``label`` edge."""
    probability = chain_probability(pi, chain)
    if probability == 0.0:
        return 0.0
    return probability * expected_child_count(pi, chain[-1], label)
