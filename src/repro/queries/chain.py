"""Simple object chain probability (Section 6.2, first formula).

The probability that the chain ``r.o1.o2...on`` exists is the nested sum

    P(c) = sum_{c1 in PC(r), o1 in c1} p(r)(c1)
           * sum_{c2 in PC(o1), o2 in c2} p(o1)(c2)
           * ...

which, object by object, is the product of the marginal inclusion
probabilities ``P(o_{i+1} in children(o_i) | o_i exists)``.  This is exact
when the weak instance graph is a tree (each ``o_i`` has a single parent
chain, so the inclusion events at different levels are independent).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.instance import ProbabilisticInstance
from repro.errors import QueryError
from repro.semistructured.graph import Oid


def chain_probability(pi: ProbabilisticInstance, chain: Sequence[Oid]) -> float:
    """``P(r.o1...on)`` for an explicit object chain starting at the root.

    Args:
        pi: the probabilistic instance (tree-structured for exactness).
        chain: the object ids, beginning with the instance root.

    Returns:
        The probability that each ``o_{i+1}`` is a child of ``o_i`` in a
        compatible world.  Zero when some link is not even potential.
    """
    if not chain:
        raise QueryError("a chain needs at least the root object")
    if chain[0] != pi.root:
        raise QueryError(
            f"chain must start at the root {pi.root!r}, got {chain[0]!r}"
        )
    probability = 1.0
    for parent, child in zip(chain, chain[1:]):
        if parent not in pi or child not in pi:
            return 0.0
        opf = pi.opf(parent)
        if opf is None:
            return 0.0
        probability *= opf.marginal_inclusion(child)
        if probability == 0.0:
            return 0.0
    return probability
