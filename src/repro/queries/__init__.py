"""Probabilistic queries (Section 6.2), aggregates, and the engine."""

from repro.queries.aggregates import (
    child_count_distribution,
    expected_chain_extensions,
    expected_child_count,
    expected_match_count,
    match_count_distribution,
    value_distribution_at,
    value_point_query,
)
from repro.queries.chain import chain_probability
from repro.queries.engine import QueryEngine
from repro.queries.point import existential_query, point_query

__all__ = [
    "QueryEngine",
    "chain_probability",
    "child_count_distribution",
    "existential_query",
    "expected_chain_extensions",
    "expected_child_count",
    "expected_match_count",
    "match_count_distribution",
    "point_query",
    "value_distribution_at",
    "value_point_query",
]
