"""A strategy-selecting facade over the three query engines.

The same question — "what is the probability that object ``o`` satisfies
path ``p``?" — can be answered three ways:

* ``"local"`` — the Section 6 algorithms (fast; tree-structured
  instances only);
* ``"bayes"`` — variable elimination on the induced Bayesian network
  (any acyclic instance);
* ``"enumerate"`` — brute-force marginalization over ``Domain(I)``
  (exponential; the reference the others are tested against);
* ``"sample"`` — Monte-Carlo forward sampling (unbiased estimates with
  standard errors; the only engine for huge DAG instances).

``"auto"`` picks ``local`` for trees and ``bayes`` otherwise.
"""

from __future__ import annotations

from repro.bayesnet.mapping import PXMLBayesianNetwork
from repro.core.instance import ProbabilisticInstance
from repro.errors import QueryError
from repro.obs.metrics import current_registry
from repro.obs.tracing import Span, current_tracer
from repro.queries.chain import chain_probability
from repro.queries.point import existential_query, point_query
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression

_STRATEGIES = ("auto", "local", "bayes", "enumerate", "sample")


class QueryEngine:
    """Answers probabilistic point/existential/chain queries.

    Every query runs inside a ``query.<kind>`` span on the ambient
    tracer (:func:`repro.obs.tracing.current_tracer`), so standalone use
    reports into the global tracer and engine-driven use nests under the
    executor's plan-node spans.  The span-backed measurement also feeds
    :attr:`stats`: the strategy actually used, the query kind, the wall
    time, and — under the ``sample`` strategy — the sample count and the
    estimate's standard error.  The plan executor and PXQL's
    ``EXPLAIN ANALYZE`` / ``PROFILE`` surface this per query node, and
    the ambient metrics registry counts queries per kind
    (``query.<kind>``) with a ``query.wall_s`` latency histogram.
    """

    def __init__(
        self,
        pi: ProbabilisticInstance,
        strategy: str = "auto",
        samples: int = 2000,
        seed: int | None = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r}; choose one of {_STRATEGIES}"
            )
        self.pi = pi
        if strategy == "auto":
            strategy = "local" if pi.weak.graph().is_tree(pi.root) else "bayes"
        self.strategy = strategy
        self.samples = samples
        self.seed = seed
        self.stats: dict[str, object] = {}
        self._bn: PXMLBayesianNetwork | None = None
        self._global: GlobalInterpretation | None = None

    def _record(self, query: str, span: Span, extra: dict | None = None) -> None:
        self.stats = {
            "query": query,
            "strategy": self.strategy,
            "wall_s": span.wall_s,
        }
        if extra:
            self.stats.update(extra)
            span.attributes.update(extra)
        registry = current_registry()
        registry.counter(f"query.{query}").inc()
        registry.histogram("query.wall_s").observe(span.wall_s)

    # ------------------------------------------------------------------
    def _bayes(self) -> PXMLBayesianNetwork:
        if self._bn is None:
            self._bn = PXMLBayesianNetwork(self.pi)
        return self._bn

    def _enumeration(self) -> GlobalInterpretation:
        if self._global is None:
            self._global = GlobalInterpretation.from_local(self.pi)
        return self._global

    @staticmethod
    def _as_path(path: PathExpression | str) -> PathExpression:
        return PathExpression.parse(path) if isinstance(path, str) else path

    # ------------------------------------------------------------------
    @staticmethod
    def _estimate_extra(estimate) -> dict:
        return {"samples": estimate.samples, "stderr": estimate.stderr}

    def point(self, path: PathExpression | str, oid: Oid) -> float:
        """``P(o in p)`` (Definition 6.1)."""
        path = self._as_path(path)
        extra: dict = {}
        with current_tracer().span(
            "query.point", strategy=self.strategy
        ) as span:
            if self.strategy == "local":
                value = point_query(self.pi, path, oid)
            elif self.strategy == "bayes":
                value = self._bayes().point_query(path, oid)
            elif self.strategy == "sample":
                from repro.semantics.sampling import estimate_point_query

                estimate = estimate_point_query(
                    self.pi, path, oid, self.samples, self.seed
                )
                value, extra = estimate.probability, self._estimate_extra(estimate)
            else:
                value = self._enumeration().prob_object_at_path(path, oid)
        self._record("point", span, extra)
        return value

    def exists(self, path: PathExpression | str) -> float:
        """``P(exists o: o in p)``."""
        path = self._as_path(path)
        extra: dict = {}
        with current_tracer().span(
            "query.exists", strategy=self.strategy
        ) as span:
            if self.strategy == "local":
                value = existential_query(self.pi, path)
            elif self.strategy == "bayes":
                value = self._bayes().existential_query(path)
            elif self.strategy == "sample":
                from repro.semantics.sampling import estimate_existential_query

                estimate = estimate_existential_query(
                    self.pi, path, self.samples, self.seed
                )
                value, extra = estimate.probability, self._estimate_extra(estimate)
            else:
                value = self._enumeration().prob_path_nonempty(path)
        self._record("exists", span, extra)
        return value

    def chain(self, chain: list[Oid]) -> float:
        """``P(r.o1...on)`` for an explicit object chain."""
        extra: dict = {}

        def has_chain(world) -> bool:
            for parent, child in zip(chain, chain[1:]):
                if parent not in world or child not in world.children(parent):
                    return False
            return True

        with current_tracer().span(
            "query.chain", strategy=self.strategy
        ) as span:
            if self.strategy == "local":
                value = chain_probability(self.pi, chain)
            elif self.strategy == "bayes":
                value = self._bayes().chain_probability(chain)
            elif self.strategy == "sample":
                from repro.semantics.sampling import estimate_probability

                estimate = estimate_probability(
                    self.pi, has_chain, self.samples, self.seed
                )
                value, extra = estimate.probability, self._estimate_extra(estimate)
            else:
                value = self._enumeration().event_probability(has_chain)
        self._record("chain", span, extra)
        return value

    def object_exists(self, oid: Oid) -> float:
        """``P(o occurs in a compatible world)`` — situation 4 of Section 2."""
        extra: dict = {}
        with current_tracer().span(
            "query.object_exists", strategy=self.strategy
        ) as span:
            if self.strategy in ("bayes", "local"):
                # The local algorithms have no direct form for bare existence
                # on DAGs; the BN marginal is cheap and exact either way.
                value = self._bayes().prob_exists(oid)
            elif self.strategy == "sample":
                from repro.semantics.sampling import estimate_probability

                estimate = estimate_probability(
                    self.pi, lambda world: oid in world, self.samples, self.seed
                )
                value, extra = estimate.probability, self._estimate_extra(estimate)
            else:
                value = self._enumeration().prob_object_exists(oid)
        self._record("object_exists", span, extra)
        return value
