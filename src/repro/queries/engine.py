"""A strategy-selecting facade over the three query engines.

The same question — "what is the probability that object ``o`` satisfies
path ``p``?" — can be answered three ways:

* ``"local"`` — the Section 6 algorithms (fast; tree-structured
  instances only);
* ``"bayes"`` — variable elimination on the induced Bayesian network
  (any acyclic instance);
* ``"enumerate"`` — brute-force marginalization over ``Domain(I)``
  (exponential; the reference the others are tested against);
* ``"sample"`` — Monte-Carlo forward sampling (unbiased estimates with
  standard errors; the only engine for huge DAG instances).

``"auto"`` picks ``local`` for trees and ``bayes`` otherwise.
"""

from __future__ import annotations

from repro.bayesnet.mapping import PXMLBayesianNetwork
from repro.core.instance import ProbabilisticInstance
from repro.errors import QueryError
from repro.queries.chain import chain_probability
from repro.queries.point import existential_query, point_query
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.graph import Oid
from repro.semistructured.paths import PathExpression

_STRATEGIES = ("auto", "local", "bayes", "enumerate", "sample")


class QueryEngine:
    """Answers probabilistic point/existential/chain queries."""

    def __init__(
        self,
        pi: ProbabilisticInstance,
        strategy: str = "auto",
        samples: int = 2000,
        seed: int | None = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r}; choose one of {_STRATEGIES}"
            )
        self.pi = pi
        if strategy == "auto":
            strategy = "local" if pi.weak.graph().is_tree(pi.root) else "bayes"
        self.strategy = strategy
        self.samples = samples
        self.seed = seed
        self._bn: PXMLBayesianNetwork | None = None
        self._global: GlobalInterpretation | None = None

    # ------------------------------------------------------------------
    def _bayes(self) -> PXMLBayesianNetwork:
        if self._bn is None:
            self._bn = PXMLBayesianNetwork(self.pi)
        return self._bn

    def _enumeration(self) -> GlobalInterpretation:
        if self._global is None:
            self._global = GlobalInterpretation.from_local(self.pi)
        return self._global

    @staticmethod
    def _as_path(path: PathExpression | str) -> PathExpression:
        return PathExpression.parse(path) if isinstance(path, str) else path

    # ------------------------------------------------------------------
    def point(self, path: PathExpression | str, oid: Oid) -> float:
        """``P(o in p)`` (Definition 6.1)."""
        path = self._as_path(path)
        if self.strategy == "local":
            return point_query(self.pi, path, oid)
        if self.strategy == "bayes":
            return self._bayes().point_query(path, oid)
        if self.strategy == "sample":
            from repro.semantics.sampling import estimate_point_query

            return estimate_point_query(
                self.pi, path, oid, self.samples, self.seed
            ).probability
        return self._enumeration().prob_object_at_path(path, oid)

    def exists(self, path: PathExpression | str) -> float:
        """``P(exists o: o in p)``."""
        path = self._as_path(path)
        if self.strategy == "local":
            return existential_query(self.pi, path)
        if self.strategy == "bayes":
            return self._bayes().existential_query(path)
        if self.strategy == "sample":
            from repro.semantics.sampling import estimate_existential_query

            return estimate_existential_query(
                self.pi, path, self.samples, self.seed
            ).probability
        return self._enumeration().prob_path_nonempty(path)

    def chain(self, chain: list[Oid]) -> float:
        """``P(r.o1...on)`` for an explicit object chain."""
        if self.strategy == "local":
            return chain_probability(self.pi, chain)
        if self.strategy == "bayes":
            return self._bayes().chain_probability(chain)

        def has_chain(world) -> bool:
            for parent, child in zip(chain, chain[1:]):
                if parent not in world or child not in world.children(parent):
                    return False
            return True

        if self.strategy == "sample":
            from repro.semantics.sampling import estimate_probability

            return estimate_probability(
                self.pi, has_chain, self.samples, self.seed
            ).probability
        return self._enumeration().event_probability(has_chain)

    def object_exists(self, oid: Oid) -> float:
        """``P(o occurs in a compatible world)`` — situation 4 of Section 2."""
        if self.strategy in ("bayes", "local"):
            # The local algorithms have no direct form for bare existence
            # on DAGs; the BN marginal is cheap and exact either way.
            return self._bayes().prob_exists(oid)
        if self.strategy == "sample":
            from repro.semantics.sampling import estimate_probability

            return estimate_probability(
                self.pi, lambda world: oid in world, self.samples, self.seed
            ).probability
        return self._enumeration().prob_object_exists(oid)
