"""Tests for MAP-world computation, SD diffs, and the tools CLI."""

import random

import pytest

from repro.algebra.projection import ancestor_projection
from repro.core.builder import InstanceBuilder
from repro.errors import SemanticsError
from repro.io.json_codec import write_instance
from repro.paper import figure1_instance, figure2_instance
from repro.semantics.compatible import is_compatible, world_probability
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semantics.map_world import map_world, top_k_worlds
from repro.semistructured.diff import diff_instances
from repro.tools import main as tools_main

from tests.helpers import random_tree_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("r")
    builder.children("r", "l", ["a", "b"])
    builder.opf("r", {("a",): 0.5, ("b",): 0.1, ("a", "b"): 0.4})
    builder.children("a", "m", ["c"], card=(0, 1))
    builder.opf("a", {("c",): 0.9, (): 0.1})
    builder.leaf("c", "t", ["x", "y"], {"x": 0.6, "y": 0.4})
    builder.leaf("b", "t", vpf={"x": 1.0})
    return builder.build()


class TestMapWorld:
    def test_tree_map_is_global_argmax(self, tree):
        world, probability = map_world(tree)
        interpretation = GlobalInterpretation.from_local(tree)
        best = max(p for _, p in interpretation.support())
        assert probability == pytest.approx(best)
        assert interpretation.prob(world) == pytest.approx(best)

    def test_map_world_is_compatible(self, tree):
        world, probability = map_world(tree)
        assert is_compatible(world, tree.weak)
        assert world_probability(tree, world) == pytest.approx(probability)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_trees(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        world, probability = map_world(pi)
        best = max(p for _, p in GlobalInterpretation.from_local(pi).support())
        assert probability == pytest.approx(best)

    def test_dag_falls_back_to_enumeration(self):
        pi = figure2_instance()
        world, probability = map_world(pi)
        best = max(p for _, p in GlobalInterpretation.from_local(pi).support())
        assert probability == pytest.approx(best)

    def test_dag_enumeration_guard(self):
        pi = figure2_instance()
        with pytest.raises(SemanticsError):
            map_world(pi, max_enumeration=3)

    def test_top_k(self, tree):
        ranked = top_k_worlds(tree, 3)
        assert len(ranked) == 3
        probabilities = [p for _, p in ranked]
        assert probabilities == sorted(probabilities, reverse=True)
        world, probability = map_world(tree)
        assert ranked[0][1] == pytest.approx(probability)

    def test_top_k_positive(self, tree):
        with pytest.raises(SemanticsError):
            top_k_worlds(tree, 0)


class TestDiff:
    def test_identical(self):
        a = figure1_instance()
        diff = diff_instances(a, a.copy())
        assert diff.is_empty()
        assert diff.summary() == "identical"

    def test_projection_diff(self):
        original = figure1_instance()
        projected = ancestor_projection(original, "R.book.author")
        diff = diff_instances(original, projected)
        assert "T1" in diff.removed_objects
        assert "I1" in diff.removed_objects
        assert ("B1", "T1", "title") in diff.removed_edges
        assert not diff.added_objects

    def test_value_change_detected(self):
        a = figure1_instance()
        b = a.copy()
        b.set_value("T1", "Lore")
        diff = diff_instances(a, b)
        assert ("T1", "VQDB", "Lore") in diff.changed_values
        assert "values" in diff.summary()

    def test_relabel_detected(self):
        a = figure1_instance()
        b = a.copy()
        b.graph.add_edge("R", "B1", "tome")  # overwrite the label
        diff = diff_instances(a, b)
        assert ("R", "B1", "book", "tome") in diff.relabeled_edges

    def test_format_lists_changes(self):
        a = figure1_instance()
        b = ancestor_projection(a, "R.book")
        text = diff_instances(a, b).format()
        assert "- object" in text


class TestToolsCLI:
    @pytest.fixture
    def instance_file(self, tmp_path):
        path = tmp_path / "fig2.json"
        write_instance(figure2_instance(), path)
        return str(path)

    def test_lint_clean(self, instance_file, capsys):
        assert tools_main(["lint", instance_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_show(self, instance_file, capsys):
        assert tools_main(["show", instance_file]) == 0
        assert "PC(R)" in capsys.readouterr().out

    def test_dot(self, instance_file, capsys):
        assert tools_main(["dot", instance_file]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_summary(self, instance_file, capsys):
        assert tools_main(["summary", instance_file]) == 0
        assert "objects=11" in capsys.readouterr().out

    def test_worlds(self, instance_file, capsys):
        assert tools_main(["worlds", instance_file, "--limit", "3"]) == 0
        assert "more worlds" in capsys.readouterr().out

    def test_map(self, instance_file, capsys):
        assert tools_main(["map", instance_file]) == 0
        assert "P = " in capsys.readouterr().out

    def test_lint_error_exit(self, tmp_path, capsys):
        import json

        from repro.io.json_codec import encode_instance

        payload = encode_instance(figure2_instance())
        # Corrupt one OPF so its mass is wrong.
        payload["objects"]["R"]["opf"]["entries"][0][1] = 0.0001
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload), encoding="utf-8")
        assert tools_main(["lint", str(bad)]) == 1
        assert "bad-total" in capsys.readouterr().out
