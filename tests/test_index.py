"""repro.index: encoding, columnar matcher parity, caches, engine lowering.

The load-bearing contract is *parity*: every vectorized structure must
produce results identical to the walked evaluators it replaces.  The
randomized suites below hold that on 52 generated tree instances plus
DAG-shaped ones, and exercise the cache invalidation keys, the
dataguide-based pruning and the engine's runtime fallback.
"""

import random

import pytest

from repro.check.dataguide import DataGuideCache
from repro.core.builder import InstanceBuilder
from repro.core.distributions import TabularOPF
from repro.engine import (
    Engine,
    IndexedPathStepNode,
    IndexedScanNode,
    PlanBuilder,
    QueryNode,
    ScanNode,
)
from repro.index import (
    HAS_NUMPY,
    ColumnarInstance,
    IndexCache,
    IntervalEncoding,
    PathIndex,
    cache_token,
    marginalize_opf,
    marginalize_python,
    match_path_indexed,
)
from repro.index.columnar import _MATCH_MEMO_CAP, _match_python
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.pxql import Interpreter
from repro.semistructured.paths import PathExpression, match_path
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)
from tests.helpers import random_dag_instance

TOL = 1e-9

#: 52 generated tree instances (13 seeds x 2 labelings x 2 depths) — the
#: randomized parity population the issue's acceptance asks for.
SPECS = [
    WorkloadSpec(depth=depth, branching=2, labeling=labeling, seed=seed)
    for labeling in ("SL", "FR")
    for depth in (2, 3)
    for seed in range(13)
]
assert len(SPECS) >= 50


def _spec_id(spec):
    return f"{spec.labeling}-d{spec.depth}-s{spec.seed}"


def build_bib():
    """The paper's Figure 1 bibliography (same shape as the PXQL tests)."""
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"], card=(1, 2))
    b.opf("R", {("B1",): 0.4, ("B2",): 0.2, ("B1", "B2"): 0.4})
    b.children("B1", "author", ["A1"], card=(1, 1))
    b.opf("B1", {("A1",): 1.0})
    b.children("B2", "author", ["A2"], card=(0, 1))
    b.opf("B2", {("A2",): 0.5, (): 0.5})
    b.leaf("A1", "name", ["hung", "getoor"], {"hung": 0.9, "getoor": 0.1})
    b.leaf("A2", "name", None, {"hung": 0.5, "getoor": 0.5})
    return b.build()


def _assert_same_match(actual, expected):
    assert actual.path == expected.path
    assert actual.levels == expected.levels
    assert actual.edges == expected.edges
    assert actual.level_edges == expected.level_edges


# ----------------------------------------------------------------------
# Interval encoding
# ----------------------------------------------------------------------
class TestIntervalEncoding:
    def test_tree_invariants(self):
        workload = generate_workload(SPECS[1])
        graph = workload.instance.weak.graph()
        root = workload.instance.root
        encoding = IntervalEncoding.from_graph(graph, root)
        assert encoding is not None
        assert len(encoding) == len(workload.instance)
        # pre is a permutation; the root spans the whole preorder range.
        assert sorted(encoding.pre) == list(range(len(encoding)))
        assert encoding.interval(root) == (0, len(encoding))
        assert encoding.depth(root) == 0
        for src, dst, _label in graph.edges():
            assert encoding.depth(dst) == encoding.depth(src) + 1
            assert encoding.is_ancestor(src, dst)
            assert not encoding.is_ancestor(dst, src)
            assert encoding.is_ancestor_or_self(src, dst)

    def test_ancestorship_matches_graph_reachability(self):
        pi = build_bib()
        graph = pi.weak.graph()
        encoding = IntervalEncoding.from_graph(graph, "R")
        assert encoding is not None
        # Transitive ancestorship across two edges, plus reflexivity.
        assert encoding.is_ancestor("R", "A1")
        assert encoding.is_ancestor("B2", "A2")
        assert not encoding.is_ancestor("B1", "A2")
        assert not encoding.is_ancestor("A1", "A1")
        assert encoding.is_ancestor_or_self("A1", "A1")

    def test_dag_yields_none(self):
        pi = random_dag_instance(random.Random(0))
        assert IntervalEncoding.from_graph(pi.weak.graph(), pi.root) is None


# ----------------------------------------------------------------------
# Columnar snapshots
# ----------------------------------------------------------------------
class TestColumnarInstance:
    def test_tree_roundtrip(self):
        workload = generate_workload(SPECS[2])
        pi = workload.instance
        graph = pi.weak.graph()
        col = ColumnarInstance.from_instance(pi)
        assert col.is_tree
        assert col.root == pi.root
        assert len(col) == len(pi)
        assert set(col.oids) == set(graph.vertices)
        assert col.num_edges == sum(1 for _ in graph.edges())
        parent_map = col.parent_map()
        assert pi.root not in parent_map
        for src, dst, _label in graph.edges():
            assert parent_map[dst] == src

    def test_chain_of_follows_parent_pointers(self):
        col = ColumnarInstance.from_instance(build_bib())
        assert col.chain_of("A2") == ["R", "B2", "A2"]
        assert col.chain_of("R") == ["R"]

    def test_dag_snapshot(self):
        pi = random_dag_instance(random.Random(1))
        col = ColumnarInstance.from_instance(pi)
        assert not col.is_tree
        assert col.encoding is None
        assert len(col) == len(pi)


# ----------------------------------------------------------------------
# Randomized match parity: indexed == walked on 52 tree instances
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SPECS, ids=_spec_id)
def test_match_parity(spec):
    workload = generate_workload(spec)
    graph = workload.instance.weak.graph()
    col = ColumnarInstance.from_instance(workload.instance)
    rng = random.Random(spec.seed + 500)

    paths = [random_projection_path(workload, rng) for _ in range(3)]
    paths.append(paths[0].child("no_such_label"))      # dead end mid-walk
    paths.append(PathExpression(workload.instance.root))  # zero labels

    for path in paths:
        expected = match_path(graph, path)
        _assert_same_match(match_path_indexed(col, path, memo=False), expected)
        _assert_same_match(
            _match_python(col, path, col.index_of[path.root]), expected
        )


@pytest.mark.parametrize("seed", range(6))
def test_match_parity_dag(seed):
    """DAG snapshots take the generic edge-sweep path; parity must hold."""
    pi = random_dag_instance(random.Random(seed))
    graph = pi.weak.graph()
    col = ColumnarInstance.from_instance(pi)
    assert not col.is_tree
    for text in ("r.a", "r.a.b", "r.a.b.nope", "r"):
        path = PathExpression.parse(text)
        expected = match_path(graph, path)
        _assert_same_match(match_path_indexed(col, path, memo=False), expected)
        _assert_same_match(
            _match_python(col, path, col.index_of[path.root]), expected
        )


def test_match_absent_root_is_empty():
    col = ColumnarInstance.from_instance(build_bib())
    match = match_path_indexed(col, PathExpression.parse("nowhere.book"))
    assert match.matched == frozenset()


# ----------------------------------------------------------------------
# Per-snapshot match memo
# ----------------------------------------------------------------------
class TestMatchMemo:
    def test_memo_hit_returns_same_object(self):
        col = ColumnarInstance.from_instance(build_bib())
        path = PathExpression.parse("R.book.author")
        first = match_path_indexed(col, path)
        assert match_path_indexed(col, path) is first

    def test_memo_false_bypasses(self):
        col = ColumnarInstance.from_instance(build_bib())
        path = PathExpression.parse("R.book")
        memoized = match_path_indexed(col, path)
        fresh = match_path_indexed(col, path, memo=False)
        assert fresh is not memoized
        _assert_same_match(fresh, memoized)

    def test_memo_is_bounded(self):
        col = ColumnarInstance.from_instance(build_bib())
        for index in range(_MATCH_MEMO_CAP + 10):
            match_path_indexed(col, PathExpression("R", (f"l{index}",)))
        assert len(col._match_memo) <= _MATCH_MEMO_CAP


# ----------------------------------------------------------------------
# Vectorized OPF marginalization
# ----------------------------------------------------------------------
def _random_opf(rng, children):
    subsets = {
        frozenset(rng.sample(children, rng.randint(0, len(children) - 1)))
        for _ in range(8)
    }
    weights = {subset: rng.uniform(0.05, 1.0) for subset in subsets}
    total = sum(weights.values())
    return TabularOPF({s: w / total for s, w in weights.items()})


@pytest.mark.parametrize("seed", range(12))
def test_marginalize_parity(seed):
    rng = random.Random(seed)
    children = [f"c{i}" for i in range(6)]
    opf = _random_opf(rng, children)
    kept = sorted(rng.sample(children, 4))
    epsilon = {
        c: 1.0 if rng.random() < 0.3 else rng.uniform(0.05, 0.95)
        for c in children
    }
    fast = marginalize_opf(opf, kept, epsilon)
    reference = marginalize_python(opf, kept, epsilon)
    assert set(fast) == set(reference)
    for key, value in reference.items():
        assert fast[key] == pytest.approx(value, abs=1e-12)


def test_marginalize_all_certain_short_circuits():
    """With every kept child certain there is nothing to enumerate."""
    rng = random.Random(99)
    children = [f"c{i}" for i in range(4)]
    opf = _random_opf(rng, children)
    kept = children[:3]
    epsilon = {c: 1.0 for c in children}
    assert marginalize_opf(opf, kept, epsilon) == pytest.approx(
        marginalize_python(opf, kept, epsilon)
    )


# ----------------------------------------------------------------------
# Cache keys: (version, generation)
# ----------------------------------------------------------------------
class _GenerationCatalog:
    """A fake catalog whose generation counter the test can bump."""

    def __init__(self, instance):
        self._instance = instance
        self.bumps = 0

    def get(self, name):
        return self._instance

    def version(self, name):
        return 7

    def generation(self):
        return self.bumps


class TestCacheTokens:
    def test_cache_token_tracks_generation(self):
        catalog = _GenerationCatalog(build_bib())
        assert cache_token(catalog, "bib") == (7, 0)
        catalog.bumps += 1
        assert cache_token(catalog, "bib") == (7, 1)

    def test_cache_token_without_generation_defaults_to_zero(self):
        class _Plain:
            def version(self, name):
                return 3

        assert cache_token(_Plain(), "x") == (3, 0)

    def test_dataguide_cache_invalidated_by_generation(self):
        """Regression: a same-version catalog mutated by another process
        (generation bump) must not serve a stale dataguide."""
        catalog = _GenerationCatalog(build_bib())
        guides = DataGuideCache()
        first = guides.get(catalog, "bib")
        assert guides.get(catalog, "bib") is first
        catalog.bumps += 1
        assert guides.get(catalog, "bib") is not first

    def test_index_cache_invalidated_by_generation(self):
        catalog = _GenerationCatalog(build_bib())
        cache = IndexCache()
        first = cache.get(catalog, "bib")
        assert cache.get(catalog, "bib") is first
        catalog.bumps += 1
        assert cache.get(catalog, "bib") is not first


class TestIndexCache:
    def test_counters_and_rebuild_on_version_bump(self):
        registry = MetricsRegistry()
        database = Database()
        database.register("bib", build_bib())
        cache = IndexCache()
        with use_registry(registry):
            first = cache.get(database, "bib")
            assert cache.get(database, "bib") is first
            database.register("bib", build_bib(), replace=True)
            rebuilt = cache.get(database, "bib")
        assert rebuilt is not first
        assert registry.counter("index.builds").value == 2
        assert registry.counter("index.hits").value == 1
        assert registry.counter("index.misses").value == 2

    def test_invalidate(self):
        database = Database()
        database.register("bib", build_bib())
        cache = IndexCache()
        first = cache.get(database, "bib")
        cache.invalidate("bib")
        assert len(cache) == 0
        assert cache.get(database, "bib") is not first


# ----------------------------------------------------------------------
# PathIndex: dataguide-backed pruning
# ----------------------------------------------------------------------
class TestPathIndex:
    def test_tri_state_answers(self):
        database = Database()
        database.register("bib", build_bib())
        index = PathIndex()
        book = PathExpression.parse("R.book")
        assert index.can_match(database, "bib", book) is True
        assert (
            index.can_match(database, "bib", PathExpression.parse("R.movie"))
            is False
        )
        # Rooted at a non-root object: the guide cannot prove anything.
        assert (
            index.can_match(database, "bib", PathExpression.parse("B1.author"))
            is None
        )

    def test_posting_list(self):
        database = Database()
        database.register("bib", build_bib())
        index = PathIndex()
        assert index.posting_list(
            database, "bib", PathExpression.parse("R.book")
        ) == frozenset({"B1", "B2"})
        assert index.posting_list(
            database, "bib", PathExpression.parse("R.movie")
        ) == frozenset()

    def test_broken_catalog_is_unknown(self):
        class _Broken:
            def get(self, name):
                raise RuntimeError("boom")

            def version(self, name):
                return 1

        index = PathIndex()
        assert (
            index.can_match(_Broken(), "bib", PathExpression.parse("R.book"))
            is None
        )


# ----------------------------------------------------------------------
# Engine parity: use_index on vs off, all lowered query kinds
# ----------------------------------------------------------------------
def _query_plans(path, oid):
    return {
        "exists": PlanBuilder.scan("base").exists(path).build(),
        "count": PlanBuilder.scan("base").count(path).build(),
        "point": PlanBuilder.scan("base").point(path, oid).build(),
        "dist": QueryNode("dist", ScanNode("base"), path=path),
    }


@pytest.mark.parametrize("spec", SPECS, ids=_spec_id)
def test_engine_index_parity(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 900)
    path = random_projection_path(workload, rng)
    graph = workload.instance.weak.graph()
    oid = rng.choice(sorted(match_path(graph, path).matched))

    values = {}
    for use_index in (False, True):
        database = Database()
        database.register("base", workload.instance.copy())
        engine = Engine(database, caching=False, use_index=use_index)
        cell = {}
        for kind, plan in _query_plans(path, oid).items():
            execution = engine.execute_plan(plan)
            cell[kind] = execution.value
            if use_index:
                assert "lower_query_to_index" in execution.applied_rules, kind
        values[use_index] = cell

    walked, indexed = values[False], values[True]
    for kind in ("exists", "count", "point"):
        assert indexed[kind] == pytest.approx(walked[kind], abs=TOL), kind
    assert set(indexed["dist"]) == set(walked["dist"])
    for count, probability in walked["dist"].items():
        assert indexed["dist"][count] == pytest.approx(probability, abs=TOL)


@pytest.mark.parametrize("spec", SPECS[::4], ids=_spec_id)
def test_engine_indexed_projection_parity(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 901)
    path = random_projection_path(workload, rng)
    graph = workload.instance.weak.graph()
    oid = rng.choice(sorted(match_path(graph, path).matched))

    produced = {}
    for use_index in (False, True):
        database = Database()
        database.register("base", workload.instance.copy())
        engine = Engine(database, caching=False, use_index=use_index)
        execution = engine.execute_plan(
            PlanBuilder.scan("base").project(path).build()
        )
        if use_index:
            assert "lower_projection_to_index" in execution.applied_rules
        produced[use_index] = execution.value

    assert produced[True].objects == produced[False].objects
    from repro.queries.engine import QueryEngine

    assert QueryEngine(produced[True], strategy="local").point(
        path, oid
    ) == pytest.approx(
        QueryEngine(produced[False], strategy="local").point(path, oid),
        abs=TOL,
    )


def test_engine_dag_stays_walked():
    """On a DAG the lowering guard never fires; results still agree."""
    pi = random_dag_instance(random.Random(3))
    path = PathExpression.parse("r.a.b")
    values = {}
    for use_index in (False, True):
        database = Database()
        database.register("base", pi.copy())
        engine = Engine(database, caching=False, use_index=use_index)
        for kind in ("exists", "count"):
            plan = _query_plans(path, None)[kind]
            execution = engine.execute_plan(plan)
            assert "lower_query_to_index" not in execution.applied_rules
            values[(use_index, kind)] = execution.value
    for kind in ("exists", "count"):
        assert values[(True, kind)] == pytest.approx(
            values[(False, kind)], abs=TOL
        )


def test_engine_runtime_fallback_on_stale_lowering():
    """A lowered plan over a DAG (stale plan-time estimate) must detect
    the shape at runtime, fall back to the walked operator, and count it."""
    pi = random_dag_instance(random.Random(4))
    path = PathExpression.parse("r.a.b")
    registry = MetricsRegistry()
    database = Database()
    database.register("dag", pi)
    engine = Engine(
        database, optimizer=False, caching=False, metrics=registry
    )
    lowered = IndexedPathStepNode("exists", path, IndexedScanNode("dag"))
    walked = Engine(Database(), caching=False, use_index=False)
    walked.database.register("dag", pi.copy())
    expected = walked.execute_plan(
        PlanBuilder.scan("dag").exists(path).build()
    ).value
    assert engine.execute_plan(lowered).value == pytest.approx(
        expected, abs=TOL
    )
    assert registry.counter("index.fallbacks").value == 1


def test_engine_skips_provably_unmatchable_paths():
    """The dataguide proves R.movie can never match: the engine must
    short-circuit without building a match, and count the skip."""
    registry = MetricsRegistry()
    database = Database()
    database.register("bib", build_bib())
    engine = Engine(database, caching=False, metrics=registry)

    absent = PathExpression.parse("R.movie")
    exists = engine.execute_plan(
        PlanBuilder.scan("bib").exists(absent).build()
    )
    assert exists.value == 0.0
    count = engine.execute_plan(PlanBuilder.scan("bib").count(absent).build())
    assert count.value == 0.0
    dist = engine.execute_plan(QueryNode("dist", ScanNode("bib"), path=absent))
    assert dist.value == {0: 1.0}
    assert registry.counter("index.skipped_instances").value == 3
    assert any(
        stats.extra.get("index") == "skipped" for stats in exists.stats.walk()
    )

    # Parity: the walked engine agrees the probability is zero.
    plain = Engine(database, caching=False, use_index=False)
    assert plain.execute_plan(
        PlanBuilder.scan("bib").exists(absent).build()
    ).value == 0.0


def test_explain_shows_index_lowering():
    """EXPLAIN surfaces the lowered operators on a corpus query."""
    interpreter = Interpreter(Database())
    interpreter.database.register("bib", build_bib())
    result = interpreter.execute("EXPLAIN EXISTS R.book.author IN bib")
    assert "IndexedScan(bib)" in result.text
    assert "lower_query_to_index" in result.text

    analyzed = interpreter.execute(
        "EXPLAIN ANALYZE EXISTS R.book.author IN bib"
    )
    assert "IndexedScan(bib)" in analyzed.text


def test_numpy_flag_is_consistent():
    """HAS_NUMPY reflects whether the import actually succeeded."""
    from repro.index import np_compat

    assert HAS_NUMPY == (np_compat.numpy is not None)
    if HAS_NUMPY:
        col = ColumnarInstance.from_instance(build_bib())
        assert col._pre_np is not None
