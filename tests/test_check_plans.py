"""Unit tests for the plan pass (repro.check.plans) and the dataguide."""

import pytest

from repro.check.dataguide import DataGuideCache, build_dataguide
from repro.check.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    DiagnosticReport,
    Span,
    sort_diagnostics,
)
from repro.check.plans import check_plan
from repro.check.rewrites import justify_rewrites
from repro.core.builder import InstanceBuilder
from repro.engine.cost import CostModel
from repro.engine.plan import PlanBuilder, ProductNode, ScanNode
from repro.engine.rewrite import optimize
from repro.semistructured.paths import PathExpression
from repro.storage.database import Database


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"], card=(1, 2))
    b.opf("R", {("B1",): 0.4, ("B2",): 0.2, ("B1", "B2"): 0.4})
    b.children("B1", "author", ["A1"], card=(1, 1))
    b.opf("B1", {("A1",): 1.0})
    b.children("B2", "author", ["A2"], card=(0, 1))
    b.opf("B2", {("A2",): 0.5, (): 0.5})
    b.leaf("A1", "name", ["hung", "getoor"], {"hung": 0.9, "getoor": 0.1})
    b.leaf("A2", "name", None, {"hung": 0.5, "getoor": 0.5})
    return b.build()


@pytest.fixture
def database():
    db = Database()
    db.register("bib", build_bib())
    return db


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestDataGuide:
    def test_paths_and_targets(self, database):
        guide = build_dataguide(database.get("bib"))
        labels = {entry.labels for entry in guide.paths()}
        assert labels == {(), ("book",), ("book", "author")}
        assert guide.targets(("book",)) == frozenset({"B1", "B2"})
        assert guide.targets(("book", "author")) == frozenset({"A1", "A2"})

    def test_tree_intervals_are_exact(self, database):
        guide = build_dataguide(database.get("bib"))
        entry = guide.entry(("book", "author"))
        assert entry.exact
        # A1 exists iff B1 chosen (0.8) and A1 then always chosen.
        assert entry.lower == pytest.approx(0.8)
        # union bound: P(A1) + P(A2) = 0.8 + 0.6*0.5
        assert entry.upper == pytest.approx(min(1.0, 0.8 + 0.3))

    def test_zero_probability_targets_pruned(self):
        b = InstanceBuilder("R")
        b.children("R", "x", ["a", "b"])
        b.opf("R", {("a",): 1.0, ("a", "b"): 0.0})
        b.leaf("a", "t", ["v"], {"v": 1.0})
        b.leaf("b", "t", None, {"v": 1.0})
        guide = build_dataguide(b.build())
        assert guide.targets(("x",)) == frozenset({"a"})

    def test_probe_suggests_continuations(self, database):
        guide = build_dataguide(database.get("bib"))
        length, continuations = guide.probe(("book", "movie"))
        assert length == 1
        assert "author" in continuations

    def test_cache_keys_on_version(self, database):
        cache = DataGuideCache()
        first = cache.get(database, "bib")
        assert cache.get(database, "bib") is first
        database.register("bib", build_bib(), replace=True)
        assert cache.get(database, "bib") is not first


class TestDiagnosticsFramework:
    def test_sort_severity_first(self):
        warning = Diagnostic(code="PX210", severity=WARNING, message="w")
        error = Diagnostic(code="PX220", severity=ERROR, message="e")
        info = Diagnostic(code="PX251", severity=INFO, message="i")
        assert codes(sort_diagnostics([info, warning, error])) == \
            ["PX220", "PX210", "PX251"]

    def test_report_gates(self):
        report = DiagnosticReport([
            Diagnostic(code="PX210", severity=WARNING, message="w"),
        ])
        assert not report.fails("error")
        assert report.fails("warning")
        assert not report.fails("never")

    def test_span_rendering(self):
        diagnostic = Diagnostic(code="PX310", severity=ERROR, message="bad",
                                span=Span(3, 7))
        assert "@3..7" in str(diagnostic)
        assert diagnostic.as_dict()["span"] == [3, 7]


class TestPlanChecker:
    def test_clean_plan_has_no_findings(self, database):
        plan = PlanBuilder.scan("bib").project("R.book.author").build()
        assert check_plan(plan, database) == []

    def test_unknown_scan(self, database):
        plan = PlanBuilder.scan("ghost").project("R.book").build()
        assert codes(check_plan(plan, database)) == ["PX201"]

    def test_never_match_projection_is_warning(self, database):
        plan = PlanBuilder.scan("bib").project("R.movie").build()
        [diagnostic] = check_plan(plan, database)
        assert diagnostic.code == "PX210"
        assert diagnostic.severity == WARNING
        assert "book" in (diagnostic.hint or "")

    def test_never_match_selection_is_error(self, database):
        plan = PlanBuilder.scan("bib").select("R.movie", "M1").build()
        assert ("PX220", ERROR) in [
            (d.code, d.severity) for d in check_plan(plan, database)
        ]

    def test_selection_of_pruned_target_is_error(self):
        db = Database()
        b = InstanceBuilder("R")
        b.children("R", "x", ["a", "b"])
        b.opf("R", {("a",): 1.0, ("a", "b"): 0.0})
        b.leaf("a", "t", ["v"], {"v": 1.0})
        b.leaf("b", "t", None, {"v": 1.0})
        db.register("zeroed", b.build())
        plan = PlanBuilder.scan("zeroed").select("R.x", "b").build()
        assert "PX220" in codes(check_plan(plan, db))

    def test_value_outside_domain(self, database):
        plan = PlanBuilder.scan("bib").select(
            "R.book.author", "A1", value="nobody"
        ).build()
        assert "PX222" in codes(check_plan(plan, database))

    def test_value_on_non_leaf(self, database):
        plan = PlanBuilder.scan("bib").select("R.book", "B1", value="x").build()
        assert "PX222" in codes(check_plan(plan, database))

    def test_card_contradiction(self, database):
        plan = PlanBuilder.scan("bib").select(
            "R.book", "B1", card_label="author", card_bounds=(5, 9)
        ).build()
        assert "PX223" in codes(check_plan(plan, database))

    def test_card_tautology(self, database):
        plan = PlanBuilder.scan("bib").select(
            "R.book", "B2", card_label="author", card_bounds=(0, 9)
        ).build()
        [diagnostic] = check_plan(plan, database)
        assert diagnostic.code == "PX224"
        assert diagnostic.severity == WARNING

    def test_prob_guard_unsatisfiable(self, database):
        plan = PlanBuilder.scan("bib").select(
            "R.book", "B1", prob_op=">", prob_bound=1.0
        ).build()
        [diagnostic] = check_plan(plan, database)
        assert (diagnostic.code, diagnostic.severity) == ("PX225", ERROR)

    def test_prob_guard_trivial(self, database):
        plan = PlanBuilder.scan("bib").select(
            "R.book", "B1", prob_op=">=", prob_bound=0.0
        ).build()
        [diagnostic] = check_plan(plan, database)
        assert (diagnostic.code, diagnostic.severity) == ("PX226", WARNING)

    def test_product_overlapping_ids(self, database):
        db = Database()
        db.register("a", build_bib())
        db.register("b", build_bib())
        plan = ProductNode(ScanNode("a"), ScanNode("b"), "root")
        assert "PX230" in codes(check_plan(plan, db))

    def test_query_never_match(self, database):
        plan = PlanBuilder.scan("bib").exists("R.movie").build()
        assert "PX240" in codes(check_plan(plan, database))

    def test_point_target_not_on_path(self, database):
        plan = PlanBuilder.scan("bib").point("R.book", "A1").build()
        assert "PX241" in codes(check_plan(plan, database))

    def test_chain_not_from_root(self, database):
        plan = PlanBuilder.scan("bib").chain(("B1", "A1")).build()
        assert ("PX242", ERROR) in [
            (d.code, d.severity) for d in check_plan(plan, database)
        ]

    def test_chain_non_potential_link(self, database):
        plan = PlanBuilder.scan("bib").chain(("R", "A1")).build()
        assert "PX243" in codes(check_plan(plan, database))

    def test_prob_unknown_object(self, database):
        plan = PlanBuilder.scan("bib").prob("GHOST").build()
        assert "PX244" in codes(check_plan(plan, database))


class TestRewriteJustifications:
    def test_all_default_rules_justified(self, database):
        path = PathExpression.parse("R.book.author")
        plan = (PlanBuilder.scan("bib").project(path).project(path)
                .select(path, "A1").build())
        trace = []
        optimize(plan, CostModel(database), trace=trace)
        justifications = justify_rewrites(trace)
        assert justifications
        assert all(j.holds for j in justifications)

    def test_check_plan_reports_justifications(self, database):
        path = PathExpression.parse("R.book.author")
        plan = (PlanBuilder.scan("bib").project(path)
                .select(path, "A1").build())
        diagnostics = check_plan(plan, database, rewrites=True)
        assert "PX251" in codes(diagnostics)
        assert "PX250" not in codes(diagnostics)

    def test_unsound_pair_is_flagged(self):
        fake = PlanBuilder.scan("x").project("R.a").build()
        [justification] = justify_rewrites([
            ("collapse_adjacent_projections", fake, fake),
        ])
        assert not justification.holds
