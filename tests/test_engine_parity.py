"""Randomized parity: the engine path must equal the naive eager path.

Every rewrite rule and the full optimizer are checked against the
original one-call-per-statement interpreter on generated instances
(Section 7.1 workloads); probabilities must agree within 1e-9.  The
suite runs on 52 generated instances (13 seeds x 2 labelings x 2 OPF
representations) plus hand-built disjoint-OID instances for the product
cases (generated instances share the ``o0, o1, ...`` namespace, so they
cannot legally be multiplied together).
"""

import random

import pytest

from repro.core.builder import InstanceBuilder
from repro.engine import (
    Engine,
    PlanBuilder,
    ProductNode,
    ScanNode,
    collapse_adjacent_projections,
    push_selection_below_projection,
)
from repro.pxql import Interpreter
from repro.queries.engine import QueryEngine
from repro.semistructured.paths import match_path
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
    random_selection_target,
)

TOL = 1e-9

SPECS = [
    WorkloadSpec(depth=2, branching=2, labeling=labeling, seed=seed,
                 opf_kind=opf_kind)
    for labeling in ("SL", "FR")
    for opf_kind in ("tabular", "independent")
    for seed in range(13)
]
assert len(SPECS) >= 50

SMALL_SPECS = SPECS[::5]


def _spec_id(spec):
    return f"{spec.labeling}-{spec.opf_kind}-s{spec.seed}"


def _path_oid(workload, path, rng):
    graph = workload.instance.weak.graph()
    return rng.choice(sorted(match_path(graph, path).matched))


def _point(pi, path, oid):
    return QueryEngine(pi, strategy="local").point(path, oid)


# ----------------------------------------------------------------------
# Full-path parity: engine interpreter vs the naive eager interpreter
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SPECS, ids=_spec_id)
def test_statement_parity(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 1000)
    path = random_projection_path(workload, rng)
    path_oid = _path_oid(workload, path, rng)
    sel_path, sel_oid = random_selection_target(workload, rng)
    graph = workload.instance.weak.graph()
    child = sorted(graph.children(workload.instance.root))[0]

    naive = Interpreter(Database(), strategy="naive")
    engine = Interpreter(Database(), strategy="engine")
    for interp in (naive, engine):
        interp.database.register("base", workload.instance.copy())
    # Runtime soundness: every engine execution is checked against its
    # absint certificate; the violation counter must stay at zero.
    engine.engine.absint_verify = True

    statements = [
        f"PROJECT {path} FROM base AS p",
        f"SELECT {sel_path} = {sel_oid} FROM base AS s",
        # The pipeline: selecting on the projection's own path is
        # exactly the pattern the pushdown rule rewrites (via lineage).
        f"SELECT {path} = {path_oid} FROM p AS ps",
    ]
    for text in statements:
        produced_naive = naive.execute(text).value
        produced_engine = engine.execute(text).value
        assert produced_naive.objects == produced_engine.objects, text

    probes = [
        f"POINT {path} : {path_oid} IN base",
        f"POINT {path} : {path_oid} IN p",
        f"POINT {path} : {path_oid} IN ps",
        f"EXISTS {path} IN base",
        f"EXISTS {sel_path} IN s",
        f"PROB {sel_oid} IN s",
        f"CHAIN {workload.instance.root}.{child} IN base",
        f"COUNT {path} IN base",
    ]
    for text in probes:
        expected = naive.execute(text).value
        actual = engine.execute(text).value
        assert actual == pytest.approx(expected, abs=TOL), text

    assert engine.metrics.counter("check.absint_violations").value == 0


@pytest.mark.parametrize("spec", SMALL_SPECS, ids=_spec_id)
def test_optimizer_on_off_parity(spec):
    """The optimized plan equals the plan as written, node for node."""
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 2000)
    path = random_projection_path(workload, rng)
    oid = _path_oid(workload, path, rng)

    database = Database()
    database.register("base", workload.instance)
    raw = Engine(database, optimizer=False, caching=False)
    optimized = Engine(database, optimizer=True, caching=False)

    pipeline = (
        PlanBuilder.scan("base").project(path).project(path)
        .select(path, oid).build()
    )
    a = raw.execute_plan(pipeline)
    b = optimized.execute_plan(pipeline)
    assert b.applied_rules  # the rewrite actually fired
    assert a.value.objects == b.value.objects
    assert b.condition_probability == pytest.approx(
        a.condition_probability, abs=TOL
    )
    assert _point(b.value, path, oid) == pytest.approx(
        _point(a.value, path, oid), abs=TOL
    )

    query = PlanBuilder.scan("base").project(path).point(path, oid).build()
    assert optimized.execute_plan(query).value == pytest.approx(
        raw.execute_plan(query).value, abs=TOL
    )


# ----------------------------------------------------------------------
# Rule-level parity: each rewrite in isolation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SMALL_SPECS, ids=_spec_id)
def test_collapse_rule_parity(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 3000)
    path = random_projection_path(workload, rng)
    oid = _path_oid(workload, path, rng)

    database = Database()
    database.register("base", workload.instance)
    engine = Engine(database, optimizer=False, caching=False)

    raw = PlanBuilder.scan("base").project(path).project(path).build()
    rewritten = collapse_adjacent_projections(raw, None)
    assert rewritten is not None
    a = engine.execute_plan(raw).value
    b = engine.execute_plan(rewritten).value
    assert a.objects == b.objects
    assert _point(a, path, oid) == pytest.approx(_point(b, path, oid), abs=TOL)


@pytest.mark.parametrize("spec", SMALL_SPECS, ids=_spec_id)
def test_pushdown_rule_parity(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 4000)
    path = random_projection_path(workload, rng)
    oid = _path_oid(workload, path, rng)

    database = Database()
    database.register("base", workload.instance)
    engine = Engine(database, optimizer=False, caching=False)

    raw = PlanBuilder.scan("base").project(path).select(path, oid).build()
    rewritten = push_selection_below_projection(raw, None)
    assert rewritten is not None
    a = engine.execute_plan(raw)
    b = engine.execute_plan(rewritten)
    assert a.value.objects == b.value.objects
    assert b.condition_probability == pytest.approx(
        a.condition_probability, abs=TOL
    )
    assert _point(a.value, path, oid) == pytest.approx(
        _point(b.value, path, oid), abs=TOL
    )


def _disjoint_pair():
    """Two small instances with disjoint OID namespaces (product-legal)."""
    left = InstanceBuilder("L")
    left.children("L", "x", ["a1", "a2"])
    left.opf("L", {("a1",): 0.3, ("a2",): 0.25, ("a1", "a2"): 0.3, (): 0.15})
    left.leaf("a1", "t", ["u", "v"], {"u": 0.7, "v": 0.3})
    left.leaf("a2", "t", ["u", "v"], {"u": 0.4, "v": 0.6})
    right = InstanceBuilder("M")
    right.children("M", "y", ["b1"])
    right.opf("M", {("b1",): 0.8, (): 0.2})
    right.leaf("b1", "t", ["u", "v"], {"u": 0.5, "v": 0.5})
    return left.build(), right.build()


class TestProductParity:
    def test_reorder_rule_parity(self):
        database = Database()
        left, right = _disjoint_pair()
        database.register("l", left)    # 3 objects
        database.register("r", right)   # 2 objects
        engine = Engine(database, optimizer=False, caching=False)

        raw = ProductNode(ScanNode("l"), ScanNode("r"), "root")
        from repro.engine import reorder_product_by_size

        rewritten = reorder_product_by_size(raw, engine.cost)
        assert rewritten is not None
        a = engine.execute_plan(raw).value
        b = engine.execute_plan(rewritten).value
        assert a.objects == b.objects
        assert a.root == b.root == "root"
        for oid in ("a1", "a2", "b1"):
            pa = QueryEngine(a, strategy="bayes").object_exists(oid)
            pb = QueryEngine(b, strategy="bayes").object_exists(oid)
            assert pa == pytest.approx(pb, abs=TOL)

    def test_product_statement_parity(self):
        left, right = _disjoint_pair()
        naive = Interpreter(Database(), strategy="naive")
        engine = Interpreter(Database(), strategy="engine")
        for interp in (naive, engine):
            interp.database.register("l", left.copy())
            interp.database.register("r", right.copy())

        statement = "PRODUCT l, r ROOT lr AS prod"
        produced_naive = naive.execute(statement).value
        produced_engine = engine.execute(statement).value
        assert produced_naive.objects == produced_engine.objects
        for probe in ("PROB a1 IN prod", "PROB b1 IN prod",
                      "EXISTS lr.x IN prod", "COUNT lr.y IN prod"):
            expected = naive.execute(probe).value
            actual = engine.execute(probe).value
            assert actual == pytest.approx(expected, abs=TOL), probe

    def test_optimizer_reorders_product_statement_soundly(self):
        left, right = _disjoint_pair()
        database = Database()
        database.register("l", left)
        database.register("r", right)
        raw = Engine(database, optimizer=False, caching=False)
        optimized = Engine(database, optimizer=True, caching=False)

        plan = ProductNode(ScanNode("l"), ScanNode("r"))  # bigger first
        a = raw.execute_plan(plan)
        b = optimized.execute_plan(plan)
        assert "reorder_product_by_size" in b.applied_rules
        assert a.value.root == b.value.root  # default root id is pinned
        assert a.value.objects == b.value.objects
        pa = QueryEngine(a.value, strategy="bayes").object_exists("a1")
        pb = QueryEngine(b.value, strategy="bayes").object_exists("a1")
        assert pa == pytest.approx(pb, abs=TOL)
