"""Unit tests for probabilistic instances, the builder, and validation."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.weak_instance import WeakInstance
from repro.errors import IncoherentModelError, ModelError
from repro.semistructured.types import LeafType


@pytest.fixture
def small():
    builder = InstanceBuilder("R")
    builder.children("R", "kid", ["A", "B"], card=(0, 2))
    builder.opf("R", {(): 0.1, ("A",): 0.3, ("B",): 0.2, ("A", "B"): 0.4})
    builder.leaf("A", "t", ["x", "y"], {"x": 0.5, "y": 0.5})
    builder.leaf("B", "t", vpf={"x": 1.0})
    return builder.build()


class TestProbabilisticInstance:
    def test_delegation(self, small):
        assert small.root == "R"
        assert len(small) == 3
        assert small.lch("R", "kid") == frozenset({"A", "B"})
        assert small.is_leaf("A")
        assert not small.is_leaf("R")

    def test_opf_vpf_access(self, small):
        assert small.opf("R").prob(frozenset({"A"})) == 0.3
        assert small.opf("A") is None
        assert small.vpf("A").prob("x") == 0.5
        assert small.vpf("R") is None

    def test_set_opf_on_leaf_rejected(self, small):
        with pytest.raises(ModelError):
            small.set_opf("A", TabularOPF({(): 1.0}))

    def test_set_vpf_on_non_leaf_rejected(self, small):
        with pytest.raises(ModelError):
            small.set_vpf("R", TabularVPF({"x": 1.0}))

    def test_effective_vpf_falls_back_to_default_value(self):
        weak = WeakInstance("R")
        weak.set_lch("R", "l", ["A"])
        weak.set_type("A", LeafType("t", ["x", "y"]))
        weak.set_val("A", "y")
        pi = ProbabilisticInstance(weak)
        pi.set_opf("R", TabularOPF({("A",): 1.0}))
        vpf = pi.effective_vpf("A")
        assert vpf.prob("y") == 1.0

    def test_effective_vpf_none_for_bare_leaf(self):
        weak = WeakInstance("R")
        weak.set_lch("R", "l", ["A"])
        pi = ProbabilisticInstance(weak)
        assert pi.effective_vpf("A") is None

    def test_copy_isolates_interpretation(self, small):
        clone = small.copy()
        clone.interpretation.drop("R")
        assert small.opf("R") is not None

    def test_total_entries(self, small):
        # 4 OPF entries + 2 VPF entries + 1 VPF entry.
        assert small.total_interpretation_entries() == 7

    def test_valued_leaves(self, small):
        assert set(small.valued_leaves()) == {"A", "B"}


class TestValidation:
    def test_valid_instance_passes(self, small):
        small.validate()

    def test_missing_opf_rejected(self):
        weak = WeakInstance("R")
        weak.set_lch("R", "l", ["A"])
        with pytest.raises(IncoherentModelError):
            ProbabilisticInstance(weak).validate()

    def test_opf_outside_pc_rejected(self):
        weak = WeakInstance("R")
        weak.set_lch("R", "l", ["A"])
        pi = ProbabilisticInstance(weak)
        # "ghost" is not a potential child of R under any label.
        pi.set_opf("R", TabularOPF({("A", "ghost"): 1.0}))
        with pytest.raises(IncoherentModelError):
            pi.validate()

    def test_opf_violating_card_rejected(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A", "B"], card=(2, 2))
        builder.opf("R", {("A",): 1.0})  # size 1 violates card [2, 2]
        builder.leaf("A", "t", ["x"], {"x": 1.0})
        builder.leaf("B", "t", vpf={"x": 1.0})
        with pytest.raises(IncoherentModelError):
            builder.build()

    def test_opf_not_summing_rejected(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A"])
        builder.opf("R", {("A",): 0.5})
        builder.leaf("A", "t", ["x"], {"x": 1.0})
        with pytest.raises(IncoherentModelError):
            builder.build()

    def test_vpf_outside_domain_rejected(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A"])
        builder.opf("R", {("A",): 1.0})
        builder.leaf("A", "t", ["x"], {"x": 1.0})
        pi = builder.build()
        pi.interpretation.drop("A")
        pi.interpretation.set_vpf("A", TabularVPF({"not-in-domain": 1.0}))
        with pytest.raises(IncoherentModelError):
            pi.validate()

    def test_structural_leaf_without_vpf_allowed(self):
        weak = WeakInstance("R")
        weak.set_lch("R", "l", ["A"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("R", TabularOPF({("A",): 1.0}))
        pi.validate()  # A has neither type nor VPF: fine (projection output)


class TestBuilder:
    def test_value_shorthand_makes_point_mass(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A"])
        builder.opf("R", {("A",): 1.0})
        builder.value("A", "t", "v1", domain=["v1", "v2"])
        pi = builder.build()
        assert pi.vpf("A").prob("v1") == 1.0

    def test_leaf_reuses_registered_type(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A", "B"])
        builder.opf("R", {("A", "B"): 1.0})
        builder.leaf("A", "t", ["x", "y"], {"x": 1.0})
        builder.leaf("B", "t", vpf={"y": 1.0})  # no domain: reuse
        pi = builder.build()
        assert pi.tau("A") == pi.tau("B")

    def test_leaf_without_vpf_gets_uniform(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A"])
        builder.opf("R", {("A",): 1.0})
        builder.leaf("A", "t", ["x", "y"])
        pi = builder.build()
        assert pi.vpf("A").prob("x") == pytest.approx(0.5)

    def test_uniform_opfs_fill_gaps(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A"], card=(0, 1))
        builder.leaf("A", "t", ["x"], {"x": 1.0})
        pi = builder.uniform_opfs().build()
        assert pi.opf("R").prob(frozenset()) == pytest.approx(0.5)

    def test_build_without_validation(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["A"])
        # No OPF: invalid, but build(validate=False) must not raise.
        pi = builder.build(validate=False)
        assert pi.opf("R") is None
