"""Property tests for write-ahead journal replay.

Two families of properties, both about the same contract: whatever
happens to the journal or the operation sequence, reopening the
catalog must land on a consistent state.

* **Arbitrary op interleavings** — any sequence of save / re-save /
  drop operations over a small name pool, applied through the real
  :class:`~repro.storage.database.Database`, leaves a directory that a
  fresh open replays to zero pending records, checksum-clean loads for
  every surviving name, and a clean fsck.
* **Journal damage** — truncating the journal at an arbitrary byte
  offset or corrupting an arbitrary byte must never break the parser's
  prefix rule: :meth:`Journal.read` returns a prefix of the undamaged
  record sequence, and recovery still converges to a clean catalog.
"""

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paper import example52_instance, figure2_instance
from repro.storage.database import Database, DatabaseError
from repro.storage.fsck import fsck_directory
from repro.storage.journal import Journal

NAMES = ("a", "b", "c")

#: One step of an op interleaving: (op, name index).
_OPS = st.tuples(
    st.sampled_from(("save", "resave", "drop")),
    st.integers(min_value=0, max_value=len(NAMES) - 1),
)


def _apply_ops(directory: Path, ops: list[tuple[str, int]]) -> None:
    """Drive one op sequence through a real database."""
    db = Database(directory, on_corrupt="quarantine")
    for op, index in ops:
        name = NAMES[index]
        if op == "save":
            instance = figure2_instance() if index % 2 else example52_instance()
            db.register(name, instance, replace=True)
            db.save(name)
        elif op == "resave":
            if name in db.names():
                db.touch(name)
                db.save(name)
        elif op == "drop":
            if name in db.names():
                db.drop(name)


def _assert_consistent(directory: Path) -> None:
    """The reopen contract: replay drains, loads are clean, fsck is."""
    db = Database(directory, on_corrupt="quarantine")
    assert db.journal is not None
    records, torn = db.journal.read()
    assert not torn
    assert db.journal.pending(records) == []
    for name in db.names():
        db.get(name)  # raises on checksum damage
    assert db.generation() >= db.journal.committed_generation(records)
    report = fsck_directory(directory)
    assert report.clean, [f.as_dict() for f in report.findings]


@settings(deadline=None, max_examples=20)
@given(ops=st.lists(_OPS, min_size=1, max_size=12))
def test_any_op_interleaving_reopens_consistent(tmp_path_factory, ops):
    directory = tmp_path_factory.mktemp("journal-ops")
    _apply_ops(directory, ops)
    _assert_consistent(directory)


@settings(deadline=None, max_examples=20)
@given(
    ops=st.lists(_OPS, min_size=1, max_size=8),
    cut=st.floats(min_value=0.0, max_value=1.0),
)
def test_truncated_journal_tail_is_a_prefix(tmp_path_factory, ops, cut):
    directory = tmp_path_factory.mktemp("journal-trunc")
    _apply_ops(directory, ops)
    journal = Journal(directory)
    original, torn = journal.read()
    assert not torn
    if not journal.path.exists():
        return  # the sequence journaled nothing: nothing to damage

    raw = journal.path.read_bytes()
    keep = int(len(raw) * cut)
    journal.path.write_bytes(raw[:keep])

    damaged, _ = journal.read()
    # Prefix consistency: a truncated journal yields some prefix of
    # the undamaged record sequence, never reordered or invented data.
    assert damaged == original[: len(damaged)]
    _assert_consistent(directory)


@settings(deadline=None, max_examples=20)
@given(
    ops=st.lists(_OPS, min_size=1, max_size=8),
    position=st.floats(min_value=0.0, max_value=1.0),
    flip=st.integers(min_value=1, max_value=255),
)
def test_corrupted_journal_byte_keeps_the_prefix(
    tmp_path_factory, ops, position, flip
):
    directory = tmp_path_factory.mktemp("journal-corrupt")
    _apply_ops(directory, ops)
    journal = Journal(directory)
    original, torn = journal.read()
    assert not torn
    if not journal.path.exists():
        return  # the sequence journaled nothing: nothing to damage

    raw = bytearray(journal.path.read_bytes())
    if not raw:
        return
    index = min(int(len(raw) * position), len(raw) - 1)
    raw[index] ^= flip
    journal.path.write_bytes(bytes(raw))

    damaged, _ = journal.read()
    assert damaged == original[: len(damaged)]
    # Corrupting a *data* byte inside one record must never leak into
    # neighbours: everything before the damaged line survives verbatim.
    _assert_consistent(directory)


def test_reopen_after_interleaving_preserves_saved_content(tmp_path):
    """A deterministic end-to-end anchor for the properties above."""
    db = Database(tmp_path)
    db.register("a", figure2_instance())
    db.save("a")
    db.register("b", example52_instance())
    db.save("b")
    db.drop("b")
    db.touch("a")
    db.save("a")

    reopened = Database(tmp_path)
    assert reopened.names() == ["a"]
    assert len(reopened.get("a")) == len(figure2_instance())
    try:
        reopened.get("b")
    except DatabaseError:
        pass
    else:
        raise AssertionError("dropped instance came back")
