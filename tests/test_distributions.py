"""Unit tests for tabular OPFs and VPFs."""

import pytest

from repro.core.distributions import TabularOPF, TabularVPF
from repro.errors import DistributionError


class TestTabularOPF:
    def test_prob_lookup(self):
        opf = TabularOPF({frozenset({"a"}): 0.4, frozenset(): 0.6})
        assert opf.prob(frozenset({"a"})) == 0.4
        assert opf.prob(frozenset({"b"})) == 0.0

    def test_iterable_keys_normalized(self):
        opf = TabularOPF({("a", "b"): 1.0})
        assert opf.prob(frozenset({"a", "b"})) == 1.0

    def test_duplicate_keys_rejected(self):
        with pytest.raises(DistributionError):
            TabularOPF({("a", "b"): 0.5, ("b", "a"): 0.5})

    def test_zero_entries_dropped(self):
        opf = TabularOPF({("a",): 1.0, ("b",): 0.0})
        assert opf.entry_count() == 1

    def test_validate_sums_to_one(self):
        TabularOPF({("a",): 0.5, (): 0.5}).validate()

    def test_validate_rejects_bad_total(self):
        with pytest.raises(DistributionError):
            TabularOPF({("a",): 0.5}).validate()

    def test_validate_rejects_negative(self):
        with pytest.raises(DistributionError):
            TabularOPF({("a",): -0.5, (): 1.5}).validate()

    def test_validate_rejects_outside_support(self):
        opf = TabularOPF({("a",): 1.0})
        with pytest.raises(DistributionError):
            opf.validate(potential=[frozenset({"b"})])

    def test_marginal_inclusion(self):
        opf = TabularOPF({("a",): 0.3, ("a", "b"): 0.2, ("b",): 0.5})
        assert opf.marginal_inclusion("a") == pytest.approx(0.5)
        assert opf.marginal_inclusion("b") == pytest.approx(0.7)
        assert opf.marginal_inclusion("ghost") == 0.0

    def test_restrict_conditions_and_normalizes(self):
        opf = TabularOPF({("a",): 0.3, ("a", "b"): 0.2, ("b",): 0.5})
        conditioned, mass = opf.restrict(lambda c: "a" in c)
        assert mass == pytest.approx(0.5)
        assert conditioned.prob(frozenset({"a"})) == pytest.approx(0.6)
        assert conditioned.prob(frozenset({"b"})) == 0.0

    def test_restrict_on_null_event_raises(self):
        opf = TabularOPF({("a",): 1.0})
        with pytest.raises(DistributionError):
            opf.restrict(lambda c: "ghost" in c)

    def test_point_mass(self):
        opf = TabularOPF.point_mass(["a", "b"])
        assert opf.prob(frozenset({"a", "b"})) == 1.0
        opf.validate()

    def test_uniform(self):
        opf = TabularOPF.uniform([frozenset(), frozenset({"a"})])
        assert opf.prob(frozenset()) == pytest.approx(0.5)
        opf.validate()

    def test_uniform_empty_rejected(self):
        with pytest.raises(DistributionError):
            TabularOPF.uniform([])

    def test_equality_with_tolerance(self):
        a = TabularOPF({("a",): 0.5, (): 0.5})
        b = TabularOPF({("a",): 0.5 + 1e-12, (): 0.5 - 1e-12})
        assert a == b

    def test_items_sorted_deterministic(self):
        opf = TabularOPF({("b",): 0.2, ("a",): 0.3, ("a", "b"): 0.5})
        keys = [sorted(c) for c, _ in opf.items_sorted()]
        assert keys == [["a"], ["b"], ["a", "b"]]

    def test_to_tabular_identity(self):
        opf = TabularOPF({("a",): 1.0})
        assert opf.to_tabular() == opf


class TestTabularVPF:
    def test_prob_lookup(self):
        vpf = TabularVPF({"x": 0.7, "y": 0.3})
        assert vpf.prob("x") == 0.7
        assert vpf.prob("z") == 0.0

    def test_validate_against_domain(self):
        vpf = TabularVPF({"x": 1.0})
        vpf.validate(domain=["x", "y"])
        with pytest.raises(DistributionError):
            vpf.validate(domain=["y"])

    def test_restrict(self):
        vpf = TabularVPF({"x": 0.25, "y": 0.75})
        conditioned, mass = vpf.restrict(lambda v: v == "y")
        assert mass == pytest.approx(0.75)
        assert conditioned.prob("y") == pytest.approx(1.0)

    def test_point_mass(self):
        vpf = TabularVPF.point_mass("x")
        assert vpf.prob("x") == 1.0
        assert vpf.entry_count() == 1

    def test_uniform(self):
        vpf = TabularVPF.uniform(["a", "b", "c", "d"])
        assert vpf.prob("a") == pytest.approx(0.25)
        vpf.validate()

    def test_uniform_empty_rejected(self):
        with pytest.raises(DistributionError):
            TabularVPF.uniform([])

    def test_equality(self):
        assert TabularVPF({"x": 1.0}) == TabularVPF({"x": 1.0, "y": 0.0})
        assert TabularVPF({"x": 1.0}) != TabularVPF({"y": 1.0})
