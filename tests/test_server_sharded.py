"""Sharded multi-process serving: routing, scatter-gather, failover.

These tests drive a real :class:`ShardedServer` — spawn-context worker
processes over shard-local catalog directories — through the router's
whole contract: consistent-hash routing with a placement overlay for
derived results, broadcast ``LIST``, cross-shard ``PRODUCT`` by
scatter-gather, typed error transport (native reconstruction for known
types, :class:`RemoteExecutionError` for the rest), and the failover
story (``kill_shard`` → :class:`ShardUnavailable`, ``restart_shard`` →
recovery over the surviving on-disk catalog).
"""

from __future__ import annotations

import pytest

from repro.algebra import rename_objects
from repro.core.builder import InstanceBuilder
from repro.errors import (
    PXMLError,
    RemoteExecutionError,
    ServerError,
    ShardUnavailable,
)
from repro.io.json_codec import dumps, loads
from repro.pxql.interpreter import Interpreter
from repro.server import ShardedServer
from repro.storage.database import Database

STABLE_QUERY = "EXISTS R.book.author IN bib"


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"])
    b.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    b.children("B1", "author", ["A1"])
    b.opf("B1", {("A1",): 0.5, (): 0.5})
    b.children("B2", "author", ["A3"])
    b.opf("B2", {("A3",): 0.6, (): 0.4})
    b.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    b.leaf("A3", "name", vpf={"y": 1.0})
    return b.build()


def renamed_copy(instance, prefix: str):
    """A structurally identical instance with globally fresh object ids
    (products require disjoint ids across operands)."""
    return rename_objects(
        instance, {oid: f"{prefix}_{oid}" for oid in instance.objects}
    )


def pick_name(server: ShardedServer, shard: int, stem: str) -> str:
    """A fresh name the ring routes to ``shard`` (probed, deterministic)."""
    for index in range(200):
        candidate = f"{stem}{index}"
        if server.owner(candidate) == shard:
            return candidate
    raise AssertionError(f"no candidate name routed to shard {shard}")


@pytest.fixture(scope="module")
def reference():
    database = Database()
    database.register("bib", build_bib())
    return Interpreter(database=database).execute(STABLE_QUERY).value


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    server = ShardedServer(
        tmp_path_factory.mktemp("shards"),
        shards=2,
        workers_per_shard=1,
        queue_size=16,
        poll_s=0.005,
    )
    server.start()
    bib = build_bib()
    server.register_instance("bib", dumps(bib))
    other_shard = 1 - server.owner("bib")
    mirror = pick_name(server, other_shard, "mirror")
    server.register_instance(mirror, dumps(renamed_copy(bib, "m")))
    server.mirror_name = mirror  # stashed for the tests
    yield server
    server.stop(drain=False, timeout_s=15.0)


class TestRouting:
    def test_owner_is_deterministic_and_uses_every_shard(self, sharded):
        names = [f"name{i}" for i in range(64)]
        owners = [sharded.owner(name) for name in names]
        assert owners == [sharded.owner(name) for name in names]
        assert set(owners) == {0, 1}, "64 names should hit both shards"

    def test_query_routes_to_owning_shard(self, sharded, reference):
        result = sharded.execute(STABLE_QUERY, timeout_s=60.0)
        assert result.value == pytest.approx(reference)

    def test_list_is_a_broadcast_merge(self, sharded):
        result = sharded.execute("LIST", timeout_s=60.0)
        assert isinstance(result.value, list)
        assert "bib" in result.value
        assert sharded.mirror_name in result.value

    def test_derived_result_lands_in_the_overlay(self, sharded):
        # The AS target executes on bib's shard regardless of where the
        # target name hashes; the overlay must route follow-ups there.
        off_home = pick_name(sharded, 1 - sharded.owner("bib"), "derived")
        result = sharded.execute(
            f"PROJECT R.book FROM bib AS {off_home}", timeout_s=60.0
        )
        assert result.instance_name == off_home
        assert sharded.owner(off_home) == sharded.owner("bib")
        shown = sharded.execute(f"SHOW {off_home}", timeout_s=60.0)
        assert shown.text
        dropped = sharded.execute(f"DROP {off_home}", timeout_s=60.0)
        assert dropped.text == f"dropped {off_home}"

    def test_parse_errors_travel_through_the_future(self, sharded):
        with pytest.raises(PXMLError):
            sharded.execute("FROB the knob", timeout_s=10.0)


class TestScatterGather:
    def test_cross_shard_product(self, sharded):
        mirror = sharded.mirror_name
        assert sharded.owner("bib") != sharded.owner(mirror)
        result = sharded.execute(
            f"PRODUCT bib, {mirror} ROOT xr AS combined", timeout_s=60.0
        )
        assert result.instance_name == "combined"
        assert "product of bib" in result.text
        # The product is a real catalog citizen on its home shard.
        payload = sharded.fetch_instance("combined")
        assert len(loads(payload)) > 0
        shown = sharded.execute("SHOW combined", timeout_s=60.0)
        assert shown.text
        assert sharded.metrics.value("router.scatter_products") >= 1

    def test_same_shard_product_stays_on_one_shard(self, sharded):
        home = sharded.owner("bib")
        sibling = pick_name(sharded, home, "sibling")
        sharded.register_instance(
            sibling, dumps(renamed_copy(build_bib(), "s"))
        )
        before = sharded.metrics.value("router.scatter_products")
        result = sharded.execute(
            f"PRODUCT bib, {sibling} ROOT sr AS local_prod", timeout_s=60.0
        )
        assert result.instance_name == "local_prod"
        assert sharded.metrics.value("router.scatter_products") == before

    def test_wrapped_cross_shard_product_is_a_typed_error(self, sharded):
        mirror = sharded.mirror_name
        with pytest.raises(ServerError, match="cross-shard PRODUCT"):
            sharded.execute(
                f"EXPLAIN PRODUCT bib, {mirror} ROOT er AS nope",
                timeout_s=10.0,
            )


class TestErrorTransport:
    def test_unknown_instance_is_a_typed_remote_error(self, sharded):
        with pytest.raises(PXMLError) as excinfo:
            sharded.execute("EXISTS R.x IN does_not_exist", timeout_s=30.0)
        # The static checker fires first on the shard; its CheckError is
        # not reconstructible, so it must arrive as the typed wrapper.
        if isinstance(excinfo.value, RemoteExecutionError):
            assert excinfo.value.remote_type
        # Either way: a PXMLError, never a pickling crash or a hang.

    def test_health_reports_every_shard(self, sharded):
        health = sharded.health()
        assert health["shards"] == 2
        assert len(health["shard_health"]) == 2
        for entry in health["shard_health"]:
            assert "shard" in entry

    def test_metrics_snapshot_mirrors_shard_counters(self, sharded):
        snapshot = sharded.metrics_snapshot()
        shard_keys = [key for key in snapshot if key.startswith("shard")]
        assert any(".server." in key for key in shard_keys)


class TestFailover:
    def test_kill_restart_cycle(self, tmp_path, reference):
        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1, poll_s=0.005
        )
        server.start()
        try:
            server.register_instance("bib", dumps(build_bib()), save=True)
            home = server.owner("bib")
            assert server.execute(
                STABLE_QUERY, timeout_s=60.0
            ).value == pytest.approx(reference)

            server.kill_shard(home)
            assert not server.alive()
            with pytest.raises(ShardUnavailable) as excinfo:
                server.execute(STABLE_QUERY, timeout_s=10.0)
            assert excinfo.value.shard == home

            # The replacement serves the same on-disk catalog.
            server.restart_shard(home)
            assert server.alive()
            assert server.execute(
                STABLE_QUERY, timeout_s=60.0
            ).value == pytest.approx(reference)
            assert server.metrics.value("router.shard_restarts") == 1
        finally:
            server.stop(drain=False, timeout_s=15.0)

    def test_start_adopts_a_pre_sharding_root_catalog(self, tmp_path,
                                                      reference):
        # A directory previously served single-process: instances sit at
        # the root, not in shard-i/ subdirectories.
        legacy = Database(tmp_path)
        legacy.register("bib", build_bib())
        legacy.save("bib")

        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1, poll_s=0.005
        )
        server.start()
        try:
            listed = server.execute("LIST", timeout_s=60.0)
            assert "bib" in listed.value
            assert server.execute(
                STABLE_QUERY, timeout_s=60.0
            ).value == pytest.approx(reference)
            assert server.metrics.value("router.adopted_instances") == 1
        finally:
            server.stop(drain=False, timeout_s=15.0)

        # A second start over the same directory adopts nothing new:
        # the shard-local copy now owns the name.
        again = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1, poll_s=0.005
        )
        again.start()
        try:
            assert again.metrics.value("router.adopted_instances") == 0
        finally:
            again.stop(drain=False, timeout_s=15.0)

    def test_drain_then_stop_is_clean(self, tmp_path):
        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1, poll_s=0.005
        )
        server.start()
        server.register_instance("bib", dumps(build_bib()))
        assert server.drain(timeout_s=30.0)
        assert server.stop(drain=True, timeout_s=30.0)
        with pytest.raises(ShardUnavailable):
            server.submit(STABLE_QUERY)


class TestShardManifest:
    """``shards.json``: written on first init, enforced on reopen."""

    def test_manifest_written_on_first_start(self, tmp_path):
        import json

        server = ShardedServer(tmp_path, shards=2, workers_per_shard=1)
        with server:
            manifest = json.loads(
                (tmp_path / "shards.json").read_text(encoding="utf-8")
            )
        assert manifest["shards"] == 2
        assert manifest["vnodes"] == 64

    def test_mismatched_count_is_refused(self, tmp_path):
        from repro.errors import ShardConfigError

        with ShardedServer(tmp_path, shards=2, workers_per_shard=1):
            pass
        mismatched = ShardedServer(tmp_path, shards=3, workers_per_shard=1)
        with pytest.raises(ShardConfigError) as excinfo:
            mismatched.start()
        assert excinfo.value.configured == 3
        assert excinfo.value.recorded == 2
        # Both counts must be readable from the message itself.
        assert "2" in str(excinfo.value) and "3" in str(excinfo.value)

    def test_matching_count_reopens(self, tmp_path, reference):
        payload = dumps(build_bib())
        with ShardedServer(tmp_path, shards=2, workers_per_shard=1) as first:
            first.register_instance("bib", payload)
        reopened = ShardedServer(tmp_path, shards=2, workers_per_shard=1)
        with reopened:
            result = reopened.execute(STABLE_QUERY, timeout_s=30.0)
        assert result.value == pytest.approx(reference)

    def test_unreadable_manifest_is_refused(self, tmp_path):
        from repro.errors import ShardConfigError

        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "shards.json").write_text("{not json", encoding="utf-8")
        server = ShardedServer(tmp_path, shards=2, workers_per_shard=1)
        with pytest.raises(ShardConfigError):
            server.start()
