"""Tests for repro.obs: tracing, metrics, exporters, slow log, PROFILE, CLI."""

import json

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import PXMLError
from repro.io.json_codec import write_instance
from repro.obs import (
    MetricError,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    append_bench_records,
    current_registry,
    current_tracer,
    global_registry,
    global_tracer,
    metrics_record,
    metrics_to_json,
    render_metrics,
    render_span_tree,
    spans_to_jsonl,
    use_registry,
    use_tracer,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.pxql import Interpreter
from repro.storage.database import Database


def small_instance(root="R", leaf="A", p=0.6):
    b = InstanceBuilder(root)
    b.children(root, "x", [leaf])
    b.opf(root, {(leaf,): p, (): 1 - p})
    b.leaf(leaf, "t", ["v"], {"v": 1.0})
    return b.build()


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("grand"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grand"
        assert tracer.last is root

    def test_parent_ids_and_unique_span_ids(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_timings_fill_on_exit(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            assert span.wall_s == 0.0
            sum(range(1000))
        assert span.wall_s > 0.0
        assert span.cpu_s >= 0.0

    def test_error_status_and_propagation(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    raise ValueError("boom")
        assert inner.status == "error"
        assert outer.status == "error"
        assert tracer.active is None       # the stack unwound
        assert tracer.last is outer        # the tree was still kept

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root") as span:
            with tracer.span("child"):
                pass
        assert span.children == []          # nothing attached
        assert tracer.roots() == []

    def test_event_attaches_to_active_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.event("fired", 0.001, rule="r1")
        (event,) = root.children
        assert event.name == "fired"
        assert event.wall_s == pytest.approx(0.001)
        assert event.attributes["rule"] == "r1"

    def test_event_attribute_may_be_called_name(self):
        # `name` is positional-only exactly so instrumented code can
        # attach a `name=...` attribute (the catalog does).
        tracer = Tracer()
        span = tracer.event("db.version", name="bib", version=3)
        assert span.attributes == {"name": "bib", "version": 3}

    def test_capacity_bounds_finished_roots(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.roots()] == ["s3", "s4"]

    def test_take_drains(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert [s.name for s in tracer.take()] == ["a"]
        assert tracer.roots() == []

    def test_walk_find_and_self_time(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("leaf"):
                pass
        assert [s.name for s in root.walk()] == ["root", "leaf"]
        assert root.find("leaf").name == "leaf"
        assert root.self_s == pytest.approx(
            root.wall_s - root.children[0].wall_s
        )


class TestAmbientContext:
    def test_defaults_to_globals(self):
        assert current_tracer() is global_tracer()
        assert current_registry() is global_registry()

    def test_global_tracer_starts_disabled(self):
        assert global_tracer().enabled is False

    def test_use_tracer_rebinds_and_restores(self):
        mine = Tracer()
        with use_tracer(mine):
            assert current_tracer() is mine
        assert current_tracer() is global_tracer()

    def test_use_registry_rebinds_and_restores(self):
        mine = MetricsRegistry()
        with use_registry(mine):
            current_registry().counter("x").inc()
        assert mine.value("x") == 1
        assert current_registry() is global_registry()


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(3)
        assert registry.value("hits") == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("size")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert registry.value("size") == 3

    def test_histogram_counts_mean_and_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx((0.5 + 1.5 + 3.0 + 100.0) / 4)
        assert histogram.quantile(0.5) <= 4.0
        assert histogram.quantile(1.0) == float("inf")  # overflow bucket

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MetricError):
            registry.gauge("m")

    def test_as_dict_and_names(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.histogram("c").observe(0.1)
        assert registry.names() == ["a", "b", "c"]
        dumped = registry.as_dict()
        assert dumped["a"]["kind"] == "counter"
        assert dumped["b"]["kind"] == "gauge"
        assert dumped["c"]["kind"] == "histogram"
        json.dumps(dumped)  # stays JSON-serializable

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.clear()
        assert registry.names() == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("root", key="value") as root:
            with tracer.span("child"):
                pass
        return root

    def test_render_span_tree(self):
        text = render_span_tree(self._tree())
        assert "root" in text
        assert "└─ child" in text
        assert "key=value" in text

    def test_spans_to_jsonl_one_line_per_span(self):
        lines = spans_to_jsonl([self._tree()]).splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "root"
        assert parsed[1]["parent_id"] == parsed[0]["span_id"]

    def test_write_spans_jsonl(self, tmp_path):
        path = write_spans_jsonl([self._tree()], tmp_path / "spans.jsonl")
        assert len(path.read_text().splitlines()) == 2

    def test_metrics_text_and_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("requests").inc(7)
        registry.histogram("lat").observe(0.01)
        text = render_metrics(registry)
        assert "requests = 7" in text
        assert "lat:" in text
        loaded = json.loads(metrics_to_json(registry))
        assert loaded["requests"]["value"] == 7
        path = write_metrics_json(registry, tmp_path / "sub" / "m.json")
        assert json.loads(path.read_text())["requests"]["value"] == 7

    def test_render_empty_registry(self):
        assert render_metrics(MetricsRegistry()) == "(no metrics)"

    def test_append_bench_records_creates_and_extends(self, tmp_path):
        path = tmp_path / "results" / "bench_records.json"
        append_bench_records([{"operation": "engine", "n": 1}], path)
        append_bench_records([{"operation": "metrics", "n": 2}], path)
        loaded = json.loads(path.read_text())
        assert [entry["n"] for entry in loaded] == [1, 2]

    def test_append_bench_records_refuses_non_array(self, tmp_path):
        path = tmp_path / "bench_records.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(ValueError):
            append_bench_records([{"operation": "engine"}], path)

    def test_metrics_record_wraps_registry(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        record = metrics_record(registry, label="smoke", quick=True)
        assert record["operation"] == "metrics"
        assert record["label"] == "smoke"
        assert record["metrics"]["hits"]["value"] == 2


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_s=0.1)
        assert log.observe("fast", 0.05) is None
        record = log.observe("slow", 0.2)
        assert record is not None
        assert [r.statement for r in log.records()] == ["slow"]

    def test_zero_threshold_records_everything(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe("any", 0.0)
        assert len(log) == 1

    def test_capacity_is_a_ring(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=2)
        for index in range(4):
            log.observe(f"s{index}", 0.0)
        assert [r.statement for r in log.records()] == ["s2", "s3"]

    def test_record_rendering_and_dict(self):
        log = SlowQueryLog(threshold_s=0.0)
        record = log.observe("POINT R.x : A IN bib", 0.5)
        assert "POINT R.x : A IN bib" in str(record)
        assert record.to_dict()["wall_s"] == 0.5

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1.0)


# ----------------------------------------------------------------------
# Interpreter integration: statement spans, slow log, PROFILE
# ----------------------------------------------------------------------
def sum_consistent(span, rel_tol=0.25, abs_tol=5e-3):
    """Children's wall times never exceed their parent's (tolerantly)."""
    for node in span.walk():
        if node.children:
            child_total = sum(c.wall_s for c in node.children)
            assert child_total <= node.wall_s * (1 + rel_tol) + abs_tol, (
                f"{node.name}: children sum {child_total} > own {node.wall_s}"
            )


class TestInterpreterObservability:
    @pytest.fixture
    def interpreter(self):
        it = Interpreter(Database(), slow_query_s=0.0)
        it.database.register("bib", small_instance())
        return it

    def test_every_statement_becomes_a_root_span(self, interpreter):
        interpreter.execute("POINT R.x : A IN bib")
        span = interpreter.tracer.last
        assert span.name == "pxql.statement"
        assert span.attributes["kind"] == "PointStatement"
        assert span.find("engine.execute_plan") is not None
        assert span.find("query.point") is not None

    def test_statement_metrics_and_slow_log(self, interpreter):
        interpreter.execute("POINT R.x : A IN bib")
        interpreter.execute("LIST")
        assert interpreter.metrics.value("pxql.statements") == 2
        assert interpreter.metrics.get("pxql.statement_s").count == 2
        # threshold 0.0 records everything
        assert len(interpreter.slow_log) == 2

    def test_errors_are_counted_and_marked(self):
        # check="off" lets the failure happen at execution time, inside
        # the statement span (check="error" raises before a span opens).
        it = Interpreter(Database(), check="off")
        with pytest.raises(PXMLError):
            it.execute("SHOW missing")
        assert it.metrics.value("pxql.errors") == 1
        assert it.tracer.last.status == "error"
        assert it.metrics.value("pxql.statements") == 0

    def test_profile_returns_span_tree(self, interpreter):
        result = interpreter.execute("PROFILE POINT R.x : A IN bib")
        root = result.value
        assert root.name == "pxql.profile"
        assert root.find("engine.execute_plan") is not None
        assert "pxql.profile" in result.text
        assert interpreter.metrics.value("pxql.profiles") == 1

    def test_profile_sum_consistency_cold_and_warm(self, interpreter):
        cold = interpreter.execute("PROFILE SELECT R.x = A FROM bib AS s1")
        sum_consistent(cold.value)
        warm = interpreter.execute("PROFILE SELECT R.x = A FROM bib AS s2")
        sum_consistent(warm.value)
        # the warm run was served from the result cache
        hit_spans = [
            s for s in warm.value.walk()
            if s.attributes.get("cache") == "hit"
        ]
        assert hit_spans

    def test_profile_rejects_non_executable(self, interpreter):
        for bad in (
            "PROFILE EXPLAIN POINT R.x : A IN bib",
            "PROFILE CHECK LIST",
            "PROFILE PROFILE LIST",
        ):
            with pytest.raises(PXMLError):
                interpreter.execute(bad)

    def test_profile_side_effects_still_happen(self, interpreter):
        interpreter.execute("PROFILE PROJECT R.x FROM bib AS projected")
        assert "projected" in interpreter.database

    def test_db_version_events_in_statement_span(self, interpreter):
        interpreter.execute("PROJECT R.x FROM bib AS p")
        span = interpreter.tracer.last
        assert span.find("db.version") is not None

    def test_sampling_metrics(self, interpreter):
        interpreter.execute("ESTIMATE R.x IN bib SAMPLES 50")
        assert interpreter.metrics.value("sampling.worlds_sampled") == 50
        assert interpreter.tracer.last.find("sampling.estimate") is not None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestObsCLI:
    @pytest.fixture
    def script_dir(self, tmp_path):
        write_instance(small_instance(), tmp_path / "bib.pxml.json")
        (tmp_path / "script.pxql").write_text(
            "# a comment\n"
            "POINT R.x : A IN bib\n"
            "\n"
            "PROFILE EXISTS R.x IN bib\n"
        )
        return tmp_path

    def test_trace_text(self, script_dir, capsys):
        from repro.obs.__main__ import main

        code = main(["trace", str(script_dir / "script.pxql")])
        out = capsys.readouterr().out
        assert code == 0
        assert "pxql.statement" in out
        assert "engine.execute_plan" in out
        assert "== metrics ==" in out
        assert "pxql.statements = 2" in out

    def test_trace_jsonl(self, script_dir, capsys):
        from repro.obs.__main__ import main

        code = main(["trace", "--format", "jsonl",
                     str(script_dir / "script.pxql")])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert any(entry["name"] == "pxql.statement" for entry in parsed)

    def test_trace_writes_artifacts(self, script_dir, tmp_path, capsys):
        from repro.obs.__main__ import main

        metrics_path = tmp_path / "out" / "metrics.json"
        spans_path = tmp_path / "out" / "spans.jsonl"
        code = main([
            "trace", str(script_dir / "script.pxql"),
            "--metrics", str(metrics_path), "--spans", str(spans_path),
        ])
        assert code == 0
        assert "pxql.statements" in json.loads(metrics_path.read_text())
        assert spans_path.read_text().strip()

    def test_trace_missing_script(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["trace", str(tmp_path / "nope.pxql")]) == 2

    def test_trace_bad_statement_fails(self, script_dir, capsys):
        (script_dir / "bad.pxql").write_text("SHOW missing\n")
        from repro.obs.__main__ import main

        assert main(["trace", str(script_dir / "bad.pxql")]) == 1

    def test_records_summary(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        registry = MetricsRegistry()
        registry.counter("hits").inc()
        path = tmp_path / "records.json"
        append_bench_records(
            [{"operation": "engine", "mode": "warm"},
             metrics_record(registry, label="smoke")],
            path,
        )
        code = main(["records", "--path", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 records" in out
        assert "engine: 1" in out
        assert "metrics snapshot" in out

    def test_records_missing_file(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["records", "--path", str(tmp_path / "nope.json")]) == 2
