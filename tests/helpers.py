"""Random-instance generators shared by the test suite."""

from __future__ import annotations

import random

from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.semistructured.types import LeafType


def random_tree_instance(
    rng: random.Random,
    depth: int = 3,
    max_children: int = 3,
    max_labels: int = 2,
    allow_empty_choice: bool = True,
) -> ProbabilisticInstance:
    """A random tree-structured probabilistic instance.

    Small enough to enumerate (used to compare efficient algorithms with
    the global reference semantics).  Every non-leaf gets a random tabular
    OPF over a random subset of its potential child sets; leaves get
    random VPFs over a two-value domain.
    """
    weak = WeakInstance("r")
    interp = LocalInterpretation()
    leaf_type = LeafType("t", ("x", "y"))
    counter = 0

    def grow(oid: str, level: int) -> None:
        nonlocal counter
        if level == depth:
            weak.set_type(oid, leaf_type)
            p = rng.uniform(0.1, 0.9)
            interp.set_vpf(oid, TabularVPF({"x": p, "y": 1.0 - p}))
            return
        n_children = rng.randint(1, max_children)
        children = []
        for _ in range(n_children):
            counter += 1
            children.append(f"n{counter}")
        # Split the children among one or two labels.
        n_labels = rng.randint(1, min(max_labels, n_children))
        groups: dict[str, list[str]] = {}
        for index, child in enumerate(children):
            label = f"L{index % n_labels}"
            groups.setdefault(label, []).append(child)
        for label, group in groups.items():
            weak.set_lch(oid, label, group)
        # Random OPF over a random nonempty subset of PC(o).
        child_sets = list(weak.potential_child_sets(oid))
        if not allow_empty_choice:
            child_sets = [c for c in child_sets if c]
        rng.shuffle(child_sets)
        support = child_sets[: rng.randint(1, len(child_sets))]
        weights = [rng.uniform(0.05, 1.0) for _ in support]
        total = sum(weights)
        interp.set_opf(
            oid, TabularOPF({c: w / total for c, w in zip(support, weights)})
        )
        for child in children:
            grow(child, level + 1)

    grow("r", 0)
    pi = ProbabilisticInstance(weak, interp)
    pi.validate()
    return pi


def random_dag_instance(rng: random.Random, width: int = 3) -> ProbabilisticInstance:
    """A small random *DAG* probabilistic instance (3 layers, shared
    children) for exercising the enumeration and BN engines beyond trees."""
    weak = WeakInstance("r")
    interp = LocalInterpretation()
    leaf_type = LeafType("t", ("x", "y"))

    mids = [f"m{i}" for i in range(width)]
    leaves = [f"z{i}" for i in range(width)]
    weak.set_lch("r", "a", mids)
    for index, mid in enumerate(mids):
        # Each middle node may share leaves with its neighbour.
        pool = sorted({leaves[index], leaves[(index + 1) % width]})
        weak.set_lch(mid, "b", pool)
        child_sets = list(weak.potential_child_sets(mid))
        weights = [rng.uniform(0.05, 1.0) for _ in child_sets]
        total = sum(weights)
        interp.set_opf(
            mid, TabularOPF({c: w / total for c, w in zip(child_sets, weights)})
        )
    child_sets = list(weak.potential_child_sets("r"))
    weights = [rng.uniform(0.05, 1.0) for _ in child_sets]
    total = sum(weights)
    interp.set_opf(
        "r", TabularOPF({c: w / total for c, w in zip(child_sets, weights)})
    )
    for leaf in leaves:
        weak.set_type(leaf, leaf_type)
        p = rng.uniform(0.1, 0.9)
        interp.set_vpf(leaf, TabularVPF({"x": p, "y": 1.0 - p}))
    pi = ProbabilisticInstance(weak, interp)
    pi.validate()
    return pi
