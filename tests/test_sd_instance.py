"""Unit tests for semistructured instances (Definition 3.3)."""

import pytest

from repro.errors import ModelError, TypeDomainError, UnknownObjectError
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import LeafType

T = LeafType("t", ["x", "y"])


@pytest.fixture
def inst():
    return SemistructuredInstance.from_edges(
        "r",
        [("r", "a", "l1"), ("r", "b", "l2"), ("a", "c", "l3")],
        [("c", T, "x"), ("b", T, "y")],
    )


class TestConstruction:
    def test_from_edges(self, inst):
        assert inst.root == "r"
        assert len(inst) == 4
        assert inst.children("r") == frozenset({"a", "b"})
        assert inst.label("a", "c") == "l3"

    def test_add_object_disconnected(self, inst):
        inst.add_object("island")
        assert "island" in inst

    def test_set_value_checked_against_type(self, inst):
        with pytest.raises(TypeDomainError):
            inst.set_value("c", "nope")

    def test_set_value_before_type_allowed(self, inst):
        inst.add_object("d")
        inst.add_edge("a", "d", "l4")
        inst.set_value("d", "anything")
        assert inst.val("d") == "anything"

    def test_set_leaf(self, inst):
        inst.add_edge("r", "e", "l5")
        inst.set_leaf("e", T, "x")
        assert inst.tau("e") == T
        assert inst.val("e") == "x"

    def test_unknown_object_raises(self, inst):
        with pytest.raises(UnknownObjectError):
            inst.set_type("ghost", T)
        with pytest.raises(UnknownObjectError):
            inst.tau("ghost")

    def test_copy_independent(self, inst):
        clone = inst.copy()
        clone.add_edge("b", "z", "l9")
        assert "z" not in inst


class TestAccessors:
    def test_lch(self, inst):
        assert inst.lch("r", "l1") == frozenset({"a"})

    def test_leaves(self, inst):
        assert inst.leaves() == frozenset({"b", "c"})

    def test_typed_leaves(self, inst):
        assert set(inst.typed_leaves()) == {("c", T, "x"), ("b", T, "y")}

    def test_tau_val_none_for_untyped(self, inst):
        assert inst.tau("a") is None
        assert inst.val("a") is None


class TestValidation:
    def test_valid_passes(self, inst):
        inst.validate()

    def test_unreachable_object_rejected(self, inst):
        inst.add_object("island")
        with pytest.raises(ModelError):
            inst.validate()

    def test_untyped_leaf_rejected_when_strict(self, inst):
        inst.add_edge("r", "naked", "l6")
        with pytest.raises(TypeDomainError):
            inst.validate()
        inst.validate(strict_leaves=False)

    def test_root_only_instance_is_valid(self):
        SemistructuredInstance("r").validate()


class TestIdentity:
    def test_equality_by_canonical_form(self, inst):
        other = SemistructuredInstance.from_edges(
            "r",
            [("a", "c", "l3"), ("r", "b", "l2"), ("r", "a", "l1")],
            [("b", T, "y"), ("c", T, "x")],
        )
        assert inst == other
        assert hash(inst) == hash(other)

    def test_value_difference_breaks_equality(self, inst):
        other = inst.copy()
        other.set_value("c", "y")
        assert inst != other

    def test_label_difference_breaks_equality(self, inst):
        other = SemistructuredInstance.from_edges(
            "r",
            [("r", "a", "DIFFERENT"), ("r", "b", "l2"), ("a", "c", "l3")],
            [("c", T, "x"), ("b", T, "y")],
        )
        assert inst != other

    def test_usable_as_dict_key(self, inst):
        d = {inst: 1.0}
        assert d[inst.copy()] == 1.0
