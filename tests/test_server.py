"""The PXQL server: admission control, budgets, shutdown, probes.

These tests drive :class:`repro.server.PXQLServer` through its whole
contract — correct results under concurrency, typed ``Overloaded``
backpressure on a full queue, per-request budget enforcement, graceful
drain versus immediate stop, signal-triggered shutdown, probe
transitions, and ContextVar propagation from submitter to worker.
"""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import BudgetExceeded, Overloaded, ServerError
from repro.obs.metrics import MetricsRegistry
from repro.pxql.interpreter import Interpreter
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.server import PXQLServer
from repro.storage.database import Database

QUERY = "EXISTS R.book.author IN bib"


def build_bib():
    """A small tree-structured bibliography (local algorithms apply)."""
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"])
    b.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    b.children("B1", "author", ["A1"])
    b.opf("B1", {("A1",): 0.5, (): 0.5})
    b.children("B2", "author", ["A3"])
    b.opf("B2", {("A3",): 0.6, (): 0.4})
    b.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    b.leaf("A3", "name", vpf={"y": 1.0})
    return b.build()


@pytest.fixture()
def database():
    db = Database()
    db.register("bib", build_bib())
    return db


@pytest.fixture()
def reference(database):
    return Interpreter(database=database).execute(QUERY).value


class _GatedInterpreter(Interpreter):
    """An interpreter whose execution blocks until a gate opens — the
    deterministic way to fill the admission queue in tests."""

    def __init__(self, gate: threading.Event, **kwargs):
        super().__init__(**kwargs)
        self._gate = gate

    def execute(self, text):
        assert self._gate.wait(10.0), "test gate never opened"
        return super().execute(text)


def gated_server(database, gate, workers=1, queue_size=2, **kwargs):
    return PXQLServer(
        database=database,
        workers=workers,
        queue_size=queue_size,
        interpreter_factory=lambda index: _GatedInterpreter(
            gate, database=database
        ),
        poll_s=0.005,
        **kwargs,
    )


class TestExecution:
    def test_concurrent_queries_return_the_reference_value(
        self, database, reference
    ):
        with PXQLServer(database=database, workers=4, queue_size=64) as server:
            futures = [server.submit(QUERY) for _ in range(16)]
            for future in futures:
                assert future.result(10.0).value == pytest.approx(reference)
            health = server.health()
        assert health["completed"] == 16
        assert health["failed"] == 0

    def test_unnamed_results_do_not_collide_across_workers(self, database):
        with PXQLServer(database=database, workers=4, queue_size=64) as server:
            futures = [
                server.submit("PROJECT R.book FROM bib") for _ in range(12)
            ]
            names = {f.result(10.0).instance_name for f in futures}
        assert len(names) == 12  # every auto-name is worker-prefixed unique

    def test_execution_errors_travel_through_the_future(self, database):
        with PXQLServer(database=database, workers=2, queue_size=8) as server:
            future = server.submit("EXISTS R.book.author IN no_such_instance")
            with pytest.raises(Exception) as excinfo:
                future.result(10.0)
        assert "no_such_instance" in str(excinfo.value)

    def test_submit_before_start_is_refused(self, database):
        server = PXQLServer(database=database)
        with pytest.raises(ServerError):
            server.submit(QUERY)


class TestAdmissionControl:
    def test_full_queue_answers_overloaded(self, database):
        gate = threading.Event()
        server = gated_server(database, gate, workers=1, queue_size=2)
        with server:
            admitted = [server.submit(QUERY)]
            # The worker may have dequeued the first request (it is now
            # blocked on the gate); fill whatever queue space remains.
            rejected = None
            for _ in range(8):
                try:
                    admitted.append(server.submit(QUERY))
                except Overloaded as exc:
                    rejected = exc
                    break
            assert rejected is not None
            assert rejected.reason == "queue_full"
            assert not server.ready()  # no capacity -> not ready
            gate.set()
            for future in admitted:
                future.result(10.0)
        assert server.metrics.value("server.rejected") >= 1

    def test_budget_bounds_a_request(self, database):
        with PXQLServer(database=database, workers=2, queue_size=8) as server:
            future = server.submit(QUERY, budget=Budget(deadline_s=1e-9))
            with pytest.raises(BudgetExceeded):
                future.result(10.0)

    def test_budget_factory_applies_to_every_request(self, database):
        with PXQLServer(
            database=database,
            workers=2,
            queue_size=8,
            budget_factory=lambda: Budget(deadline_s=1e-9),
        ) as server:
            with pytest.raises(BudgetExceeded):
                server.execute(QUERY, timeout_s=10.0)
            # An explicit budget overrides the factory default.
            result = server.execute(
                QUERY, budget=Budget(deadline_s=30.0), timeout_s=10.0
            )
            assert result.value is not None


class TestShutdown:
    def test_drain_finishes_queued_work(self, database, reference):
        gate = threading.Event()
        server = gated_server(database, gate, workers=2, queue_size=8)
        server.start()
        futures = [server.submit(QUERY) for _ in range(4)]
        gate.set()
        assert server.drain(timeout_s=10.0)
        for future in futures:
            assert future.result(0.0).value == pytest.approx(reference)
        with pytest.raises(Overloaded) as excinfo:
            server.submit(QUERY)
        assert excinfo.value.reason == "draining"
        assert server.stop(drain=False)
        assert server.state == "stopped"

    def test_immediate_stop_answers_queued_requests(self, database):
        gate = threading.Event()
        server = gated_server(database, gate, workers=1, queue_size=4)
        server.start()
        futures = []
        for _ in range(5):
            try:
                futures.append(server.submit(QUERY))
            except Overloaded:
                break
        gate.set()
        server.stop(drain=False, timeout_s=10.0)
        resolved = 0
        for future in futures:
            try:
                future.result(10.0)
                resolved += 1
            except Overloaded as exc:
                assert exc.reason == "stopped"
                resolved += 1
        assert resolved == len(futures)  # every request got an answer

    def test_stop_is_idempotent(self, database):
        server = PXQLServer(database=database, workers=1).start()
        assert server.stop()
        assert server.stop()
        assert server.state == "stopped"

    def test_signal_triggers_graceful_shutdown(self, database, reference):
        server = PXQLServer(database=database, workers=2, queue_size=8)
        server.start()
        previous = server.install_signal_handlers(signals=(signal.SIGUSR1,))
        try:
            future = server.submit(QUERY)
            signal.raise_signal(signal.SIGUSR1)
            assert future.result(10.0).value == pytest.approx(reference)
            deadline = time.monotonic() + 10.0
            while server.state != "stopped" and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.state == "stopped"
            assert server.metrics.value("server.signals") == 1
        finally:
            signal.signal(signal.SIGUSR1, previous[signal.SIGUSR1])
            server.stop(drain=False)


class TestLifecycleRaces:
    """Regression tests for the two shutdown races (PR 8).

    Both were real TOCTOU windows in the original server: drain()
    judged idleness from queue depth + the in-flight counter (which a
    worker increments only *after* dequeuing), and submit() released
    the state lock between the state check and the enqueue (so a stop()
    sweep could run inside the gap and the late put was never
    answered).  The ``server.worker.handoff`` / ``server.submit.enqueue``
    fault points park a thread inside exactly those windows.
    """

    def test_drain_does_not_report_idle_during_worker_handoff(
        self, database, reference
    ):
        # Park the single worker inside the dequeue→execute handoff:
        # a barrier fault with parties=2 that only the worker visits
        # waits out its full rendezvous window (0.6 s) before releasing.
        injector = FaultInjector(
            FaultSpec(site="server.worker.handoff", kind="barrier",
                      parties=2, delay_s=0.6, times=1)
        )
        server = PXQLServer(
            database=database, workers=1, queue_size=4, poll_s=0.002
        )
        with server:
            with injector:
                future = server.submit(QUERY)
            deadline = time.monotonic() + 5.0
            while injector.fired("server.worker.handoff") == 0:
                assert time.monotonic() < deadline, "worker never dequeued"
                time.sleep(0.002)
            # The worker has dequeued (depth is 0) but not yet run the
            # request.  The buggy drain() saw depth == 0, inflight == 0
            # and reported a clean drain with work still pending.
            assert not server.drain(timeout_s=0.2), (
                "drain() reported idle while a request sat in the "
                "dequeue→execute handoff window"
            )
            assert not future.done
            assert future.result(10.0).value == pytest.approx(reference)
            assert server.drain(timeout_s=10.0)

    def test_late_submit_is_always_answered(self, database):
        # Park a submitter between the admission check and the enqueue
        # while stop() runs its whole shutdown (halt + sweep).  The
        # buggy submit() then landed the request in the queue *after*
        # the sweep, with all workers gone — unresolved forever.
        injector = FaultInjector(
            FaultSpec(site="server.submit.enqueue", kind="slow",
                      delay_s=0.4, times=1)
        )
        server = PXQLServer(
            database=database, workers=1, queue_size=4, poll_s=0.002
        ).start()
        outcome: dict[str, object] = {}

        def late_submit() -> None:
            with injector:
                try:
                    outcome["future"] = server.submit(QUERY)
                except Overloaded as exc:
                    outcome["rejected"] = exc.reason

        thread = threading.Thread(target=late_submit, name="late-submitter")
        thread.start()
        deadline = time.monotonic() + 5.0
        while injector.fired("server.submit.enqueue") == 0:
            assert time.monotonic() < deadline, "submitter never parked"
            time.sleep(0.002)
        server.stop(drain=False, timeout_s=10.0)
        thread.join(10.0)
        assert not thread.is_alive()
        future = outcome.get("future")
        if future is None:
            # stop() won the race outright: a typed rejection is fine.
            assert outcome.get("rejected") in ("draining", "stopped")
        else:
            # Admitted — then it MUST be answered (result or typed
            # error), never abandoned in a halted queue.
            assert future.wait(5.0), (
                "late submit lost its request forever: admitted after "
                "the shutdown sweep with every worker halted"
            )
            try:
                future.result(0.0)
            except Overloaded as exc:
                assert exc.reason == "stopped"

    def test_execute_raises_server_error_on_type_confusion(self, database):
        # `assert isinstance(value, Result)` vanished under python -O;
        # the check must hold in every mode and raise a typed error.
        class _ConfusedInterpreter(Interpreter):
            def execute(self, text):
                return "not a Result"

        with PXQLServer(
            database=database,
            workers=1,
            interpreter_factory=lambda i: _ConfusedInterpreter(
                database=database
            ),
        ) as server:
            with pytest.raises(ServerError, match="non-Result"):
                server.execute(QUERY, timeout_s=10.0)


class TestProbes:
    def test_probe_lifecycle(self, database):
        server = PXQLServer(database=database, workers=2, queue_size=4)
        assert not server.alive()
        assert not server.ready()
        server.start()
        assert server.alive()
        assert server.ready()
        server.drain(timeout_s=5.0)
        assert server.alive()  # draining pool is still live...
        assert not server.ready()  # ...but not admitting
        server.stop(drain=False)
        assert not server.alive()
        assert not server.ready()

    def test_health_counters_reconcile(self, database):
        metrics = MetricsRegistry()
        with PXQLServer(
            database=database, workers=2, queue_size=16, metrics=metrics
        ) as server:
            for _ in range(6):
                server.execute(QUERY, timeout_s=10.0)
            try:
                server.execute(
                    "EXISTS R.book.author IN missing", timeout_s=10.0
                )
            except Exception:
                pass
            health = server.health()
        assert health["submitted"] == 7
        assert health["completed"] + health["failed"] == 7
        assert health["queue_depth"] == 0


class TestContextPropagation:
    def test_submitters_fault_injector_reaches_the_worker(self, tmp_path):
        """Ambient ContextVars are captured at submit and replayed in
        the worker — an injector installed by the submitting thread
        fires at hook points the worker visits."""
        database = Database(tmp_path)
        database.register("bib", build_bib())
        injector = FaultInjector(
            FaultSpec(
                site="lock.db.mutate", kind="slow", delay_s=0.0, times=None
            )
        )
        with PXQLServer(database=database, workers=2, queue_size=8) as server:
            with injector:
                server.execute("SAVE bib", timeout_s=10.0)
            before = injector.fired("lock.db.mutate")
            assert before >= 1
            # Outside the with-block the snapshot no longer carries it.
            server.execute("SAVE bib", timeout_s=10.0)
            assert injector.fired("lock.db.mutate") == before
