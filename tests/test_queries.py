"""Tests for Section 6.2's queries across all three engines."""

import random

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import QueryError
from repro.paper import figure2_instance
from repro.queries.chain import chain_probability
from repro.queries.engine import QueryEngine
from repro.queries.point import existential_query, point_query
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression

from tests.helpers import random_dag_instance, random_tree_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1", "A2"])
    builder.opf("B1", {("A1",): 0.5, ("A2",): 0.2, ("A1", "A2"): 0.3})
    builder.children("B2", "author", ["A3"])
    builder.opf("B2", {("A3",): 0.6, (): 0.4})
    builder.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    builder.leaf("A2", "name", vpf={"x": 1.0})
    builder.leaf("A3", "name", vpf={"y": 1.0})
    return builder.build()


class TestChainProbability:
    def test_single_link(self, tree):
        assert chain_probability(tree, ["R", "B1"]) == pytest.approx(0.7)

    def test_two_links(self, tree):
        assert chain_probability(tree, ["R", "B1", "A1"]) == pytest.approx(0.7 * 0.8)

    def test_root_only_chain(self, tree):
        assert chain_probability(tree, ["R"]) == 1.0

    def test_impossible_link_is_zero(self, tree):
        assert chain_probability(tree, ["R", "A1"]) == 0.0

    def test_unknown_object_is_zero(self, tree):
        assert chain_probability(tree, ["R", "GHOST"]) == 0.0

    def test_wrong_start_rejected(self, tree):
        with pytest.raises(QueryError):
            chain_probability(tree, ["B1", "A1"])

    def test_empty_chain_rejected(self, tree):
        with pytest.raises(QueryError):
            chain_probability(tree, [])

    def test_matches_enumeration(self, tree):
        worlds = GlobalInterpretation.from_local(tree)
        brute = worlds.event_probability(
            lambda w: "B1" in w and "A1" in w.children("B1")
        )
        assert chain_probability(tree, ["R", "B1", "A1"]) == pytest.approx(brute)


class TestPointQuery:
    def test_matches_enumeration(self, tree):
        worlds = GlobalInterpretation.from_local(tree)
        path = PathExpression.parse("R.book.author")
        for oid in ["A1", "A2", "A3"]:
            assert point_query(tree, path, oid) == pytest.approx(
                worlds.prob_object_at_path(path, oid)
            )

    def test_object_off_path_is_zero(self, tree):
        assert point_query(tree, "R.book", "A1") == 0.0

    def test_wrong_label_is_zero(self, tree):
        assert point_query(tree, "R.paper.author", "A1") == 0.0

    def test_root_point_query(self, tree):
        assert point_query(tree, "R", "R") == 1.0


class TestExistentialQuery:
    def test_matches_enumeration(self, tree):
        worlds = GlobalInterpretation.from_local(tree)
        for text in ["R.book", "R.book.author"]:
            path = PathExpression.parse(text)
            assert existential_query(tree, path) == pytest.approx(
                worlds.prob_path_nonempty(path)
            )

    def test_not_just_sum_of_points(self, tree):
        # Existential probability uses inclusion-exclusion across objects:
        # it must be below the sum of the point probabilities.
        path = PathExpression.parse("R.book.author")
        points = sum(point_query(tree, path, o) for o in ["A1", "A2", "A3"])
        exists = existential_query(tree, path)
        assert exists < points
        assert exists == pytest.approx(
            GlobalInterpretation.from_local(tree).prob_path_nonempty(path)
        )

    def test_impossible_path_is_zero(self, tree):
        assert existential_query(tree, "R.ghost") == 0.0


class TestQueryEngine:
    def test_auto_picks_local_for_trees(self, tree):
        assert QueryEngine(tree).strategy == "local"

    def test_auto_picks_bayes_for_dags(self):
        assert QueryEngine(figure2_instance()).strategy == "bayes"

    def test_unknown_strategy_rejected(self, tree):
        with pytest.raises(QueryError):
            QueryEngine(tree, strategy="magic")

    @pytest.mark.parametrize("strategy", ["local", "bayes", "enumerate"])
    def test_point_agrees_across_engines(self, tree, strategy):
        engine = QueryEngine(tree, strategy=strategy)
        assert engine.point("R.book.author", "A1") == pytest.approx(0.7 * 0.8)

    @pytest.mark.parametrize("strategy", ["local", "bayes", "enumerate"])
    def test_exists_agrees_across_engines(self, tree, strategy):
        reference = QueryEngine(tree, strategy="enumerate").exists("R.book.author")
        engine = QueryEngine(tree, strategy=strategy)
        assert engine.exists("R.book.author") == pytest.approx(reference)

    @pytest.mark.parametrize("strategy", ["local", "bayes", "enumerate"])
    def test_chain_agrees_across_engines(self, tree, strategy):
        engine = QueryEngine(tree, strategy=strategy)
        assert engine.chain(["R", "B2", "A3"]) == pytest.approx(0.6 * 0.6)

    def test_object_exists(self, tree):
        engine = QueryEngine(tree)
        reference = GlobalInterpretation.from_local(tree).prob_object_exists("A3")
        assert engine.object_exists("A3") == pytest.approx(reference)

    def test_dag_point_query_via_bayes(self):
        pi = figure2_instance()
        engine = QueryEngine(pi)
        reference = GlobalInterpretation.from_local(pi).prob_object_at_path(
            PathExpression.parse("R.book.author"), "A2"
        )
        assert engine.point("R.book.author", "A2") == pytest.approx(reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees_engines_agree(self, seed):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        graph = pi.weak.graph()
        leaf = sorted(pi.weak.leaves())[0]
        labels = []
        current = leaf
        while current != pi.root:
            (parent,) = graph.parents(current)
            labels.append(graph.label(parent, current))
            current = parent
        labels.reverse()
        path = PathExpression(pi.root, tuple(labels))
        answers = {
            strategy: QueryEngine(pi, strategy=strategy).point(path, leaf)
            for strategy in ("local", "bayes", "enumerate")
        }
        assert answers["local"] == pytest.approx(answers["enumerate"])
        assert answers["bayes"] == pytest.approx(answers["enumerate"])

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dags_bayes_matches_enumeration(self, seed):
        rng = random.Random(seed)
        pi = random_dag_instance(rng)
        path = PathExpression(pi.root, ("a", "b"))
        bayes = QueryEngine(pi, strategy="bayes")
        brute = QueryEngine(pi, strategy="enumerate")
        assert bayes.exists(path) == pytest.approx(brute.exists(path))
        for leaf in sorted(pi.weak.leaves()):
            assert bayes.point(path, leaf) == pytest.approx(brute.point(path, leaf))
