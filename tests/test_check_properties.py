"""Property tests for the static checker (hypothesis over generated instances).

Three contracts from the subsystem's design:

1. *Lint soundness*: an instance the model pass calls clean (no
   error-severity issues) never raises in ``validate()``.
2. *Dataguide exactness*: on generated instances the guide contains a
   label path iff some object on it has nonzero existence probability,
   and on trees the per-path lower bound equals the best per-object
   existence probability exactly.
3. *Checker/runtime agreement*: on >= 20 generated instances the plan
   checker's never-match and unsatisfiable-guard verdicts agree with
   what naive execution actually does.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import existence_probability
from repro.check.dataguide import build_dataguide
from repro.check.model import has_errors, lint_instance
from repro.check.plans import check_plan
from repro.engine.plan import PlanBuilder
from repro.errors import EmptyResultError
from repro.pxql import Interpreter
from repro.semistructured.paths import PathExpression, match_path
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

SPEC_STRATEGY = st.builds(
    WorkloadSpec,
    depth=st.integers(min_value=1, max_value=3),
    branching=st.integers(min_value=1, max_value=2),
    labeling=st.sampled_from(["SL", "FR"]),
    seed=st.integers(min_value=0, max_value=10_000),
    opf_kind=st.sampled_from(["tabular", "independent"]),
)


@settings(max_examples=40, deadline=None)
@given(spec=SPEC_STRATEGY)
def test_lint_clean_instances_validate(spec):
    instance = generate_workload(spec).instance
    issues = lint_instance(instance)
    if not has_errors(issues):
        instance.validate()    # must not raise


def _structural_paths(graph, root):
    """All label paths of the weak graph, by BFS (graphs are acyclic)."""
    paths = {(): {root}}
    frontier = {(): {root}}
    while frontier:
        next_frontier = {}
        for labels, objects in frontier.items():
            for oid in objects:
                for child in graph.children(oid):
                    extended = (*labels, graph.label(oid, child))
                    next_frontier.setdefault(extended, set()).add(child)
        for labels, objects in next_frontier.items():
            paths.setdefault(labels, set()).update(objects)
        frontier = next_frontier
    return paths


@settings(max_examples=40, deadline=None)
@given(spec=SPEC_STRATEGY)
def test_dataguide_paths_iff_nonzero_existence(spec):
    instance = generate_workload(spec).instance
    guide = build_dataguide(instance)
    graph = instance.weak.graph()
    for labels, objects in _structural_paths(graph, instance.root).items():
        alive = {o for o in objects if existence_probability(instance, o) > 0.0}
        assert guide.targets(labels) == frozenset(alive), labels
        entry = guide.entry(labels)
        if alive:
            assert entry is not None
            if guide.is_tree:
                best = max(existence_probability(instance, o) for o in alive)
                assert entry.lower == pytest.approx(best)
                assert entry.upper >= entry.lower - 1e-12
        else:
            assert entry is None


# ----------------------------------------------------------------------
# Checker verdicts vs naive execution, on >= 20 generated instances
# ----------------------------------------------------------------------
AGREEMENT_SPECS = [
    WorkloadSpec(depth=2, branching=2, labeling=labeling, seed=seed,
                 opf_kind=opf_kind)
    for labeling in ("SL", "FR")
    for opf_kind in ("tabular", "independent")
    for seed in range(6)
]
assert len(AGREEMENT_SPECS) >= 20


def _spec_id(spec):
    return f"{spec.labeling}-{spec.opf_kind}-s{spec.seed}"


@pytest.mark.parametrize("spec", AGREEMENT_SPECS, ids=_spec_id)
def test_never_match_verdicts_agree_with_naive_execution(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 7000)
    live_path = random_projection_path(workload, rng)
    dead_path = PathExpression.parse(f"{live_path}.zzz")

    database = Database()
    database.register("base", workload.instance)
    naive = Interpreter(database, strategy="naive", check="off")

    # Checker: the live path is fine, the dead one is a never-match.
    live_plan = PlanBuilder.scan("base").project(live_path).build()
    assert "PX210" not in [d.code for d in check_plan(live_plan, database)]
    dead_plan = PlanBuilder.scan("base").project(dead_path).build()
    assert "PX210" in [d.code for d in check_plan(dead_plan, database)]

    # Naive execution agrees: the live projection keeps a real match,
    # the dead one degenerates to the bare root.
    live = naive.execute(f"PROJECT {live_path} FROM base AS live").value
    assert len(live) > 1
    dead = naive.execute(f"PROJECT {dead_path} FROM base AS dead").value
    assert set(dead.objects) == {workload.instance.root}

    # EXISTS verdicts agree too (PX240 <-> probability zero).
    exists_plan = PlanBuilder.scan("base").exists(dead_path).build()
    assert "PX240" in [d.code for d in check_plan(exists_plan, database)]
    assert naive.execute(f"EXISTS {dead_path} IN base").value == 0.0
    assert naive.execute(f"EXISTS {live_path} IN base").value > 0.0


@pytest.mark.parametrize("spec", AGREEMENT_SPECS, ids=_spec_id)
def test_unsatisfiable_guard_verdicts_agree_with_naive_execution(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 8000)
    path = random_projection_path(workload, rng)
    graph = workload.instance.weak.graph()
    oid = rng.choice(sorted(match_path(graph, path).matched))

    database = Database()
    database.register("base", workload.instance)

    plan = PlanBuilder.scan("base").select(
        path, oid, prob_op=">", prob_bound=1.0
    ).build()
    assert "PX225" in [d.code for d in check_plan(plan, database)]

    naive = Interpreter(database, strategy="naive", check="off")
    with pytest.raises(EmptyResultError):
        naive.execute(f"SELECT {path} = {oid} AND PROB > 1.0 FROM base")
