"""Tests for the semantics layer: worlds, compatibility, Theorem 1."""

import random

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import CyclicModelError
from repro.semantics.compatible import (
    count_worlds,
    domain_distribution,
    is_compatible,
    iter_compatible_instances,
    world_probability,
)
from repro.semantics.global_interpretation import GlobalInterpretation, verify_theorem1
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import LeafType

from tests.helpers import random_dag_instance, random_tree_instance


@pytest.fixture
def chain_instance():
    """r --l--> a --m--> b, each optional, leaf b has two values."""
    builder = InstanceBuilder("r")
    builder.children("r", "l", ["a"], card=(0, 1))
    builder.opf("r", {(): 0.4, ("a",): 0.6})
    builder.children("a", "m", ["b"], card=(0, 1))
    builder.opf("a", {(): 0.5, ("b",): 0.5})
    builder.leaf("b", "t", ["x", "y"], {"x": 0.25, "y": 0.75})
    return builder.build()


class TestEnumeration:
    def test_world_count(self, chain_instance):
        # Worlds: {r}, {r,a}, {r,a,b=x}, {r,a,b=y}.
        assert count_worlds(chain_instance) == 4

    def test_world_probabilities(self, chain_instance):
        dist = domain_distribution(chain_instance)
        probabilities = sorted(dist.values())
        assert probabilities == pytest.approx([0.075, 0.225, 0.3, 0.4])

    def test_total_mass_is_one(self, chain_instance):
        assert sum(domain_distribution(chain_instance).values()) == pytest.approx(1.0)

    def test_enumeration_matches_direct_formula(self, chain_instance):
        for world, probability in iter_compatible_instances(chain_instance):
            assert world_probability(chain_instance, world) == pytest.approx(
                probability
            )

    def test_every_enumerated_world_is_compatible(self, chain_instance):
        for world, _ in iter_compatible_instances(chain_instance):
            assert is_compatible(world, chain_instance.weak)

    def test_cyclic_instance_rejected(self):
        from repro.core.instance import ProbabilisticInstance
        from repro.core.weak_instance import WeakInstance

        weak = WeakInstance("a")
        weak.set_lch("a", "l", ["b"])
        weak.set_lch("b", "l", ["a"])
        with pytest.raises(CyclicModelError):
            list(iter_compatible_instances(ProbabilisticInstance(weak)))

    def test_dag_shared_child_counted_once(self):
        # r has children a and b; both may point to the shared leaf z.
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b"], card=(2, 2))
        builder.opf("r", {("a", "b"): 1.0})
        builder.children("a", "m", ["z"], card=(1, 1))
        builder.opf("a", {("z",): 1.0})
        builder.children("b", "m", ["z"], card=(1, 1))
        builder.opf("b", {("z",): 1.0})
        builder.leaf("z", "t", ["x"], {"x": 1.0})
        pi = builder.build()
        dist = domain_distribution(pi)
        assert len(dist) == 1
        (world, probability), = dist.items()
        assert probability == pytest.approx(1.0)
        assert world.parents("z") == frozenset({"a", "b"})


class TestCompatibility:
    def test_wrong_root_incompatible(self, chain_instance):
        world = SemistructuredInstance("other")
        assert not is_compatible(world, chain_instance.weak)

    def test_unknown_object_incompatible(self, chain_instance):
        world = SemistructuredInstance("r")
        world.add_edge("r", "ghost", "l")
        assert not is_compatible(world, chain_instance.weak)

    def test_wrong_label_incompatible(self, chain_instance):
        world = SemistructuredInstance("r")
        world.add_edge("r", "a", "WRONG")
        assert not is_compatible(world, chain_instance.weak)

    def test_cardinality_violation_incompatible(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b"], card=(2, 2))
        builder.opf("r", {("a", "b"): 1.0})
        builder.leaf("a", "t", ["x"], {"x": 1.0})
        builder.leaf("b", "t", vpf={"x": 1.0})
        pi = builder.build()
        world = SemistructuredInstance("r")
        world.add_edge("r", "a", "l")  # only one child: violates [2, 2]
        world.set_leaf("a", LeafType("t", ["x"]), "x")
        assert not is_compatible(world, pi.weak)

    def test_weak_leaf_must_stay_leaf(self, chain_instance):
        world = SemistructuredInstance("r")
        world.add_edge("r", "a", "l")
        world.add_edge("a", "b", "m")
        world.add_edge("b", "a", "zzz")  # b is a weak leaf: no children allowed
        assert not is_compatible(world, chain_instance.weak)

    def test_value_outside_domain_incompatible(self, chain_instance):
        world = SemistructuredInstance("r")
        world.add_edge("r", "a", "l")
        world.add_edge("a", "b", "m")
        world.set_type("b", LeafType("t", ["x", "y"]))
        # Bypass the type check to build an inconsistent world.
        world._val["b"] = "z"
        assert not is_compatible(world, chain_instance.weak)

    def test_incompatible_world_has_zero_probability(self, chain_instance):
        world = SemistructuredInstance("r")
        world.add_edge("r", "a", "WRONG")
        assert world_probability(chain_instance, world) == 0.0


class TestTheorem1:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_sum_to_one(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=3)
        verify_theorem1(pi)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags_sum_to_one(self, seed):
        pi = random_dag_instance(random.Random(seed))
        verify_theorem1(pi)


class TestGlobalInterpretation:
    def test_event_probability(self, chain_instance):
        interpretation = GlobalInterpretation.from_local(chain_instance)
        assert interpretation.prob_object_exists("a") == pytest.approx(0.6)
        assert interpretation.prob_object_exists("b") == pytest.approx(0.3)

    def test_condition(self, chain_instance):
        interpretation = GlobalInterpretation.from_local(chain_instance)
        conditioned = interpretation.condition(lambda world: "a" in world)
        conditioned.validate()
        assert conditioned.prob_object_exists("a") == pytest.approx(1.0)
        assert conditioned.prob_object_exists("b") == pytest.approx(0.5)

    def test_condition_on_null_event_raises(self, chain_instance):
        from repro.errors import EmptyResultError

        interpretation = GlobalInterpretation.from_local(chain_instance)
        with pytest.raises(EmptyResultError):
            interpretation.condition(lambda world: "ghost" in world)

    def test_map_worlds_groups(self, chain_instance):
        interpretation = GlobalInterpretation.from_local(chain_instance)
        # Collapse every world to the bare root: all mass on one world.
        collapsed = interpretation.map_worlds(
            lambda world: SemistructuredInstance(world.root)
        )
        assert len(collapsed) == 1
        collapsed.validate()

    def test_is_close_to(self, chain_instance):
        a = GlobalInterpretation.from_local(chain_instance)
        b = GlobalInterpretation.from_local(chain_instance)
        assert a.is_close_to(b)
