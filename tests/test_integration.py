"""End-to-end integration tests stitching the whole system together."""

import random

import pytest

from repro import (
    InstanceBuilder,
    ObjectCondition,
    PathExpression,
    QueryEngine,
    ancestor_projection_local,
    cartesian_product,
    select_local,
)
from repro.algebra.extensions import rename_objects
from repro.analysis import summarize
from repro.bayesnet import PXMLBayesianNetwork
from repro.core.lint import lint_instance
from repro.io.json_codec import read_instance, write_instance
from repro.protdb.patterns import (
    PatternNode,
    estimate_pattern_probability,
    pattern_probability,
)
from repro.pxql import Interpreter
from repro.semantics import GlobalInterpretation, WorldSampler
from repro.storage import Database
from repro.workloads import WorkloadSpec, generate_workload


def test_full_pipeline(tmp_path):
    """Build -> validate -> project -> select -> product -> persist ->
    reload -> query (all four engines agree)."""
    builder = InstanceBuilder("lib")
    builder.children("lib", "book", ["B1", "B2"])
    builder.opf("lib", {("B1",): 0.25, ("B2",): 0.15, ("B1", "B2"): 0.5, (): 0.1})
    builder.children("B1", "author", ["A1"])
    builder.opf("B1", {("A1",): 0.8, (): 0.2})
    builder.children("B2", "author", ["A2"])
    builder.opf("B2", {("A2",): 0.5, (): 0.5})
    builder.leaf("A1", "name", ["h", "g"], {"h": 0.9, "g": 0.1})
    builder.leaf("A2", "name", vpf={"g": 1.0})
    bib = builder.build()
    assert lint_instance(bib) == []

    # Situation 1: project to authors, keep queryable.
    authors = ancestor_projection_local(bib, "lib.book.author")
    assert QueryEngine(authors).point("lib.book.author", "A1") == pytest.approx(
        QueryEngine(bib).point("lib.book.author", "A1")
    )

    # Situation 2: selection.
    sure = select_local(
        bib, ObjectCondition(PathExpression.parse("lib.book"), "B1")
    ).instance

    # Situation 3: product with a renamed second source.
    other = rename_objects(bib, {oid: f"2{oid}" for oid in bib.objects})
    combined = cartesian_product(sure, other, new_root="lib")
    combined.validate()

    # Persist and reload through the catalog.
    db = Database(tmp_path)
    db.register("combined", combined)
    db.save("combined")
    reloaded = Database(tmp_path).get("combined")

    # Situation 4: the probability an author exists — all engines agree.
    path = "lib.book.author"
    exact = QueryEngine(reloaded, strategy="enumerate").point(path, "A1")
    assert QueryEngine(reloaded, strategy="bayes").point(path, "A1") == (
        pytest.approx(exact)
    )
    sampled = QueryEngine(reloaded, strategy="sample", samples=4000, seed=0)
    assert sampled.point(path, "A1") == pytest.approx(exact, abs=0.04)
    # The combined instance is a tree again (disjoint components).
    assert QueryEngine(reloaded, strategy="local").point(path, "A1") == (
        pytest.approx(exact)
    )


def test_pxql_drives_same_pipeline(tmp_path):
    builder = InstanceBuilder("lib")
    builder.children("lib", "book", ["B1"], card=(0, 1))
    builder.opf("lib", {("B1",): 0.7, (): 0.3})
    builder.children("B1", "author", ["A1"], card=(0, 1))
    builder.opf("B1", {("A1",): 0.5, (): 0.5})
    builder.leaf("A1", "name", ["h"], {"h": 1.0})
    database = Database(tmp_path)
    database.register("bib", builder.build())
    it = Interpreter(database)
    it.execute("PROJECT lib.book.author FROM bib AS authors")
    it.execute("SAVE authors")

    fresh = Interpreter(Database(tmp_path))
    direct = fresh.execute("POINT lib.book.author : A1 IN authors").value
    assert direct == pytest.approx(0.35)


def test_workload_round_trip_and_engines(tmp_path):
    workload = generate_workload(
        WorkloadSpec(depth=3, branching=2, labeling="FR", seed=77)
    )
    pi = workload.instance
    path = tmp_path / "w.json"
    write_instance(pi, path)
    reloaded = read_instance(path)
    summary = summarize(reloaded)
    assert summary.objects == 15
    assert summary.is_tree

    # Sampling frequencies track a local point query.
    target = sorted(reloaded.weak.leaves())[0]
    graph = reloaded.weak.graph()
    labels, current = [], target
    while current != reloaded.root:
        (parent,) = graph.parents(current)
        labels.append(graph.label(parent, current))
        current = parent
    labels.reverse()
    path_expr = PathExpression(reloaded.root, tuple(labels))
    exact = QueryEngine(reloaded).point(path_expr, target)
    sampler = WorldSampler(reloaded, seed=5)
    from repro.semistructured.paths import evaluate_path

    hits = sum(
        1 for _ in range(3000)
        if target in evaluate_path(sampler.sample().graph, path_expr)
    )
    assert hits / 3000 == pytest.approx(exact, abs=0.05)


def test_pattern_probability_against_bn_existential():
    """A linear pattern equals the path existential query; the pattern DP,
    the BN engine and sampling must all agree on it."""
    rng = random.Random(3)
    from tests.helpers import random_tree_instance

    pi = random_tree_instance(rng, depth=2, max_children=2)
    labels = sorted(pi.weak.graph().labels)
    label_pair = (labels[0], labels[-1])
    pattern = PatternNode.root(
        PatternNode.child(label_pair[0], PatternNode.child(label_pair[1]))
    )
    path = PathExpression(pi.root, label_pair)
    exact = QueryEngine(pi, strategy="enumerate").exists(path)
    assert pattern_probability(pi, pattern) == pytest.approx(exact)
    estimate = estimate_pattern_probability(pi, pattern, samples=3000, seed=1)
    low, high = estimate.confidence_interval(z=3.5)
    assert low - 1e-9 <= exact <= high + 1e-9


def test_bn_marginals_on_generated_workload():
    workload = generate_workload(
        WorkloadSpec(depth=2, branching=2, labeling="SL", seed=5)
    )
    pi = workload.instance
    bn = PXMLBayesianNetwork(pi)
    worlds = GlobalInterpretation.from_local(pi)
    for oid in sorted(pi.objects):
        assert bn.prob_exists(oid) == pytest.approx(
            worlds.prob_object_exists(oid)
        ), oid
