"""Crash-consistent live shard rebalancing: plan, execute, resume.

Covers the migration protocol end to end: exact plan computation over
actual placements (overlay strays included), journaled two-phase
copy-then-cutover with a monotone layout epoch, resume-never-restart
after a mid-migration failure (in-process fault injection *and* a real
SIGKILL via the crash-sweep child), ``fsck --shards`` auditing of a
sharded root, the live router's write fence and epoch bump across
``resize(n)``, the self-healing watchdog, and the HTTP front door's
``/rebalance`` routes and typed-error status codes.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    FaultError,
    RebalanceError,
    RebalanceInProgress,
)
from repro.io.json_codec import dumps
from repro.paper import example52_instance, figure2_instance
from repro.resilience.crashsweep import (
    rebalance_placements,
    run_rebalance_cycle,
    spawn_child,
    verify_rebalance_recovery,
)
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.server import ShardedServer
from repro.server.http import error_payload
from repro.server.rebalance import (
    DEFAULT_VNODES,
    DirectoryShardAccess,
    Move,
    RebalanceJournal,
    Rebalancer,
    ShardManifest,
    build_ring,
    pending_rebalance,
    plan_rebalance,
    read_manifest,
    resume_rebalance,
    ring_owner,
    write_manifest,
)
from repro.storage.database import Database
from repro.storage.fsck import fsck_sharded_root
from repro.storage.journal import INSTANCE_SUFFIX


def ring_home(name: str, shards: int) -> int:
    positions, owners = build_ring(shards, DEFAULT_VNODES)
    return ring_owner(positions, owners, name)


def bib_reference() -> float:
    """Single-process answer to the stable probe over ``build_bib()``."""
    from repro.pxql.interpreter import Interpreter
    from tests.test_server_sharded import build_bib

    database = Database()
    database.register("bib", build_bib())
    return Interpreter(database=database).execute(
        "EXISTS R.book.author IN bib"
    ).value


def seeded_root(tmp_path, seed: int = 3):
    """A 2-shard root with the crash-sweep's deterministic placements."""
    placements = rebalance_placements(seed)
    write_manifest(tmp_path, ShardManifest(shards=2))
    access = DirectoryShardAccess(tmp_path)
    for position, name in enumerate(sorted(placements)):
        instance = (
            figure2_instance() if position % 2 else example52_instance()
        )
        access.store(placements[name], name, dumps(instance))
    return placements, access


def holders_of(root, name: str, shards: int = 3) -> list[int]:
    return [
        shard for shard in range(shards)
        if (root / f"shard-{shard}" / f"{name}{INSTANCE_SUFFIX}").is_file()
    ]


class TestPlan:
    def test_moves_are_exactly_the_ring_diff(self):
        placements = {
            f"n{i}": ring_home(f"n{i}", 2) for i in range(32)
        }
        plan = plan_rebalance(placements, old_shards=2, new_shards=3)
        moved = {move.name for move in plan.moves}
        for name, current in placements.items():
            changed = ring_home(name, 3) != current
            assert (name in moved) == changed
        for move in plan.moves:
            assert move.source == placements[move.name]
            assert move.dest == ring_home(move.name, 3)

    def test_overlay_stray_is_brought_home(self):
        name = "stray0"
        off_home = 1 - ring_home(name, 2)
        plan = plan_rebalance({name: off_home}, old_shards=2, new_shards=2)
        # Same shard count, but the name sits off its ring home: the
        # self-healing plan still moves it.
        if ring_home(name, 2) != off_home:
            assert plan.moves == (
                Move(name=name, source=off_home, dest=ring_home(name, 2)),
            )

    def test_bad_placement_is_refused(self):
        with pytest.raises(RebalanceError):
            plan_rebalance({"x": 5}, old_shards=2, new_shards=3)
        with pytest.raises(RebalanceError):
            plan_rebalance({}, old_shards=0, new_shards=3)

    def test_epoch_is_monotone(self):
        plan = plan_rebalance({}, old_shards=2, new_shards=3, from_epoch=4)
        assert plan.to_epoch == 5


class TestOfflineExecute:
    def test_execute_converges_and_bumps_epoch(self, tmp_path):
        placements, access = seeded_root(tmp_path)
        plan = plan_rebalance(placements, old_shards=2, new_shards=3)
        assert plan.moves, "the seeded placements must require moves"
        status = Rebalancer(tmp_path, access).execute(plan)
        assert status.state == "done"
        assert status.completed_moves == len(plan.moves)
        manifest = read_manifest(tmp_path)
        assert manifest is not None
        assert (manifest.shards, manifest.layout_epoch) == (3, 1)
        for name in placements:
            assert holders_of(tmp_path, name) == [ring_home(name, 3)]
        # Fully resolved: journal compacted, plan body gone.
        assert pending_rebalance(tmp_path) is None
        records, torn = RebalanceJournal(tmp_path).read()
        assert records == [] and not torn

    def test_interrupted_migration_is_resumed_not_restarted(self, tmp_path):
        placements, access = seeded_root(tmp_path)
        plan = plan_rebalance(placements, old_shards=2, new_shards=3)
        assert len(plan.moves) >= 2
        # Fail right after the first durable cutover: the journal holds
        # plan + move-begin + move-commit for move 1 only.
        spec = FaultSpec(
            site="rebalance.move.commit", kind="error", nth=1, times=1
        )
        with pytest.raises(FaultError):
            with FaultInjector(spec, seed=0):
                Rebalancer(tmp_path, access).execute(plan)
        pending = pending_rebalance(tmp_path)
        assert pending is not None and pending.to_epoch == 1
        committed = RebalanceJournal.committed_names(
            RebalanceJournal(tmp_path).read()[0]
        )
        assert committed == {plan.moves[0].name}
        status = resume_rebalance(tmp_path)
        assert status is not None and status.resumed
        manifest = read_manifest(tmp_path)
        assert manifest is not None and manifest.layout_epoch == 1
        for name in placements:
            assert holders_of(tmp_path, name) == [ring_home(name, 3)]
        assert resume_rebalance(tmp_path) is None  # nothing left pending

    def test_sigkill_mid_migration_then_resume(self, tmp_path):
        # A real power-cut: the crash-sweep child is SIGKILLed at the
        # cutover of the first move, then recovery must converge.
        root = tmp_path / "root"
        proc = spawn_child(
            root, "rebalance.move.commit", 1, seed=5, mode="rebalance"
        )
        assert proc.returncode == -9, proc.stderr
        ok, detail = verify_rebalance_recovery(root, seed=5)
        assert ok, detail


class TestFsckShards:
    def test_clean_root_is_clean(self, tmp_path):
        run_rebalance_cycle(tmp_path, seed=3)
        report = fsck_sharded_root(tmp_path)
        assert report.clean, [f.as_dict() for f in report.findings]
        assert report.checked_instances == len(rebalance_placements(3))

    def test_pending_migration_is_found_and_repaired(self, tmp_path):
        placements, access = seeded_root(tmp_path)
        plan = plan_rebalance(placements, old_shards=2, new_shards=3)
        spec = FaultSpec(
            site="rebalance.move.commit", kind="error", nth=1, times=1
        )
        with pytest.raises(FaultError):
            with FaultInjector(spec, seed=0):
                Rebalancer(tmp_path, access).execute(plan)
        check = fsck_sharded_root(tmp_path)
        codes = {f.code for f in check.findings}
        assert "FS132" in codes
        repaired = fsck_sharded_root(tmp_path, repair=True)
        assert not repaired.unrepaired, [
            f.as_dict() for f in repaired.unrepaired
        ]
        assert fsck_sharded_root(tmp_path).clean
        manifest = read_manifest(tmp_path)
        assert manifest is not None and manifest.shards == 3

    def test_duplicate_instance_is_flagged(self, tmp_path):
        run_rebalance_cycle(tmp_path, seed=3)
        name = sorted(rebalance_placements(3))[0]
        home = ring_home(name, 3)
        other = (home + 1) % 3
        source = tmp_path / f"shard-{home}" / f"{name}{INSTANCE_SUFFIX}"
        target_dir = tmp_path / f"shard-{other}"
        target_dir.mkdir(exist_ok=True)
        (target_dir / source.name).write_text(
            source.read_text(encoding="utf-8"), encoding="utf-8"
        )
        report = fsck_sharded_root(tmp_path)
        assert any(
            f.code == "FS133" and name in f.path for f in report.findings
        )

    def test_missing_shard_dir_and_bad_manifest(self, tmp_path):
        run_rebalance_cycle(tmp_path, seed=3)
        # Remove a shard directory the manifest names.
        victim = tmp_path / "shard-2"
        for child in victim.iterdir():
            child.unlink()
        victim.rmdir()
        report = fsck_sharded_root(tmp_path, repair=True)
        assert any(
            f.code == "FS134" and f.repaired for f in report.findings
        )
        assert victim.is_dir()
        # An undecodable manifest is refused, never guessed around.
        (tmp_path / "shards.json").write_text("{not json", encoding="utf-8")
        report = fsck_sharded_root(tmp_path)
        assert [f.code for f in report.findings] == ["FS130"]
        assert report.unrepaired

    def test_cli_shards_flag(self, tmp_path, capsys):
        from repro.storage.fsck import main

        run_rebalance_cycle(tmp_path, seed=3)
        assert main(["fsck", str(tmp_path), "--shards", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True


class TestLiveResize:
    def test_grow_serves_and_bumps_epoch(self, tmp_path):
        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1,
            queue_size=16, poll_s=0.005,
        ).start()
        try:
            from tests.test_server_sharded import build_bib

            bib = dumps(build_bib())
            names = [f"live{i}" for i in range(6)]
            for name in names:
                server.register_instance(name, bib, save=True)
            status = server.resize(3)
            assert status.state == "done"
            assert server.shards == 3
            health = server.health()
            assert health["layout_epoch"] == 1
            assert server.rebalance_status()["state"] == "done"
            listed = server.execute("LIST", timeout_s=60.0).value
            assert sorted(listed) == names
            reference = bib_reference()
            for name in names:
                value = server.execute(
                    f"EXISTS R.book.author IN {name}", timeout_s=60.0
                ).value
                assert value == pytest.approx(reference)
            # A fresh open with the new count adopts the manifest.
            server.stop(drain=True, timeout_s=15.0)
            reopened = ShardedServer(
                tmp_path, shards=3, workers_per_shard=1,
                queue_size=16, poll_s=0.005,
            ).start()
            try:
                listed = reopened.execute("LIST", timeout_s=60.0).value
                assert sorted(listed) == names
            finally:
                reopened.stop(drain=False, timeout_s=15.0)
        finally:
            server.stop(drain=False, timeout_s=15.0)

    def test_resize_rejects_bad_counts(self, tmp_path):
        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1,
            queue_size=16, poll_s=0.005,
        ).start()
        try:
            with pytest.raises(RebalanceError):
                server.resize(0)
        finally:
            server.stop(drain=False, timeout_s=15.0)

    def test_write_fence_is_a_typed_retryable_error(self, tmp_path):
        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1,
            queue_size=16, poll_s=0.005,
        ).start()
        try:
            from tests.test_server_sharded import build_bib

            server.register_instance("fenced", dumps(build_bib()), save=True)
            # Freeze the migration state a mid-copy move would install.
            with server._migration_lock:
                server._migration["fenced"] = (
                    Move(name="fenced", source=0, dest=1), "copying",
                )
            pending = server.submit("SAVE fenced")
            error = pending.error(10.0)
            assert isinstance(error, RebalanceInProgress)
            assert error.name == "fenced"
            with server._migration_lock:
                server._migration.clear()
            # Fence lifted: the same write goes through.
            assert server.submit("SAVE fenced").result(30.0) is not None
            assert server.metrics.counter("router.writes_fenced").value >= 1
        finally:
            server.stop(drain=False, timeout_s=15.0)


class TestWatchdog:
    def test_killed_shard_heals_without_manual_restart(self, tmp_path):
        import time

        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1,
            queue_size=16, poll_s=0.005,
            watchdog_interval_s=0.05,
        ).start()
        try:
            from tests.test_server_sharded import build_bib

            server.register_instance("wd", dumps(build_bib()), save=True)
            victim = server.owner("wd")
            server.kill_shard(victim)
            deadline = time.monotonic() + 30.0
            healed = False
            while time.monotonic() < deadline:
                if server.metrics.counter(
                    "router.watchdog_restarts"
                ).value >= 1 and server.ready():
                    healed = True
                    break
                time.sleep(0.05)
            assert healed, "watchdog never restarted the killed shard"
            value = server.execute(
                "EXISTS R.book.author IN wd", timeout_s=60.0
            ).value
            assert value == pytest.approx(bib_reference())
            assert server.metrics.counter(
                "router.shard_restarts"
            ).value >= 1
            assert server.metrics.counter(
                "router.watchdog_gave_up"
            ).value == 0
        finally:
            server.stop(drain=False, timeout_s=15.0)


class TestHttpRoutes:
    def test_error_payload_status_codes(self):
        status, body = error_payload(RebalanceInProgress("wait", name="x"))
        assert status == 503
        assert body["error"]["type"] == "RebalanceInProgress"
        status, body = error_payload(RebalanceError("already running"))
        assert status == 409

    def test_rebalance_routes_over_sockets(self, tmp_path):
        import asyncio
        import threading
        import time
        import urllib.error
        import urllib.request

        from repro.server import HttpFrontDoor

        server = ShardedServer(
            tmp_path, shards=2, workers_per_shard=1,
            queue_size=16, poll_s=0.005,
        ).start()
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        def run(coro):
            return asyncio.run_coroutine_threadsafe(coro, loop).result(30.0)

        front = HttpFrontDoor(server, port=0)
        run(front.start())
        base = f"http://127.0.0.1:{front.bound_port}"
        try:
            with urllib.request.urlopen(
                f"{base}/rebalance/status", timeout=10
            ) as response:
                payload = json.loads(response.read())
            assert payload["rebalance"]["state"] == "idle"

            request = urllib.request.Request(
                f"{base}/rebalance",
                data=json.dumps({"shards": 3}).encode("utf-8"),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 202
                accepted = json.loads(response.read())
            assert accepted["rebalance"]["requested_shards"] == 3

            deadline = time.monotonic() + 60.0
            state = ""
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{base}/rebalance/status", timeout=10
                ) as response:
                    snapshot = json.loads(response.read())["rebalance"]
                state = snapshot["state"]
                if state == "done":
                    break
                time.sleep(0.05)
            assert state == "done", snapshot
            assert snapshot["layout_epoch"] == 1
            assert snapshot["shards"] == 3

            bad = urllib.request.Request(
                f"{base}/rebalance",
                data=json.dumps({"shards": "many"}).encode("utf-8"),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=10)
            assert excinfo.value.code == 400
        finally:
            run(front.shutdown(drain_timeout_s=10.0))
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            loop.close()
            server.stop(drain=False, timeout_s=15.0)


class TestManifestCompatibility:
    def test_legacy_v1_manifest_parses_as_epoch_zero(self, tmp_path):
        (tmp_path / "shards.json").write_text(
            json.dumps({"shards": 2, "vnodes": 64}), encoding="utf-8"
        )
        manifest = read_manifest(tmp_path)
        assert manifest is not None
        assert manifest.layout_epoch == 0
        assert manifest.shards == 2

    def test_database_roundtrip_after_offline_rebalance(self, tmp_path):
        placements, access = seeded_root(tmp_path)
        plan = plan_rebalance(placements, old_shards=2, new_shards=3)
        Rebalancer(tmp_path, access).execute(plan)
        for name in placements:
            home = ring_home(name, 3)
            db = Database(tmp_path / f"shard-{home}")
            assert name in db.names()
            db.get(name)  # checksum-clean load
