"""Tests for the rewrite rules and the optimizer driver."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.engine import (
    CostModel,
    PlanBuilder,
    ProductNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    collapse_adjacent_projections,
    optimize,
    push_selection_below_projection,
    reorder_product_by_size,
)
from repro.semistructured.paths import PathExpression
from repro.storage.database import Database


PATH = PathExpression.parse("R.book.author")
OTHER = PathExpression.parse("R.book")


class TestCollapseAdjacentProjections:
    def test_identical_ancestor_projections_collapse(self):
        plan = PlanBuilder.scan("bib").project(PATH).project(PATH).build()
        collapsed = collapse_adjacent_projections(plan, None)
        assert collapsed == ProjectNode("ancestor", PATH, ScanNode("bib"))

    def test_descendant_collapse(self):
        plan = (
            PlanBuilder.scan("bib")
            .project(PATH, "descendant")
            .project(PATH, "descendant")
            .build()
        )
        assert collapse_adjacent_projections(plan, None) is not None

    def test_different_paths_do_not_collapse(self):
        plan = PlanBuilder.scan("bib").project(OTHER).project(PATH).build()
        assert collapse_adjacent_projections(plan, None) is None

    def test_different_kinds_do_not_collapse(self):
        plan = (
            PlanBuilder.scan("bib")
            .project(PATH, "descendant")
            .project(PATH, "ancestor")
            .build()
        )
        assert collapse_adjacent_projections(plan, None) is None

    def test_single_collapses_only_one_label_paths(self):
        short = PathExpression.parse("R.book")
        good = (
            PlanBuilder.scan("bib")
            .project(short, "single")
            .project(short, "single")
            .build()
        )
        assert collapse_adjacent_projections(good, None) is not None
        long = (
            PlanBuilder.scan("bib")
            .project(PATH, "single")
            .project(PATH, "single")
            .build()
        )
        assert collapse_adjacent_projections(long, None) is None


class TestPushSelectionBelowProjection:
    def test_same_path_selection_pushes(self):
        plan = PlanBuilder.scan("bib").project(PATH).select(PATH, "A1").build()
        pushed = push_selection_below_projection(plan, None)
        assert isinstance(pushed, ProjectNode)
        assert isinstance(pushed.child, SelectNode)
        assert pushed.child.child == ScanNode("bib")

    def test_value_selection_pushes(self):
        plan = (
            PlanBuilder.scan("bib")
            .project(PATH)
            .select(PATH, "A1", value="y")
            .build()
        )
        pushed = push_selection_below_projection(plan, None)
        assert pushed is not None
        assert pushed.child.value == "y"

    def test_other_path_does_not_push(self):
        plan = PlanBuilder.scan("bib").project(PATH).select(OTHER, "B1").build()
        assert push_selection_below_projection(plan, None) is None

    def test_cardinality_selection_does_not_push(self):
        plan = (
            PlanBuilder.scan("bib")
            .project(PATH)
            .select(PATH, "A1", card_label="x", card_bounds=(1, 2))
            .build()
        )
        assert push_selection_below_projection(plan, None) is None

    def test_non_ancestor_projection_does_not_push(self):
        plan = (
            PlanBuilder.scan("bib")
            .project(PATH, "descendant")
            .select(PATH, "A1")
            .build()
        )
        assert push_selection_below_projection(plan, None) is None


def _sized_database():
    db = Database()
    small = InstanceBuilder("S")
    small.children("S", "x", ["s1"])
    small.opf("S", {("s1",): 1.0})
    small.leaf("s1", "t", ["v"], {"v": 1.0})
    db.register("small", small.build())
    big = InstanceBuilder("B")
    big.children("B", "y", ["b1", "b2", "b3"])
    big.opf("B", {("b1", "b2", "b3"): 1.0})
    for leaf in ("b1", "b2", "b3"):
        big.leaf(leaf, "t", ["v"], {"v": 1.0})
    db.register("big", big.build())
    return db


class TestReorderProduct:
    def test_bigger_left_operand_swaps(self):
        cost = CostModel(_sized_database())
        plan = ProductNode(ScanNode("big"), ScanNode("small"), "r")
        swapped = reorder_product_by_size(plan, cost)
        assert swapped == ProductNode(ScanNode("small"), ScanNode("big"), "r")

    def test_already_ordered_stays(self):
        cost = CostModel(_sized_database())
        plan = ProductNode(ScanNode("small"), ScanNode("big"), "r")
        assert reorder_product_by_size(plan, cost) is None

    def test_default_root_is_pinned_before_swapping(self):
        cost = CostModel(_sized_database())
        plan = ProductNode(ScanNode("big"), ScanNode("small"))
        swapped = reorder_product_by_size(plan, cost)
        # The result keeps the root the un-swapped product would have had.
        assert swapped.new_root == "BxS"

    def test_no_cost_model_means_no_reorder(self):
        plan = ProductNode(ScanNode("big"), ScanNode("small"), "r")
        assert reorder_product_by_size(plan, None) is None


class TestOptimizer:
    def test_fixpoint_applies_rules_transitively(self):
        # select over double projection: collapse then push.
        plan = (
            PlanBuilder.scan("bib")
            .project(PATH)
            .project(PATH)
            .select(PATH, "A1")
            .build()
        )
        optimized, applied = optimize(plan)
        assert "collapse_adjacent_projections" in applied
        assert "push_selection_below_projection" in applied
        assert isinstance(optimized, ProjectNode)
        assert isinstance(optimized.child, SelectNode)

    def test_no_rules_fire_returns_same_plan(self):
        plan = PlanBuilder.scan("bib").select(PATH, "A1").build()
        optimized, applied = optimize(plan)
        assert optimized == plan
        assert applied == ()

    def test_query_node_children_are_optimized(self):
        plan = (
            PlanBuilder.scan("bib")
            .project(PATH)
            .project(PATH)
            .point(PATH, "A1")
            .build()
        )
        optimized, applied = optimize(plan)
        assert "collapse_adjacent_projections" in applied
        assert isinstance(optimized.child, ProjectNode)
        assert isinstance(optimized.child.child, ScanNode)
