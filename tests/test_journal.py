"""Unit tests for the catalog write-ahead journal, replay, and fsck."""

import json

import pytest

from repro.io.json_codec import (
    checksum_sidecar,
    content_checksum,
    dumps,
)
from repro.paper import example52_instance, figure2_instance
from repro.storage.database import Database, DatabaseError
from repro.storage.fsck import fsck_directory
from repro.storage.fsck import main as fsck_main
from repro.storage.journal import (
    Journal,
    quarantine_destination,
    quarantined_names,
    recover_directory,
)
from repro.storage.locking import GENERATION_NAME, read_generation


class TestJournalRecords:
    def test_begin_commit_roundtrip(self, tmp_path):
        journal = Journal(tmp_path)
        seq = journal.begin("save", "a", checksum="deadbeef")
        journal.commit(seq, "save", "a", generation=1)
        records, torn = journal.read()
        assert not torn
        assert [r.state for r in records] == ["begin", "commit"]
        assert records[0].checksum == "deadbeef"
        assert records[1].generation == 1
        assert journal.pending(records) == []

    def test_begin_without_commit_is_pending(self, tmp_path):
        journal = Journal(tmp_path)
        seq = journal.begin("drop", "a")
        pending = journal.pending()
        assert [r.seq for r in pending] == [seq]

    def test_abort_resolves_pending(self, tmp_path):
        journal = Journal(tmp_path)
        seq = journal.begin("save", "a")
        journal.abort(seq, "save", "a")
        assert journal.pending() == []

    def test_torn_tail_is_prefix_truncated(self, tmp_path):
        journal = Journal(tmp_path)
        seq = journal.begin("save", "a", checksum="x")
        journal.commit(seq, "save", "a", generation=1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "state": "beg')  # torn append
        records, torn = journal.read()
        assert torn
        assert len(records) == 2

    def test_corrupt_crc_stops_the_parse(self, tmp_path):
        journal = Journal(tmp_path)
        seq = journal.begin("save", "a")
        journal.commit(seq, "save", "a", generation=1)
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        fields = json.loads(lines[0])
        fields["name"] = "tampered"
        lines[0] = json.dumps(fields)  # crc now wrong
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        records, torn = journal.read()
        assert torn
        assert records == []

    def test_compaction_preserves_seq_and_generation(self, tmp_path):
        journal = Journal(tmp_path)
        for index in range(4):
            seq = journal.begin("save", f"n{index}")
            journal.commit(seq, "save", f"n{index}", generation=index + 1)
        assert journal.maybe_compact(threshold=4)
        records, torn = journal.read()
        assert not torn
        assert [r.state for r in records] == ["checkpoint"]
        assert records[0].generation == 4
        assert journal._next_seq(records) > 4  # seqs stay monotone

    def test_compaction_refuses_while_pending(self, tmp_path):
        journal = Journal(tmp_path)
        journal.begin("save", "a")
        assert not journal.maybe_compact(threshold=1)


class TestReplay:
    def test_torn_save_rolls_forward(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        # Simulate a crash after publishing the new payload but before
        # the sidecar/commit: journal a begin, write the data file,
        # leave the stale sidecar.
        payload = dumps(example52_instance())
        journal = Journal(tmp_path)
        journal.begin("save", "a", checksum=content_checksum(payload))
        path = tmp_path / "a.pxml.json"
        path.write_text(payload, encoding="utf-8")

        report = recover_directory(tmp_path)
        assert report.rolled_forward == 1
        reopened = Database(tmp_path)
        assert len(reopened.get("a")) == len(example52_instance())

    def test_torn_save_aborts_when_prestate_intact(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        journal = Journal(tmp_path)
        journal.begin("save", "a", checksum="never-published")

        report = recover_directory(tmp_path)
        assert report.aborted == 1
        assert len(Database(tmp_path).get("a")) == len(figure2_instance())

    def test_torn_drop_rolls_forward(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        journal = Journal(tmp_path)
        journal.begin("drop", "a")

        report = recover_directory(tmp_path)
        assert report.rolled_forward == 1
        assert not (tmp_path / "a.pxml.json").exists()
        assert not checksum_sidecar(tmp_path / "a.pxml.json").exists()

    def test_unexplainable_state_is_quarantined(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        journal = Journal(tmp_path)
        journal.begin("save", "a", checksum="what-was-journaled")
        path = tmp_path / "a.pxml.json"
        path.write_text("neither old nor new", encoding="utf-8")

        report = recover_directory(tmp_path)
        assert report.quarantined == 1
        assert "a" in quarantined_names(tmp_path)

    def test_generation_monotone_across_replay(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        generation_path = tmp_path / GENERATION_NAME
        before = read_generation(generation_path)
        # Roll the counter back, as if the bump never hit the disk.
        generation_path.write_text("0\n", encoding="utf-8")
        recover_directory(tmp_path)
        assert read_generation(generation_path) >= before

    def test_replay_is_idempotent(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        journal = Journal(tmp_path)
        journal.begin("drop", "a")
        first = recover_directory(tmp_path)
        second = recover_directory(tmp_path)
        assert first.changed
        assert not second.changed

    def test_open_replays_automatically(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        Journal(tmp_path).begin("drop", "a")
        reopened = Database(tmp_path)  # replay happens here
        assert reopened.names() == []
        assert reopened.journal is not None
        assert reopened.journal.pending() == []


class TestQuarantineNaming:
    def test_repeat_quarantines_never_collide(self, tmp_path):
        """Regression: two quarantines of one name used to overwrite."""
        db = Database(tmp_path, on_corrupt="quarantine")
        for round_ in range(3):
            db.register("a", figure2_instance(), replace=True)
            db.save("a")
            path = tmp_path / "a.pxml.json"
            path.write_text(
                path.read_text(encoding="utf-8") + " ", encoding="utf-8"
            )
            with pytest.raises(DatabaseError):
                db.reload("a")
        evidence = [
            p for p in (tmp_path / "quarantine").iterdir()
            if not p.name.endswith(".sha256")
        ]
        assert len(evidence) == 3
        assert quarantined_names(tmp_path) == ["a"]

    def test_destination_dedup_counter(self, tmp_path):
        first = quarantine_destination(tmp_path, "a.pxml.json", 7)
        assert first.name == "a.pxml.json.g7"
        first.write_text("x", encoding="utf-8")
        second = quarantine_destination(tmp_path, "a.pxml.json", 7)
        assert second.name == "a.pxml.json.g7-2"


class TestFsck:
    def _populate(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        db.register("b", example52_instance())
        db.save("b")
        return db

    def test_clean_catalog_passes(self, tmp_path):
        self._populate(tmp_path)
        report = fsck_directory(tmp_path)
        assert report.clean
        assert report.checked_instances == 2

    def test_checksum_mismatch_found_and_repaired(self, tmp_path):
        self._populate(tmp_path)
        path = tmp_path / "a.pxml.json"
        path.write_text(
            path.read_text(encoding="utf-8") + " ", encoding="utf-8"
        )
        report = fsck_directory(tmp_path)
        assert not report.clean
        assert any(f.code == "FS101" for f in report.findings)

        repaired = fsck_directory(tmp_path, repair=True)
        assert repaired.unrepaired == []
        assert fsck_directory(tmp_path).clean
        assert "a" in quarantined_names(tmp_path)

    def test_missing_sidecar_is_resigned(self, tmp_path):
        self._populate(tmp_path)
        checksum_sidecar(tmp_path / "a.pxml.json").unlink()
        report = fsck_directory(tmp_path, repair=True)
        assert any(
            f.code == "FS102" and f.repaired for f in report.findings
        )
        assert fsck_directory(tmp_path).clean
        # Repair re-signed (the payload was decodable), never quarantined.
        assert len(Database(tmp_path).get("a")) == len(figure2_instance())

    def test_orphan_sidecar_is_removed(self, tmp_path):
        self._populate(tmp_path)
        orphan = checksum_sidecar(tmp_path / "ghost.pxml.json")
        orphan.write_text("feed\n", encoding="utf-8")
        report = fsck_directory(tmp_path, repair=True)
        assert any(
            f.code == "FS103" and f.repaired for f in report.findings
        )
        assert not orphan.exists()

    def test_stale_tmp_is_removed(self, tmp_path):
        self._populate(tmp_path)
        (tmp_path / "a.pxml.json.tmp").write_text("{", encoding="utf-8")
        report = fsck_directory(tmp_path, repair=True)
        assert any(f.code == "FS110" for f in report.findings)
        assert fsck_directory(tmp_path).clean

    def test_pending_journal_record_is_replayed(self, tmp_path):
        self._populate(tmp_path)
        Journal(tmp_path).begin("drop", "b")
        report = fsck_directory(tmp_path)
        assert any(f.code == "FS121" for f in report.findings)
        repaired = fsck_directory(tmp_path, repair=True)
        assert repaired.unrepaired == []
        assert not (tmp_path / "b.pxml.json").exists()

    def test_cli_exit_codes(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert fsck_main(["fsck", str(tmp_path)]) == 0
        path = tmp_path / "a.pxml.json"
        path.write_text(
            path.read_text(encoding="utf-8") + " ", encoding="utf-8"
        )
        assert fsck_main(["fsck", str(tmp_path)]) == 1
        assert fsck_main(["fsck", str(tmp_path), "--repair"]) == 0
        assert fsck_main(["fsck", str(tmp_path), "--json"]) == 0
        out = capsys.readouterr().out
        assert '"clean": true' in out
