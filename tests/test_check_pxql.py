"""CHECK / EXPLAIN LINT / PROB guards / check-before-execute / lint admission."""

import pytest

from repro.check.diagnostics import CheckError
from repro.core.builder import InstanceBuilder
from repro.errors import EmptyResultError, PXMLError
from repro.pxql import Interpreter
from repro.pxql.parser import parse, parse_spanned
from repro.storage.database import Database, DatabaseError


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"], card=(1, 2))
    b.opf("R", {("B1",): 0.4, ("B2",): 0.2, ("B1", "B2"): 0.4})
    b.children("B1", "author", ["A1"], card=(1, 1))
    b.opf("B1", {("A1",): 1.0})
    b.children("B2", "author", ["A2"], card=(0, 1))
    b.opf("B2", {("A2",): 0.5, (): 0.5})
    b.leaf("A1", "name", ["hung", "getoor"], {"hung": 0.9, "getoor": 0.1})
    b.leaf("A2", "name", None, {"hung": 0.5, "getoor": 0.5})
    return b.build()


def build_sloppy():
    """Legal but warn-worthy: a potential child never chosen."""
    b = InstanceBuilder("S")
    b.children("S", "x", ["a", "b"])
    b.opf("S", {("a",): 1.0, ("a", "b"): 0.0})
    b.leaf("a", "t", ["v"], {"v": 1.0})
    b.leaf("b", "t", None, {"v": 1.0})
    return b.build()


def build_broken():
    """No coherent semantics: OPF mass outside the potential children."""
    b = InstanceBuilder("R")
    b.children("R", "x", ["a"])
    b.opf("R", {("a",): 0.5, ("ghost",): 0.5})
    b.leaf("a", "t", ["v"], {"v": 1.0})
    return b.build(validate=False)


@pytest.fixture
def interpreter():
    it = Interpreter(Database())
    it.database.register("bib", build_bib())
    return it


class TestParser:
    def test_check_statement_parses(self):
        from repro.pxql import ast

        statement = parse("CHECK SELECT R.book = B1 FROM bib")
        assert isinstance(statement, ast.CheckStatement)
        assert isinstance(statement.statement, ast.SelectStatement)

    def test_explain_lint_parses(self):
        from repro.pxql import ast

        statement = parse("EXPLAIN LINT PROJECT R.book FROM bib")
        assert isinstance(statement, ast.ExplainStatement)
        assert statement.lint and not statement.analyze

    def test_prob_guard_clause(self):
        statement = parse("SELECT R.book = B1 AND PROB >= 0.25 FROM bib")
        assert statement.prob_op == ">="
        assert statement.prob_bound == pytest.approx(0.25)

    def test_spans_cover_roles(self):
        text = "SELECT R.book = B1 AND PROB > 0.5 FROM bib"
        _, spans = parse_spanned(text)
        start, end = spans["oid"]
        assert text[start:end] == "B1"
        start, end = spans["source"]
        assert text[start:end] == "bib"
        start, end = spans["prob"]
        assert text[start:end] == "> 0.5"

    def test_syntax_error_carries_position(self):
        from repro.pxql.lexer import PXQLSyntaxError

        with pytest.raises(PXQLSyntaxError) as info:
            parse("SELECT R.book = B1 AND PROB ! 0.5 FROM bib")
        assert info.value.position is not None


class TestCheckStatement:
    def test_check_reports_without_executing(self, interpreter):
        result = interpreter.execute("CHECK PROJECT R.movie FROM bib AS out")
        assert any(d.code == "PX210" for d in result.value)
        # CHECK never executes: no result instance was registered.
        assert "out" not in interpreter.database.names()

    def test_check_clean_statement(self, interpreter):
        result = interpreter.execute("CHECK POINT R.book : B1 IN bib")
        assert [d for d in result.value if d.severity != "info"] == []

    def test_explain_lint_includes_plan_and_findings(self, interpreter):
        result = interpreter.execute("EXPLAIN LINT SELECT R.book = B1 FROM bib")
        assert "Scan(bib)" in result.text
        assert "error(s)" in result.text


class TestCheckBeforeExecute:
    def test_zero_probability_selection_blocked(self, interpreter):
        with pytest.raises(CheckError) as info:
            interpreter.execute("SELECT R.movie = M1 FROM bib")
        assert any(d.code == "PX220" for d in info.value.diagnostics)

    def test_warn_mode_records_but_runs(self):
        it = Interpreter(Database(), check="warn")
        it.database.register("bib", build_bib())
        result = it.execute("PROJECT R.movie FROM bib AS bare")
        assert result.instance_name == "bare"
        assert any(d.code == "PX210" for d in it.last_diagnostics)

    def test_off_mode_defers_to_runtime(self):
        it = Interpreter(Database(), check="off", strategy="naive")
        it.database.register("sloppy", build_sloppy())
        with pytest.raises(EmptyResultError):
            it.execute("SELECT S.x = b FROM sloppy")

    def test_checker_catches_what_runtime_would_raise(self):
        it = Interpreter(Database())
        it.database.register("sloppy", build_sloppy())
        with pytest.raises(CheckError) as info:
            it.execute("SELECT S.x = b FROM sloppy")
        assert any(d.code == "PX220" for d in info.value.diagnostics)

    def test_warnings_never_block(self, interpreter):
        result = interpreter.execute("PROJECT R.movie FROM bib AS bare")
        assert result.instance_name == "bare"

    def test_unknown_source_is_check_error(self, interpreter):
        with pytest.raises(PXMLError):
            interpreter.execute("SHOW ghost")


class TestProbGuard:
    @pytest.mark.parametrize("strategy", ["engine", "naive"])
    def test_guard_violation_raises(self, strategy):
        it = Interpreter(Database(), strategy=strategy, check="off")
        it.database.register("bib", build_bib())
        with pytest.raises(EmptyResultError):
            it.execute("SELECT R.book = B1 AND PROB > 0.99 FROM bib")

    @pytest.mark.parametrize("strategy", ["engine", "naive"])
    def test_guard_pass_through(self, strategy):
        it = Interpreter(Database(), strategy=strategy)
        it.database.register("bib", build_bib())
        result = it.execute("SELECT R.book = B1 AND PROB > 0.5 FROM bib AS s")
        assert result.instance_name == "s"

    def test_static_unsatisfiable_guard(self, interpreter):
        with pytest.raises(CheckError) as info:
            interpreter.execute("SELECT R.book = B1 AND PROB > 1.0 FROM bib")
        assert any(d.code == "PX225" for d in info.value.diagnostics)


class TestLintAdmission:
    def test_lint_database_rejects_broken(self):
        db = Database(validate="lint")
        with pytest.raises(DatabaseError) as info:
            db.register("broken", build_broken())
        assert "outside-pc" in str(info.value)

    def test_lint_database_admits_warnings(self):
        db = Database(validate="lint")
        db.register("sloppy", build_sloppy())
        assert "sloppy" in db.names()

    def test_default_database_admits_anything(self):
        Database().register("broken", build_broken())

    def test_reload_applies_admission(self, tmp_path):
        db = Database(tmp_path)
        db.register("bib", build_bib())
        db.save("bib")
        before = db.version("bib")
        instance = db.reload("bib")
        assert db.version("bib") > before
        assert instance.root == "R"

    def test_reload_requires_backing(self):
        with pytest.raises(DatabaseError):
            Database().reload("bib")

    def test_lazy_load_applies_admission(self, tmp_path):
        writer = Database(tmp_path)
        writer.register("broken", build_broken())
        writer.save("broken")
        reader = Database(tmp_path, validate="lint")
        with pytest.raises(DatabaseError):
            reader.get("broken")
