"""Whole-script PXQL dataflow pass (repro.check.script, PX311-PX314)."""

import pytest

from repro.check.script import (
    DEAD_RESULT,
    SHADOWED_RESULT,
    SHADOWED_TIMEOUT,
    USE_BEFORE_REGISTER,
    ScriptTracker,
    flow_of,
    parse_script,
    script_diagnostics,
)
from repro.core.builder import InstanceBuilder
from repro.pxql import Interpreter
from repro.pxql.parser import parse
from repro.storage.database import Database


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"], card=(1, 2))
    b.opf("R", {("B1",): 0.4, ("B2",): 0.2, ("B1", "B2"): 0.4})
    b.children("B1", "author", ["A1"], card=(1, 1))
    b.opf("B1", {("A1",): 1.0})
    b.children("B2", "author", ["A2"], card=(0, 1))
    b.opf("B2", {("A2",): 0.5, (): 0.5})
    b.leaf("A1", "name", ["hung", "getoor"], {"hung": 0.9, "getoor": 0.1})
    b.leaf("A2", "name", None, {"hung": 0.5, "getoor": 0.5})
    return b.build()


def codes(diagnostics):
    return [d.code for d in diagnostics]


def flow(text):
    return flow_of(parse(text))


class TestStatementFlow:
    def test_query_reads_source_and_defines_target(self):
        f = flow("PROJECT R.book FROM bib AS p")
        assert f.reads == ("bib",) and f.defines == ("p",)

    def test_probe_reads_without_defining(self):
        f = flow("EXISTS R.book IN bib")
        assert f.reads == ("bib",) and f.defines == ()

    def test_load_defines(self):
        f = flow('LOAD bib FROM "bib.json"')
        assert f.reads == () and f.defines == ("bib",)

    def test_save_and_drop_consume(self):
        assert flow("SAVE p").reads == ("p",)
        assert flow("DROP p").reads == ("p",)

    def test_check_and_plain_explain_never_execute(self):
        for text in ("CHECK PROJECT R.book FROM bib AS p",
                     "EXPLAIN PROJECT R.book FROM bib AS p"):
            f = flow(text)
            assert f.reads == () and f.defines == ()

    def test_analyze_and_profile_unwrap_to_inner_flow(self):
        for text in ("EXPLAIN ANALYZE PROJECT R.book FROM bib AS p",
                     "PROFILE PROJECT R.book FROM bib AS p"):
            f = flow(text)
            assert f.reads == ("bib",) and f.defines == ("p",)

    def test_timeout_wrapper_is_tracked(self):
        f = flow("PROJECT R.book FROM bib AS p WITH TIMEOUT 2")
        assert f.with_timeout
        assert f.reads == ("bib",) and f.defines == ("p",)

    def test_set_timeout_sets_and_clears(self):
        assert flow("SET TIMEOUT 5").sets_timeout
        assert flow("SET TIMEOUT 0").clears_timeout


class TestParseScript:
    def test_blank_and_comment_lines_skipped(self):
        script = parse_script(
            "# a comment\n\nEXISTS R.book IN bib\n\n# trailing\n")
        assert [s.line for s in script] == [3]
        assert script[0].statement is not None

    def test_unparseable_line_kept_for_alignment(self):
        script = parse_script("EXISTS R.book IN bib\nNOT A STATEMENT\n")
        assert [s.line for s in script] == [1, 2]
        assert script[1].statement is None


class TestScriptDiagnostics:
    def test_clean_pipeline_has_no_findings(self):
        assert script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS p\n"
            "EXISTS R.book IN p\n"
        ) == []

    def test_px311_use_before_register(self):
        found = script_diagnostics(
            "EXISTS R.book IN p\n"
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS p\n"
            "SAVE p\n"
        )
        assert codes(found) == [USE_BEFORE_REGISTER]
        assert found[0].severity == "error"
        assert "line 3" in found[0].message

    def test_never_registered_name_is_not_px311(self):
        # Unknown names are the statement pass's PX301; PX311 is only
        # the reordering case where the script *does* register the name.
        assert script_diagnostics("EXISTS R.book IN nowhere\n") == []

    def test_px312_dead_result(self):
        found = script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS p\n"
        )
        assert codes(found) == [DEAD_RESULT]
        assert "'p'" in found[0].message

    def test_save_keeps_a_result_live(self):
        assert script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS p\n"
            "SAVE p\n"
        ) == []

    def test_px313_shadowed_result(self):
        found = script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS p\n"
            "SELECT R.book = B1 FROM bib AS p\n"
            "EXISTS R.book IN p\n"
        )
        assert codes(found) == [SHADOWED_RESULT]
        assert "line 2" in found[0].message

    def test_rebinding_through_itself_is_not_shadowing(self):
        # ``SELECT ... FROM p AS p`` reads the old result before
        # re-registering the name: nothing is discarded.
        assert script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS p\n"
            "SELECT R.book = B1 FROM p AS p\n"
            "EXISTS R.book IN p\n"
        ) == []

    def test_px314_with_timeout_shadows_session_timeout(self):
        found = script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "SET TIMEOUT 5\n"
            "EXISTS R.book IN bib WITH TIMEOUT 2\n"
        )
        assert codes(found) == [SHADOWED_TIMEOUT]
        assert "line 2" in found[0].message

    def test_set_timeout_zero_clears_the_shadowing(self):
        assert script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "SET TIMEOUT 5\n"
            "SET TIMEOUT 0\n"
            "EXISTS R.book IN bib WITH TIMEOUT 2\n"
        ) == []

    def test_prefix_becomes_file_line_subject(self):
        found = script_diagnostics(
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS p\n",
            prefix="scripts/demo.pxql",
        )
        assert found[0].subject == "scripts/demo.pxql:2"

    def test_findings_sorted_by_line(self):
        found = script_diagnostics(
            "SET TIMEOUT 5\n"
            "EXISTS R.book IN bib WITH TIMEOUT 1\n"
            'LOAD bib FROM "bib.json"\n'
            "PROJECT R.book FROM bib AS dead\n"
        )
        assert codes(found) == [
            USE_BEFORE_REGISTER, SHADOWED_TIMEOUT, DEAD_RESULT,
        ]


class TestScriptTracker:
    def test_preview_flags_shadowing(self):
        tracker = ScriptTracker()
        tracker.observe(parse("PROJECT R.book FROM bib AS p"))
        found = tracker.preview(parse("SELECT R.book = B1 FROM bib AS p"))
        assert codes(found) == [SHADOWED_RESULT]

    def test_preview_is_quiet_after_a_read(self):
        tracker = ScriptTracker()
        tracker.observe(parse("PROJECT R.book FROM bib AS p"))
        tracker.observe(parse("EXISTS R.book IN p"))
        assert tracker.preview(
            parse("SELECT R.book = B1 FROM bib AS p")) == []

    def test_preview_flags_timeout_shadowing(self):
        tracker = ScriptTracker()
        tracker.observe(parse("SET TIMEOUT 5"))
        found = tracker.preview(
            parse("EXISTS R.book IN bib WITH TIMEOUT 1"))
        assert codes(found) == [SHADOWED_TIMEOUT]

    def test_preview_never_reports_forward_codes(self):
        # A preview cannot know the future: no PX311/PX312 guesses.
        tracker = ScriptTracker()
        assert tracker.preview(parse("PROJECT R.book FROM bib AS p")) == []


class TestInterpreterIntegration:
    @pytest.fixture
    def interpreter(self):
        it = Interpreter(Database())
        it.database.register("bib", build_bib())
        return it

    def test_check_previews_shadowing(self, interpreter):
        interpreter.execute("PROJECT R.book FROM bib AS p")
        result = interpreter.execute("CHECK SELECT R.book = B1 FROM bib AS p")
        assert SHADOWED_RESULT in codes(result.value)

    def test_explain_lint_previews_timeout_shadowing(self, interpreter):
        interpreter.execute("SET TIMEOUT 5")
        result = interpreter.execute(
            "EXPLAIN LINT EXISTS R.book IN bib WITH TIMEOUT 1")
        assert SHADOWED_TIMEOUT in codes(result.value)

    def test_reading_the_result_silences_the_preview(self, interpreter):
        interpreter.execute("PROJECT R.book FROM bib AS p")
        interpreter.execute("EXISTS R.book IN p")
        result = interpreter.execute("CHECK SELECT R.book = B1 FROM bib AS p")
        assert SHADOWED_RESULT not in codes(result.value)

    def test_only_executed_statements_enter_the_history(self, interpreter):
        # CHECK itself never executes: previewing twice must not count
        # the first preview as a registration of the name.
        interpreter.execute("CHECK PROJECT R.book FROM bib AS p")
        result = interpreter.execute("CHECK PROJECT R.book FROM bib AS p")
        assert SHADOWED_RESULT not in codes(result.value)
