"""Tests for the Monte-Carlo world sampler."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import CyclicModelError, SemanticsError
from repro.paper import figure2_instance
from repro.semantics.compatible import is_compatible
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semantics.sampling import (
    WorldSampler,
    estimate_existential_query,
    estimate_point_query,
    estimate_probability,
)


@pytest.fixture
def tree():
    builder = InstanceBuilder("r")
    builder.children("r", "l", ["a"], card=(0, 1))
    builder.opf("r", {(): 0.4, ("a",): 0.6})
    builder.children("a", "m", ["b"], card=(0, 1))
    builder.opf("a", {(): 0.5, ("b",): 0.5})
    builder.leaf("b", "t", ["x", "y"], {"x": 0.25, "y": 0.75})
    return builder.build()


class TestWorldSampler:
    def test_samples_are_compatible(self, tree):
        sampler = WorldSampler(tree, seed=1)
        for world in sampler.sample_many(50):
            assert is_compatible(world, tree.weak)

    def test_samples_from_dag(self):
        pi = figure2_instance()
        sampler = WorldSampler(pi, seed=2)
        for world in sampler.sample_many(25):
            assert is_compatible(world, pi.weak)

    def test_deterministic_with_seed(self, tree):
        a = WorldSampler(tree, seed=7).sample_many(10)
        b = WorldSampler(tree, seed=7).sample_many(10)
        assert a == b

    def test_frequencies_match_probabilities(self, tree):
        worlds = GlobalInterpretation.from_local(tree)
        sampler = WorldSampler(tree, seed=3)
        samples = sampler.sample_many(4000)
        for world, probability in worlds.support():
            frequency = sum(1 for s in samples if s == world) / len(samples)
            assert frequency == pytest.approx(probability, abs=0.03)

    def test_cyclic_instance_rejected(self):
        from repro.core.instance import ProbabilisticInstance
        from repro.core.weak_instance import WeakInstance

        weak = WeakInstance("a")
        weak.set_lch("a", "l", ["b"])
        weak.set_lch("b", "l", ["a"])
        with pytest.raises(CyclicModelError):
            WorldSampler(ProbabilisticInstance(weak))

    def test_missing_opf_rejected(self):
        from repro.core.instance import ProbabilisticInstance
        from repro.core.weak_instance import WeakInstance

        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        sampler = WorldSampler(ProbabilisticInstance(weak))
        with pytest.raises(SemanticsError):
            sampler.sample()


class TestEstimators:
    def test_estimate_matches_exact(self, tree):
        estimate = estimate_probability(
            tree, lambda w: "a" in w, samples=4000, seed=4
        )
        low, high = estimate.confidence_interval(z=3.5)
        assert low <= 0.6 <= high

    def test_point_estimate(self, tree):
        estimate = estimate_point_query(tree, "r.l.m", "b", samples=4000, seed=5)
        low, high = estimate.confidence_interval(z=3.5)
        assert low <= 0.3 <= high

    def test_existential_estimate_on_dag(self):
        pi = figure2_instance()
        exact = GlobalInterpretation.from_local(pi).prob_path_nonempty
        from repro.semistructured.paths import PathExpression

        path = PathExpression.parse("R.book.author.institution")
        estimate = estimate_existential_query(pi, path, samples=3000, seed=6)
        low, high = estimate.confidence_interval(z=3.5)
        # Guard against float drift pushing the exact value past 1.0.
        exact_value = min(exact(path), 1.0)
        assert low - 1e-9 <= exact_value <= high + 1e-9

    def test_stderr_shrinks_with_samples(self, tree):
        small = estimate_probability(tree, lambda w: "a" in w, samples=100, seed=7)
        large = estimate_probability(tree, lambda w: "a" in w, samples=10000, seed=7)
        assert large.stderr < small.stderr

    def test_zero_samples_rejected(self, tree):
        with pytest.raises(SemanticsError):
            estimate_probability(tree, lambda w: True, samples=0)

    def test_estimate_str(self, tree):
        estimate = estimate_probability(tree, lambda w: True, samples=10, seed=8)
        assert "n=10" in str(estimate)
        assert estimate.probability == 1.0
