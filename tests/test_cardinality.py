"""Unit tests for cardinality intervals."""

import pytest

from repro.core.cardinality import CardinalityInterval
from repro.errors import CardinalityError


class TestConstruction:
    def test_valid_interval(self):
        c = CardinalityInterval(1, 3)
        assert c.min == 1 and c.max == 3
        assert str(c) == "[1, 3]"

    def test_negative_min_rejected(self):
        with pytest.raises(CardinalityError):
            CardinalityInterval(-1, 2)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(CardinalityError):
            CardinalityInterval(3, 1)

    def test_exactly(self):
        assert CardinalityInterval.exactly(2) == CardinalityInterval(2, 2)

    def test_optional(self):
        assert CardinalityInterval.optional() == CardinalityInterval(0, 1)

    def test_required(self):
        assert CardinalityInterval.required() == CardinalityInterval(1, 1)

    def test_unconstrained(self):
        c = CardinalityInterval.unconstrained(5)
        assert c == CardinalityInterval(0, 5)

    def test_unconstrained_negative_rejected(self):
        with pytest.raises(CardinalityError):
            CardinalityInterval.unconstrained(-1)


class TestOperations:
    def test_membership(self):
        c = CardinalityInterval(1, 3)
        assert 1 in c and 2 in c and 3 in c
        assert 0 not in c and 4 not in c

    def test_intersect(self):
        a = CardinalityInterval(0, 3)
        b = CardinalityInterval(2, 5)
        assert a.intersect(b) == CardinalityInterval(2, 3)

    def test_disjoint_intersection_rejected(self):
        with pytest.raises(CardinalityError):
            CardinalityInterval(0, 1).intersect(CardinalityInterval(3, 4))

    def test_clamp_to(self):
        assert CardinalityInterval(1, 10).clamp_to(4) == CardinalityInterval(1, 4)

    def test_clamp_below_min_rejected(self):
        with pytest.raises(CardinalityError):
            CardinalityInterval(3, 5).clamp_to(2)

    def test_ordering(self):
        assert CardinalityInterval(0, 1) < CardinalityInterval(1, 1)

    def test_hashable(self):
        assert len({CardinalityInterval(0, 1), CardinalityInterval(0, 1)}) == 1
