"""Unit tests for potential child sets: PL(o, l), PC(o), hitting sets."""

from repro.core.cardinality import CardinalityInterval
from repro.core.potential import (
    count_potential_child_sets,
    count_potential_l_child_sets,
    hitting_sets,
    potential_child_sets,
    potential_child_sets_via_hitting,
    potential_l_child_sets,
    split_by_label,
)


class TestPotentialLChildSets:
    def test_paper_example32(self):
        # lch(B1, author) = {A1, A2}, card = [1, 2]
        sets = potential_l_child_sets({"A1", "A2"}, CardinalityInterval(1, 2))
        assert set(sets) == {
            frozenset({"A1"}),
            frozenset({"A2"}),
            frozenset({"A1", "A2"}),
        }

    def test_exact_cardinality(self):
        sets = potential_l_child_sets({"A1", "A2", "A3"}, CardinalityInterval(2, 2))
        assert all(len(s) == 2 for s in sets)
        assert len(sets) == 3

    def test_zero_min_includes_empty(self):
        sets = potential_l_child_sets({"X"}, CardinalityInterval(0, 1))
        assert frozenset() in sets

    def test_max_clamped_to_pool(self):
        sets = potential_l_child_sets({"X"}, CardinalityInterval(0, 99))
        assert set(sets) == {frozenset(), frozenset({"X"})}

    def test_unsatisfiable_min_gives_empty_family(self):
        assert potential_l_child_sets({"X"}, CardinalityInterval(2, 3)) == []

    def test_deterministic_order(self):
        a = potential_l_child_sets({"b", "a"}, CardinalityInterval(0, 2))
        b = potential_l_child_sets({"a", "b"}, CardinalityInterval(0, 2))
        assert a == b

    def test_count_matches_enumeration(self):
        card = CardinalityInterval(1, 3)
        sets = potential_l_child_sets({"a", "b", "c", "d"}, card)
        assert count_potential_l_child_sets(4, card) == len(sets)


class TestPotentialChildSets:
    def test_two_labels_product(self):
        lch = {"author": {"A1", "A2"}, "title": {"T1"}}
        cards = {
            "author": CardinalityInterval(1, 2),
            "title": CardinalityInterval(0, 1),
        }
        pc = set(potential_child_sets(lch, cards))
        # 3 author choices x 2 title choices.
        assert len(pc) == 6
        assert frozenset({"A1", "T1"}) in pc
        assert frozenset({"A2"}) in pc

    def test_no_labels_gives_empty_set_only(self):
        assert list(potential_child_sets({}, {})) == [frozenset()]

    def test_empty_lch_skipped(self):
        pc = list(potential_child_sets({"a": set()}, {"a": CardinalityInterval(0, 0)}))
        assert pc == [frozenset()]

    def test_count_matches_enumeration(self):
        lch = {"x": {"a", "b"}, "y": {"c", "d", "e"}}
        cards = {"x": CardinalityInterval(0, 2), "y": CardinalityInterval(1, 2)}
        assert count_potential_child_sets(lch, cards) == len(
            list(potential_child_sets(lch, cards))
        )

    def test_unconstrained_powerset_size(self):
        # The experiments' setting: b children, no constraint -> 2^b sets.
        lch = {"l": {f"c{i}" for i in range(5)}}
        cards = {"l": CardinalityInterval.unconstrained(5)}
        assert count_potential_child_sets(lch, cards) == 32


class TestSplitByLabel:
    def test_split(self):
        lch = {"author": {"A1", "A2"}, "title": {"T1"}}
        parts = split_by_label(frozenset({"A1", "T1"}), lch)
        assert parts == {"author": frozenset({"A1"}), "title": frozenset({"T1"})}

    def test_unknown_children_reported(self):
        parts = split_by_label(frozenset({"ghost"}), {"l": {"a"}})
        assert parts[""] == frozenset({"ghost"})


class TestHittingSets:
    def test_disjoint_families_pick_one_each(self):
        fam1 = [frozenset({"a"}), frozenset({"b"})]
        fam2 = [frozenset({"c"})]
        hits = list(hitting_sets([fam1, fam2]))
        assert len(hits) == 2
        for hit in hits:
            assert frozenset({"c"}) in hit

    def test_empty_family_list(self):
        assert list(hitting_sets([])) == [()]

    def test_literal_definition_agrees_with_product(self):
        # Under label-disjointness, the paper's Definition 3.6 and the
        # per-label product give the same PC(o).
        lch = {"author": {"A1", "A2"}, "title": {"T1"}}
        cards = {
            "author": CardinalityInterval(1, 2),
            "title": CardinalityInterval(0, 1),
        }
        via_product = set(potential_child_sets(lch, cards))
        via_hitting = potential_child_sets_via_hitting(lch, cards)
        assert via_product == via_hitting

    def test_shared_member_minimality(self):
        # When families overlap, a single shared pick can hit both.
        shared = frozenset({"s"})
        hits = list(hitting_sets([[shared, frozenset({"a"})], [shared]]))
        as_sets = [frozenset(h) for h in hits]
        assert frozenset({shared}) in as_sets
        # {a, s} is NOT minimal (s alone hits both), so it must be absent.
        assert frozenset({frozenset({"a"}), shared}) not in as_sets
