"""Tests for the PIXML interval-probability extension."""

import pytest

from repro.errors import DistributionError, ModelError, QueryError
from repro.paper import figure2_instance
from repro.pixml.intervals import ProbInterval
from repro.pixml.ipf import IntervalOPF, IntervalProbabilisticInstance
from repro.pixml.queries import interval_chain_probability, interval_point_query
from repro.core.builder import InstanceBuilder
from repro.core.distributions import TabularOPF


class TestProbInterval:
    def test_construction_and_membership(self):
        i = ProbInterval(0.2, 0.6)
        assert 0.2 in i and 0.4 in i and 0.6 in i
        assert 0.1 not in i
        assert i.width() == pytest.approx(0.4)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(DistributionError):
            ProbInterval(0.6, 0.2)
        with pytest.raises(DistributionError):
            ProbInterval(-0.1, 0.5)
        with pytest.raises(DistributionError):
            ProbInterval(0.5, 1.1)

    def test_point_and_vacuous(self):
        assert ProbInterval.point(0.3).is_point()
        assert ProbInterval.vacuous() == ProbInterval(0.0, 1.0)

    def test_product(self):
        product = ProbInterval(0.2, 0.5).product(ProbInterval(0.4, 0.8))
        assert product.lo == pytest.approx(0.08)
        assert product.hi == pytest.approx(0.4)

    def test_complement(self):
        assert ProbInterval(0.2, 0.5).complement() == ProbInterval(0.5, 0.8)

    def test_add_clamps(self):
        assert ProbInterval(0.7, 0.9).add(ProbInterval(0.5, 0.6)) == ProbInterval(
            1.0, 1.0
        )

    def test_intersect(self):
        assert ProbInterval(0.1, 0.5).intersect(ProbInterval(0.3, 0.9)) == ProbInterval(
            0.3, 0.5
        )

    def test_disjoint_intersection_rejected(self):
        with pytest.raises(DistributionError):
            ProbInterval(0.1, 0.2).intersect(ProbInterval(0.5, 0.6))

    def test_containment(self):
        assert ProbInterval(0.0, 1.0).contains_interval(ProbInterval(0.3, 0.4))
        assert not ProbInterval(0.3, 0.4).contains_interval(ProbInterval(0.0, 1.0))


class TestIntervalOPF:
    @pytest.fixture
    def iopf(self):
        return IntervalOPF({
            ("a",): ProbInterval(0.2, 0.5),
            ("b",): ProbInterval(0.1, 0.4),
            (): ProbInterval(0.2, 0.6),
        })

    def test_consistency(self, iopf):
        assert iopf.is_consistent()
        iopf.validate()

    def test_inconsistent_detected(self):
        bad = IntervalOPF({("a",): ProbInterval(0.8, 0.9), (): ProbInterval(0.5, 0.9)})
        assert not bad.is_consistent()
        with pytest.raises(DistributionError):
            bad.validate()

    def test_tighten_narrows(self, iopf):
        tightened = iopf.tighten()
        # lo'(a) = max(0.2, 1 - (0.4 + 0.6)) = 0.2; hi'(a) = min(0.5, 1 - 0.3) = 0.5
        assert tightened.interval(frozenset({"a"})).contains_interval(
            tightened.interval(frozenset({"a"}))
        )
        for child_set, interval in iopf.support():
            assert interval.contains_interval(tightened.interval(child_set))
        tightened.validate()

    def test_tighten_uses_sum_constraint(self):
        iopf = IntervalOPF({
            ("a",): ProbInterval(0.0, 1.0),
            (): ProbInterval.point(0.3),
        })
        tightened = iopf.tighten()
        assert tightened.interval(frozenset({"a"})) == ProbInterval(0.7, 0.7)

    def test_from_point_embedding(self):
        opf = TabularOPF({("a",): 0.6, (): 0.4})
        iopf = IntervalOPF.from_point(opf)
        assert iopf.interval(frozenset({"a"})).is_point()
        assert iopf.contains(opf)

    def test_contains_rejects_outside(self):
        iopf = IntervalOPF({("a",): ProbInterval(0.5, 0.6), (): ProbInterval(0.4, 0.5)})
        assert not iopf.contains(TabularOPF({("a",): 0.9, (): 0.1}))

    def test_marginal_inclusion_interval(self, iopf):
        marginal = iopf.marginal_inclusion("a")
        assert marginal == ProbInterval(0.2, 0.5)


class TestIntervalInstance:
    @pytest.fixture
    def interval_tree(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"], card=(0, 1))
        builder.opf("r", {(): 0.4, ("a",): 0.6})
        builder.children("a", "m", ["b"], card=(0, 1))
        builder.opf("a", {(): 0.5, ("b",): 0.5})
        builder.leaf("b", "t", ["x"], {"x": 1.0})
        pi = builder.build()
        ipi = IntervalProbabilisticInstance.from_point_instance(pi)
        return pi, ipi

    def test_point_embedding_round_trip(self, interval_tree):
        pi, ipi = interval_tree
        ipi.validate()
        assert ipi.contains_point_instance(pi)

    def test_widened_intervals_contain_point(self, interval_tree):
        pi, _ = interval_tree
        ipi = IntervalProbabilisticInstance(pi.weak.copy())
        ipi.set_iopf("r", IntervalOPF({
            (): ProbInterval(0.3, 0.5), ("a",): ProbInterval(0.5, 0.7),
        }))
        ipi.set_iopf("a", IntervalOPF({
            (): ProbInterval(0.4, 0.6), ("b",): ProbInterval(0.4, 0.6),
        }))
        ipi.validate()
        assert ipi.contains_point_instance(pi)

    def test_midpoint_instance_is_coherent(self, interval_tree):
        _, ipi = interval_tree
        mid = ipi.midpoint_instance()
        mid.validate()

    def test_iopf_on_leaf_rejected(self, interval_tree):
        _, ipi = interval_tree
        with pytest.raises(ModelError):
            ipi.set_iopf("b", IntervalOPF({(): ProbInterval.point(1.0)}))

    def test_missing_iopf_detected(self, interval_tree):
        pi, _ = interval_tree
        bare = IntervalProbabilisticInstance(pi.weak.copy())
        with pytest.raises(ModelError):
            bare.validate()


class TestIntervalQueries:
    @pytest.fixture
    def ipi(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"], card=(0, 1))
        builder.opf("r", {(): 0.4, ("a",): 0.6})
        builder.children("a", "m", ["b"], card=(0, 1))
        builder.opf("a", {(): 0.5, ("b",): 0.5})
        builder.leaf("b", "t", ["x"], {"x": 1.0})
        pi = builder.build()
        ipi = IntervalProbabilisticInstance(pi.weak.copy())
        ipi.set_iopf("r", IntervalOPF({
            (): ProbInterval(0.3, 0.5), ("a",): ProbInterval(0.5, 0.7),
        }))
        ipi.set_iopf("a", IntervalOPF({
            (): ProbInterval(0.4, 0.6), ("b",): ProbInterval(0.4, 0.6),
        }))
        return ipi

    def test_chain_interval(self, ipi):
        interval = interval_chain_probability(ipi, ["r", "a", "b"])
        assert interval == ProbInterval(0.5 * 0.4, 0.7 * 0.6)

    def test_root_chain_is_certain(self, ipi):
        assert interval_chain_probability(ipi, ["r"]) == ProbInterval.point(1.0)

    def test_chain_must_start_at_root(self, ipi):
        with pytest.raises(QueryError):
            interval_chain_probability(ipi, ["a", "b"])

    def test_point_query_interval(self, ipi):
        interval = interval_point_query(ipi, "r.l.m", "b")
        assert interval.lo == pytest.approx(0.5 * 0.4)
        assert interval.hi == pytest.approx(0.7 * 0.6)

    def test_point_query_wrong_path_zero(self, ipi):
        assert interval_point_query(ipi, "r.zz.m", "b") == ProbInterval.point(0.0)

    def test_point_instance_answer_inside_interval(self, ipi):
        # The true point answer (0.6 * 0.5 = 0.3) lies inside the bounds.
        interval = interval_point_query(ipi, "r.l.m", "b")
        assert 0.3 in interval


class TestIntervalExistential:
    def _point_tree(self):
        builder = InstanceBuilder("R")
        builder.children("R", "book", ["B1", "B2"])
        builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
        builder.children("B1", "author", ["A1"])
        builder.opf("B1", {("A1",): 0.8, (): 0.2})
        builder.children("B2", "author", ["A2"])
        builder.opf("B2", {("A2",): 0.6, (): 0.4})
        builder.leaf("A1", "t", ["x"], {"x": 1.0})
        builder.leaf("A2", "t", vpf={"x": 1.0})
        return builder.build()

    def test_point_embedding_is_exact(self):
        from repro.pixml.queries import interval_existential_query
        from repro.queries.point import existential_query

        pi = self._point_tree()
        exact = existential_query(pi, "R.book.author")
        ipi = IntervalProbabilisticInstance.from_point_instance(pi)
        interval = interval_existential_query(ipi, "R.book.author")
        assert interval.lo == pytest.approx(exact)
        assert interval.hi == pytest.approx(exact)

    def test_widened_intervals_contain_exact(self):
        from repro.pixml.queries import interval_existential_query
        from repro.queries.point import existential_query

        pi = self._point_tree()
        exact = existential_query(pi, "R.book.author")
        ipi = IntervalProbabilisticInstance(pi.weak.copy())
        for oid, opf in pi.interpretation.opf_items():
            widened = {}
            for child_set, p in opf.support():
                lo = max(0.0, p - 0.1)
                hi = min(1.0, p + 0.1)
                widened[child_set] = ProbInterval(lo, hi)
            ipi.set_iopf(oid, IntervalOPF(widened))
        interval = interval_existential_query(ipi, "R.book.author")
        assert interval.lo - 1e-9 <= exact <= interval.hi + 1e-9
        assert interval.width() > 0.0

    def test_empty_match_is_zero(self):
        from repro.pixml.queries import interval_existential_query

        pi = self._point_tree()
        ipi = IntervalProbabilisticInstance.from_point_instance(pi)
        assert interval_existential_query(ipi, "R.ghost") == ProbInterval.point(0.0)

    def test_zero_label_path_is_one(self):
        from repro.pixml.queries import interval_existential_query

        pi = self._point_tree()
        ipi = IntervalProbabilisticInstance.from_point_instance(pi)
        assert interval_existential_query(ipi, "R") == ProbInterval.point(1.0)

    def test_dag_rejected(self):
        from repro.pixml.queries import interval_existential_query

        ipi = IntervalProbabilisticInstance.from_point_instance(figure2_instance())
        with pytest.raises(QueryError):
            interval_existential_query(ipi, "R.book.author")
