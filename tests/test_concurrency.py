"""Thread-safety of the shared core: caches, metrics, tracer, breaker,
catalog, and the cross-process file lock.

Each test hammers one component from many threads and then checks an
exact invariant — counters that reconcile, a catalog that stayed
consistent, exactly one half-open probe — because "no crash" alone
would pass for code that silently tears state.
"""

from __future__ import annotations

import contextvars
import json
import threading

import pytest

from repro.engine.cache import LRUCache
from repro.engine.executor import Engine
from repro.errors import LockTimeout
from repro.io.json_codec import read_instance
from repro.obs.export import append_bench_records
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.paper import figure2_instance
from repro.pxql.parser import parse
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.storage.database import Database, DatabaseError
from repro.storage.locking import (
    CATALOG_LOCK_NAME,
    FileLock,
    bump_generation,
    read_generation,
)


def run_threads(count: int, target, *args) -> list[BaseException]:
    """Run ``target(index, *args)`` on ``count`` threads; collect errors.

    Thread targets run inside a copy of the caller's context, so ambient
    installations (fault injectors) propagate as the server's workers
    would see them.
    """
    errors: list[BaseException] = []
    context = contextvars.copy_context()

    def wrap(index: int) -> None:
        try:
            contextvars.Context.run(context.copy(), target, index, *args)
        except BaseException as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
class TestLRUCacheContention:
    THREADS = 8
    OPS = 400

    def test_counters_reconcile_under_contention(self):
        cache = LRUCache(capacity=32)

        def hammer(index: int) -> None:
            for op in range(self.OPS):
                key = (index * op) % 48  # collisions and evictions alike
                if op % 3 == 0:
                    cache.put(key, (key, index, op))
                else:
                    value = cache.get(key)
                    if value is not None:
                        # An entry is stored and read atomically: a torn
                        # write would break the key == value[0] pairing.
                        assert value[0] == key

        errors = run_threads(self.THREADS, hammer)
        assert errors == []
        stats = cache.stats
        assert stats.gets == stats.hits + stats.misses
        assert stats.gets == self.THREADS * self.OPS - sum(
            1 for op in range(self.OPS) if op % 3 == 0
        ) * self.THREADS
        assert stats.size <= cache.capacity

    @pytest.mark.parametrize("copy_on_hit", [True, False])
    def test_engine_caches_under_concurrent_queries(self, copy_on_hit):
        database = Database()
        database.register("bib", figure2_instance())
        engine = Engine(database, copy_on_hit=copy_on_hit)
        statement = parse("EXISTS R.book.author IN bib")
        reference = engine.execute_statement(statement).value

        def query(index: int) -> None:
            for _ in range(10):
                result = engine.execute_statement(statement)
                assert result.value == pytest.approx(reference)

        errors = run_threads(self.THREADS, query)
        assert errors == []
        for name, stats in engine.cache_stats.items():
            assert stats["gets"] == stats["hits"] + stats["misses"], name


# ----------------------------------------------------------------------
# Metrics and tracer
# ----------------------------------------------------------------------
class TestObsThreadSafety:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def bump(index: int) -> None:
            for _ in range(2000):
                registry.counter("hits").inc()
                registry.gauge("level").set(float(index))
                registry.histogram("lat").observe(0.001 * index)

        errors = run_threads(8, bump)
        assert errors == []
        assert registry.value("hits") == 8 * 2000
        assert registry.get("lat").count == 8 * 2000

    def test_shared_tracer_keeps_span_trees_per_thread(self):
        tracer = Tracer(capacity=4096)

        def trace(index: int) -> None:
            for op in range(50):
                with tracer.span(f"root.{index}", thread=index):
                    with tracer.span(f"child.{index}.{op}", thread=index):
                        pass

        errors = run_threads(8, trace)
        assert errors == []
        roots = tracer.roots()
        assert len(roots) == 8 * 50
        for root in roots:
            # Thread-local stacks: a root's children always belong to
            # the thread that opened the root — interleaving would mix
            # thread tags within one tree.
            tags = {span.attributes["thread"] for span in root.walk()}
            assert len(tags) == 1


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestBreakerHalfOpenRace:
    def test_exactly_one_probe_in_half_open(self):
        """Regression: two threads hitting a cooled-down open breaker
        simultaneously must not both be admitted as probes."""
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 2.0  # past the cool-down: next allow() opens the probe

        barrier = threading.Barrier(8)
        admitted: list[int] = []
        lock = threading.Lock()

        def race(index: int) -> None:
            barrier.wait()
            if breaker.allow():
                with lock:
                    admitted.append(index)

        errors = run_threads(8, race)
        assert errors == []
        assert len(admitted) == 1
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_expiry_prevents_wedging(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 2.0
        assert breaker.allow()  # probe granted, outcome never recorded
        assert not breaker.allow()
        clock[0] = 4.0  # the prober died; the slot must expire
        assert breaker.allow()


# ----------------------------------------------------------------------
# File lock and generation counter
# ----------------------------------------------------------------------
class TestFileLock:
    def test_mutual_exclusion_between_lock_instances(self, tmp_path):
        path = tmp_path / CATALOG_LOCK_NAME
        counter = {"value": 0}

        def bump(index: int) -> None:
            lock = FileLock(path, timeout_s=5.0, poll_s=0.001)
            for _ in range(25):
                with lock:
                    current = counter["value"]
                    counter["value"] = current + 1

        errors = run_threads(8, bump)
        assert errors == []
        assert counter["value"] == 8 * 25

    def test_timeout_is_typed_and_names_the_path(self, tmp_path):
        path = tmp_path / CATALOG_LOCK_NAME
        holder = FileLock(path)
        holder.acquire()
        try:
            contender = FileLock(path, timeout_s=0.05, poll_s=0.005)
            with pytest.raises(LockTimeout) as excinfo:
                contender.acquire()
            assert str(path) in str(excinfo.value)
        finally:
            holder.release()

    def test_reentrant_for_the_holding_thread(self, tmp_path):
        lock = FileLock(tmp_path / CATALOG_LOCK_NAME)
        with lock:
            with lock:
                assert lock.held
        assert not lock.held

    def test_stale_holder_metadata_is_detected(self, tmp_path):
        path = tmp_path / CATALOG_LOCK_NAME
        # A crashed holder leaves its metadata behind (a clean release
        # truncates the file); the flock itself died with the process.
        path.write_text(
            json.dumps({"pid": 99999999, "host": "ghost", "acquired_at": 0}),
            encoding="utf-8",
        )
        lock = FileLock(path)
        with lock:
            pass
        assert lock.stale_reclaims == 1

    def test_generation_counter_is_monotone(self, tmp_path):
        path = tmp_path / "catalog.generation"
        assert read_generation(path) == 0
        assert bump_generation(path) == 1
        assert bump_generation(path) == 2
        assert read_generation(path) == 2


# ----------------------------------------------------------------------
# Database
# ----------------------------------------------------------------------
class TestDatabaseConcurrency:
    def test_register_save_drop_from_many_threads(self, tmp_path):
        database = Database(tmp_path)
        database.register("bib", figure2_instance())
        database.save("bib")

        def hammer(index: int) -> None:
            name = f"copy{index}"
            for op in range(10):
                database.register(name, figure2_instance(), replace=True)
                database.save(name)
                assert database.get("bib") is not None
                if op % 3 == 2:
                    try:
                        database.drop(name)
                    except DatabaseError:
                        pass  # racing drop of the same name

        errors = run_threads(8, hammer)
        assert errors == []
        # The catalog must reload cleanly: every surviving file passes
        # its checksum, and the lock is not wedged.
        fresh = Database(tmp_path)
        for name in fresh.names():
            fresh.get(name)
        with FileLock(tmp_path / CATALOG_LOCK_NAME, timeout_s=1.0):
            pass
        assert fresh.generation() > 0

    def test_items_and_save_all_iterate_snapshots(self, tmp_path):
        database = Database(tmp_path)
        for index in range(12):
            database.register(f"base{index}", figure2_instance())
        stop = threading.Event()

        def churn(index: int) -> None:
            count = 0
            while not stop.is_set():
                name = f"churn{index}_{count % 4}"
                database.register(name, figure2_instance(), replace=True)
                count += 1
                try:
                    database.drop(name)
                except DatabaseError:
                    pass

        def iterate(index: int) -> None:
            try:
                for _ in range(6):
                    seen = [name for name, _ in database.items()]
                    assert len(seen) >= 12  # the stable names never vanish
                    database.save_all()
            finally:
                stop.set()

        errors = run_threads(
            4, lambda i: churn(i) if i else iterate(i)
        )
        stop.set()
        assert errors == []

    def test_generation_moves_with_saves_and_drops(self, tmp_path):
        database = Database(tmp_path)
        database.register("bib", figure2_instance())
        start = database.generation()
        database.save("bib")
        after_save = database.generation()
        assert after_save == start + 1
        database.drop("bib")
        assert database.generation() == after_save + 1


# ----------------------------------------------------------------------
# Bench-record appending (the read-modify-write satellite)
# ----------------------------------------------------------------------
class TestBenchRecordAppend:
    def test_concurrent_appends_lose_nothing(self, tmp_path):
        target = tmp_path / "bench_records.json"

        def append(index: int) -> None:
            for op in range(10):
                append_bench_records(
                    [{"operation": "probe", "thread": index, "op": op}],
                    path=target,
                )

        errors = run_threads(8, append)
        assert errors == []
        records = json.loads(target.read_text(encoding="utf-8"))
        assert len(records) == 8 * 10
        seen = {(r["thread"], r["op"]) for r in records}
        assert len(seen) == 8 * 10

    def test_non_array_content_is_refused(self, tmp_path):
        target = tmp_path / "bench_records.json"
        target.write_text('{"not": "a list"}', encoding="utf-8")
        with pytest.raises(ValueError):
            append_bench_records([{"operation": "probe"}], path=target)


# ----------------------------------------------------------------------
# Fault injector: barrier faults and thread safety
# ----------------------------------------------------------------------
class TestInjectorConcurrency:
    def test_barrier_fault_rendezvouses_threads(self):
        injector = FaultInjector(
            FaultSpec(
                site="lock.cache",
                kind="barrier",
                parties=4,
                times=None,
                delay_s=2.0,
            )
        )
        cache = LRUCache(capacity=8)
        release_order: list[int] = []
        lock = threading.Lock()

        def touch(index: int) -> None:
            with injector:
                cache.put(index, index)
            with lock:
                release_order.append(index)

        errors = run_threads(4, touch)
        assert errors == []
        assert len(release_order) == 4
        assert injector.fired("lock.cache") == 4

    def test_event_log_is_consistent_under_threads(self):
        injector = FaultInjector(
            FaultSpec(site="lock.cache", kind="slow", delay_s=0.0, times=None)
        )
        cache = LRUCache(capacity=8)

        def touch(index: int) -> None:
            with injector:
                for op in range(50):
                    cache.get(op)

        errors = run_threads(8, touch)
        assert errors == []
        assert injector.fired("lock.cache") == 8 * 50

    def test_verify_instances_round_trip_after_contention(self, tmp_path):
        """End-to-end: saved-under-contention files decode standalone."""
        database = Database(tmp_path)
        database.register("bib", figure2_instance())

        def save(index: int) -> None:
            for _ in range(5):
                database.save("bib")

        errors = run_threads(6, save)
        assert errors == []
        loaded = read_instance(tmp_path / "bib.pxml.json")
        assert len(loaded) == len(figure2_instance())
