"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.paper import example52_instance, figure1_instance, figure2_instance


@pytest.fixture
def fig1():
    """The Figure 1 semistructured instance."""
    return figure1_instance()


@pytest.fixture
def fig2():
    """The Figure 2 probabilistic instance."""
    return figure2_instance()


@pytest.fixture
def ex52():
    """The Example 5.2 selection instance."""
    return example52_instance()
