"""Tests for the update operations."""

import pytest

from repro.algebra.updates import (
    assert_child,
    insert_child,
    remove_object,
    retract_child,
    reweight_opf,
    set_value,
)
from repro.core.builder import InstanceBuilder
from repro.errors import AlgebraError, EmptyResultError
from repro.semantics.global_interpretation import GlobalInterpretation


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.5})
    builder.children("B1", "author", ["A1", "A2"])
    builder.opf("B1", {("A1",): 0.5, ("A2",): 0.2, ("A1", "A2"): 0.3})
    builder.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    builder.leaf("A2", "name", vpf={"x": 1.0})
    builder.leaf("B2", "isbn", ["n1"], {"n1": 1.0})
    return builder.build()


class TestAssertChild:
    def test_child_becomes_certain(self, tree):
        updated = assert_child(tree, "R", "B1")
        updated.validate()
        worlds = GlobalInterpretation.from_local(updated)
        assert worlds.prob_object_exists("B1") == pytest.approx(1.0)

    def test_equals_global_conditioning_for_certain_parent(self, tree):
        # The root always exists, so the local rewrite IS the global
        # conditional (Definition 5.6 with condition R.book = B1).
        updated = assert_child(tree, "R", "B1")
        reference = GlobalInterpretation.from_local(tree).condition(
            lambda w: "B1" in w.children("R")
        )
        assert GlobalInterpretation.from_local(updated).is_close_to(reference)

    def test_uncertain_parent_keeps_absence_mass(self, tree):
        # B1 exists with p=0.8; asserting A1 in c(B1) must not change that.
        updated = assert_child(tree, "B1", "A1")
        worlds = GlobalInterpretation.from_local(updated)
        assert worlds.prob_object_exists("B1") == pytest.approx(0.8)
        # But given B1, A1 is now certain.
        joint = worlds.event_probability(lambda w: "B1" in w and "A1" in w)
        assert joint == pytest.approx(0.8)

    def test_non_potential_child_rejected(self, tree):
        with pytest.raises(AlgebraError):
            assert_child(tree, "R", "A1")

    def test_input_unchanged(self, tree):
        before = tree.opf("R").prob(frozenset({"B2"}))
        assert_child(tree, "R", "B1")
        assert tree.opf("R").prob(frozenset({"B2"})) == before


class TestRetractChild:
    def test_child_disappears(self, tree):
        updated = retract_child(tree, "R", "B1")
        updated.validate()
        assert "B1" not in updated
        # B1's whole subtree became unreachable and was pruned.
        assert "A1" not in updated
        assert updated.interpretation.opf("B1") is None

    def test_probabilities_renormalized(self, tree):
        updated = retract_child(tree, "R", "B1")
        worlds = GlobalInterpretation.from_local(updated)
        # Only the {B2} entry survives: B2 now certain.
        assert worlds.prob_object_exists("B2") == pytest.approx(1.0)

    def test_shared_leaf_not_pruned(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["a", "b"], card=(0, 2))
        builder.opf("R", {("a",): 0.3, ("b",): 0.3, ("a", "b"): 0.4})
        builder.children("a", "m", ["z"], card=(1, 1))
        builder.opf("a", {("z",): 1.0})
        builder.children("b", "m", ["z"], card=(1, 1))
        builder.opf("b", {("z",): 1.0})
        builder.leaf("z", "t", ["v"], {"v": 1.0})
        pi = builder.build()
        updated = retract_child(pi, "R", "a")
        # z stays reachable via b.
        assert "z" in updated
        assert "a" not in updated

    def test_mandatory_child_rejected(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["a"], card=(1, 1))
        builder.opf("R", {("a",): 1.0})
        builder.leaf("a", "t", ["v"], {"v": 1.0})
        with pytest.raises(EmptyResultError):
            retract_child(builder.build(), "R", "a")


class TestSetValue:
    def test_point_mass(self, tree):
        updated = set_value(tree, "A1", "y")
        assert updated.vpf("A1").prob("y") == 1.0
        updated.validate()

    def test_contradicting_value_rejected(self, tree):
        with pytest.raises(EmptyResultError):
            set_value(tree, "A2", "y")  # A2 is certainly "x"

    def test_valueless_object_rejected(self, tree):
        with pytest.raises(AlgebraError):
            set_value(tree, "R", "x")


class TestReweight:
    def test_likelihood_applied_and_normalized(self, tree):
        # Prefer child sets containing A1 by a factor of 2.
        updated = reweight_opf(
            tree, "B1", lambda c: 2.0 if "A1" in c else 1.0
        )
        opf = updated.opf("B1")
        total = sum(p for _, p in opf.support())
        assert total == pytest.approx(1.0)
        # (0.5*2 + 0.3*2 + 0.2) -> A1 marginal = 1.6/1.8.
        assert opf.marginal_inclusion("A1") == pytest.approx(1.6 / 1.8)

    def test_annihilating_likelihood_rejected(self, tree):
        with pytest.raises(EmptyResultError):
            reweight_opf(tree, "B1", lambda c: 0.0)

    def test_negative_likelihood_rejected(self, tree):
        with pytest.raises(AlgebraError):
            reweight_opf(tree, "B1", lambda c: -1.0)


class TestInsertChild:
    def test_marginal_is_inclusion_probability(self, tree):
        updated = insert_child(tree, "R", "book", "B3", 0.25)
        updated.validate()
        assert updated.opf("R").marginal_inclusion("B3") == pytest.approx(0.25)

    def test_existing_marginals_untouched(self, tree):
        updated = insert_child(tree, "R", "book", "B3", 0.25)
        assert updated.opf("R").marginal_inclusion("B1") == pytest.approx(0.8)

    def test_probability_one_child_always_present(self, tree):
        updated = insert_child(tree, "R", "book", "B3", 1.0)
        worlds = GlobalInterpretation.from_local(updated)
        assert worlds.prob_object_exists("B3") == pytest.approx(1.0)

    def test_duplicate_id_rejected(self, tree):
        with pytest.raises(AlgebraError):
            insert_child(tree, "R", "book", "B1", 0.5)

    def test_bad_probability_rejected(self, tree):
        with pytest.raises(AlgebraError):
            insert_child(tree, "R", "book", "B3", 1.5)


class TestRemoveObject:
    def test_object_and_subtree_gone(self, tree):
        updated = remove_object(tree, "B1")
        updated.validate()
        assert "B1" not in updated
        assert "A1" not in updated and "A2" not in updated

    def test_distribution_conditioned(self, tree):
        updated = remove_object(tree, "B1")
        worlds = GlobalInterpretation.from_local(updated)
        assert worlds.prob_object_exists("B2") == pytest.approx(1.0)

    def test_remove_shared_child_conditions_all_parents(self):
        builder = InstanceBuilder("R")
        builder.children("R", "l", ["a", "b"], card=(2, 2))
        builder.opf("R", {("a", "b"): 1.0})
        builder.children("a", "m", ["z"], card=(0, 1))
        builder.opf("a", {("z",): 0.5, (): 0.5})
        builder.children("b", "m", ["z"], card=(0, 1))
        builder.opf("b", {("z",): 0.4, (): 0.6})
        builder.leaf("z", "t", ["v"], {"v": 1.0})
        pi = builder.build()
        updated = remove_object(pi, "z")
        updated.validate()
        assert "z" not in updated
        assert updated.opf("a").prob(frozenset()) == pytest.approx(1.0)
        assert updated.opf("b").prob(frozenset()) == pytest.approx(1.0)

    def test_root_removal_rejected(self, tree):
        with pytest.raises(AlgebraError):
            remove_object(tree, "R")

    def test_unknown_object_rejected(self, tree):
        with pytest.raises(AlgebraError):
            remove_object(tree, "GHOST")
