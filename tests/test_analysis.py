"""Tests for the analysis utilities."""

import math
import random

import pytest

from repro.analysis import (
    existence_probability,
    expected_size,
    kl_divergence,
    local_entropy_total,
    opf_entropy,
    summarize,
    total_variation,
    vpf_entropy,
    world_entropy,
)
from repro.core.builder import InstanceBuilder
from repro.errors import SemanticsError
from repro.paper import figure2_instance
from repro.semantics.global_interpretation import GlobalInterpretation

from tests.helpers import random_tree_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("r")
    builder.children("r", "l", ["a", "b"])
    builder.opf("r", {("a",): 0.5, ("b",): 0.25, ("a", "b"): 0.25})
    builder.leaf("a", "t", ["x", "y"], {"x": 0.5, "y": 0.5})
    builder.leaf("b", "t", vpf={"x": 1.0})
    return builder.build()


class TestEntropies:
    def test_opf_entropy(self, tree):
        # H(0.5, 0.25, 0.25) = 1.5 bits.
        assert opf_entropy(tree, "r") == pytest.approx(1.5)

    def test_vpf_entropy(self, tree):
        assert vpf_entropy(tree, "a") == pytest.approx(1.0)
        assert vpf_entropy(tree, "b") == 0.0

    def test_point_mass_entropy_zero(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"], card=(1, 1))
        builder.opf("r", {("a",): 1.0})
        builder.leaf("a", "t", ["x"], {"x": 1.0})
        pi = builder.build()
        assert opf_entropy(pi, "r") == 0.0
        assert world_entropy(pi) == 0.0

    def test_missing_function_raises(self, tree):
        with pytest.raises(SemanticsError):
            opf_entropy(tree, "a")
        with pytest.raises(SemanticsError):
            vpf_entropy(tree, "r")

    def test_world_entropy_bounded_by_local_total(self, tree):
        assert world_entropy(tree) <= local_entropy_total(tree) + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_bound_on_random_trees(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        assert world_entropy(pi) <= local_entropy_total(pi) + 1e-9


class TestSizeAndExistence:
    def test_existence_probability(self, tree):
        assert existence_probability(tree, "a") == pytest.approx(0.75)
        assert existence_probability(tree, "b") == pytest.approx(0.5)
        assert existence_probability(tree, "r") == 1.0

    def test_existence_matches_enumeration(self, tree):
        worlds = GlobalInterpretation.from_local(tree)
        for oid in tree.objects:
            assert existence_probability(tree, oid) == pytest.approx(
                worlds.prob_object_exists(oid)
            )

    def test_expected_size(self, tree):
        # 1 + 0.75 + 0.5.
        assert expected_size(tree) == pytest.approx(2.25)

    def test_expected_size_matches_enumeration(self, tree):
        worlds = GlobalInterpretation.from_local(tree)
        brute = sum(p * len(w) for w, p in worlds.support())
        assert expected_size(tree) == pytest.approx(brute)

    def test_dag_rejected(self):
        with pytest.raises(SemanticsError):
            existence_probability(figure2_instance(), "A1")


class TestDivergences:
    def test_kl_zero_for_identical(self, tree):
        p = GlobalInterpretation.from_local(tree)
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_kl_positive_for_different(self, tree):
        other = InstanceBuilder("r")
        other.children("r", "l", ["a", "b"])
        other.opf("r", {("a",): 0.9, ("b",): 0.05, ("a", "b"): 0.05})
        other.leaf("a", "t", ["x", "y"], {"x": 0.5, "y": 0.5})
        other.leaf("b", "t", vpf={"x": 1.0})
        p = GlobalInterpretation.from_local(tree)
        q = GlobalInterpretation.from_local(other.build())
        assert kl_divergence(p, q) > 0.0

    def test_kl_infinite_on_missing_support(self, tree):
        sure = InstanceBuilder("r")
        sure.children("r", "l", ["a", "b"], card=(1, 1))
        sure.opf("r", {("a",): 1.0})
        sure.leaf("a", "t", ["x", "y"], {"x": 0.5, "y": 0.5})
        sure.leaf("b", "t", vpf={"x": 1.0})
        p = GlobalInterpretation.from_local(tree)
        q = GlobalInterpretation.from_local(sure.build())
        assert kl_divergence(p, q) == math.inf

    def test_total_variation_symmetric_bounded(self, tree):
        p = GlobalInterpretation.from_local(tree)
        assert total_variation(p, p) == pytest.approx(0.0)


class TestSummary:
    def test_summary_fields(self, tree):
        summary = summarize(tree)
        assert summary.objects == 3
        assert summary.non_leaves == 1
        assert summary.leaves == 2
        assert summary.is_tree
        assert summary.expected_objects == pytest.approx(2.25)
        assert "tree=True" in str(summary)

    def test_summary_on_dag(self):
        summary = summarize(figure2_instance())
        assert not summary.is_tree
        assert summary.expected_objects is None
        assert "DAG" in str(summary)
