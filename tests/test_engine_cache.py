"""Tests for the LRU caches, versioned invalidation, and observability."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.engine import Engine, LRUCache, PlanBuilder
from repro.pxql import Interpreter
from repro.queries.engine import QueryEngine
from repro.storage.database import Database, DatabaseError


def small_instance(root="R", leaf="A", p=0.6):
    b = InstanceBuilder(root)
    b.children(root, "x", [leaf])
    b.opf(root, {(leaf,): p, (): 1 - p})
    b.leaf(leaf, "t", ["v"], {"v": 1.0})
    return b.build()


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1

    def test_capacity_evicts_oldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # now "b" is the least recently used
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_peek_does_not_touch_counters_or_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a")
        assert not cache.peek("zzz")
        stats = cache.stats
        assert stats.hits == 0
        assert stats.misses == 0
        cache.put("c", 3)       # "a" was only peeked, so it is still LRU
        assert not cache.peek("a")

    def test_clear_drops_entries_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert not cache.peek("a")
        assert cache.stats.size == 0
        assert cache.stats.hits == 1

    def test_stats_rendering(self):
        cache = LRUCache(8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        text = str(cache.stats)
        assert "1 hits" in text
        assert "1 misses" in text
        assert "1/8 entries" in text


class TestDatabaseNames:
    @pytest.mark.parametrize("bad", [
        "", ".", "..", "a/b", "a\\b", "../escape", "x/../y", "a..b",
    ])
    def test_invalid_names_rejected_on_register(self, bad):
        db = Database()
        with pytest.raises(DatabaseError):
            db.register(bad, small_instance())

    @pytest.mark.parametrize("bad", ["a/b", "..", "../x"])
    def test_invalid_names_rejected_on_get_and_drop(self, bad):
        db = Database()
        with pytest.raises(DatabaseError):
            db.get(bad)
        with pytest.raises(DatabaseError):
            db.drop(bad)

    def test_invalid_name_rejected_on_save(self, tmp_path):
        db = Database(tmp_path)
        with pytest.raises(DatabaseError):
            db.save("../evil")

    def test_valid_names_fine(self):
        db = Database()
        db.register("bib-2.json_ok", small_instance())
        assert "bib-2.json_ok" in db


class TestDatabaseVersions:
    def test_register_assigns_monotone_versions(self):
        db = Database()
        db.register("a", small_instance())
        db.register("b", small_instance("S", "B"))
        va, vb = db.version("a"), db.version("b")
        assert vb > va
        assert db.version("a") == va  # stable until mutation

    def test_reregister_bumps(self):
        db = Database()
        db.register("a", small_instance())
        before = db.version("a")
        db.register("a", small_instance(p=0.5), replace=True)
        assert db.version("a") > before

    def test_touch_bumps(self):
        db = Database()
        db.register("a", small_instance())
        before = db.version("a")
        assert db.touch("a") > before

    def test_unknown_names_raise(self):
        db = Database()
        with pytest.raises(DatabaseError):
            db.version("nope")
        with pytest.raises(DatabaseError):
            db.touch("nope")

    def test_drop_forgets_the_version(self):
        db = Database()
        db.register("a", small_instance())
        db.drop("a")
        with pytest.raises(DatabaseError):
            db.version("a")


class TestEngineResultCache:
    @pytest.fixture
    def database(self):
        db = Database()
        db.register("bib", small_instance())
        return db

    def test_repeated_plan_hits(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        engine.execute_plan(plan)
        assert engine.result_cache.stats.hits == 0
        engine.execute_plan(plan)
        assert engine.result_cache.stats.hits > 0

    def test_hit_returns_equal_value_and_marks_stats(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").select("R.x", "A").build()
        cold = engine.execute_plan(plan)
        warm = engine.execute_plan(plan)
        assert warm.stats.cache == "hit"
        assert cold.stats.cache == "miss"
        assert warm.value.objects == cold.value.objects
        # Selection probability survives the cache hit.
        assert warm.condition_probability == pytest.approx(
            cold.condition_probability
        )

    def test_copy_on_hit_protects_the_cache(self, database):
        engine = Engine(database, copy_on_hit=True)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        first = engine.execute_plan(plan).value
        second = engine.execute_plan(plan).value
        assert second is not first

    def test_reregistration_invalidates(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        engine.execute_plan(plan)
        database.register("bib", small_instance(p=0.9), replace=True)
        result = engine.execute_plan(plan)
        assert result.stats.cache == "miss"

    def test_touch_invalidates(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").point("R.x", "A").build()
        engine.execute_plan(plan)
        database.touch("bib")
        assert engine.execute_plan(plan).stats.cache == "miss"

    def test_caching_off(self, database):
        engine = Engine(database, caching=False)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        engine.execute_plan(plan)
        result = engine.execute_plan(plan)
        assert result.stats.cache == "off"
        assert engine.result_cache.stats.size == 0

    def test_query_values_cached(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").point("R.x", "A").build()
        cold = engine.execute_plan(plan)
        warm = engine.execute_plan(plan)
        assert warm.stats.cache == "hit"
        assert warm.value == pytest.approx(cold.value)


class TestInterpreterCaching:
    def test_repeated_statement_hits_result_cache(self):
        interp = Interpreter()
        interp.database.register("bib", small_instance())
        interp.execute("PROJECT R.x FROM bib AS p")
        assert interp.cache_stats["results"]["hits"] == 0
        interp.execute("PROJECT R.x FROM bib AS p2")
        assert interp.cache_stats["results"]["hits"] > 0

    def test_query_statement_caches(self):
        interp = Interpreter()
        interp.database.register("bib", small_instance())
        one = interp.execute("POINT R.x : A IN bib")
        two = interp.execute("POINT R.x : A IN bib")
        assert one.value == pytest.approx(two.value)
        assert interp.cache_stats["results"]["hits"] > 0

    def test_mutation_invalidates_across_statements(self):
        interp = Interpreter()
        interp.database.register("bib", small_instance(p=0.6))
        first = interp.execute("POINT R.x : A IN bib")
        assert first.value == pytest.approx(0.6)
        interp.database.register("bib", small_instance(p=0.25), replace=True)
        second = interp.execute("POINT R.x : A IN bib")
        assert second.value == pytest.approx(0.25)


class TestQueryEngineStats:
    def test_point_records_strategy_and_time(self):
        engine = QueryEngine(small_instance(), strategy="local")
        engine.point("R.x", "A")
        assert engine.stats["query"] == "point"
        assert engine.stats["strategy"] == "local"
        assert engine.stats["wall_s"] >= 0.0

    def test_sample_records_count_and_stderr(self):
        engine = QueryEngine(small_instance(), strategy="sample",
                             samples=500, seed=7)
        engine.exists("R.x")
        assert engine.stats["samples"] == 500
        assert engine.stats["stderr"] >= 0.0

    def test_each_query_kind_updates(self):
        engine = QueryEngine(small_instance(), strategy="local")
        engine.exists("R.x")
        assert engine.stats["query"] == "exists"
        engine.chain(["R", "A"])
        assert engine.stats["query"] == "chain"
        engine.object_exists("A")
        assert engine.stats["query"] == "object_exists"
