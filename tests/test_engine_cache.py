"""Tests for the LRU caches, versioned invalidation, and observability."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.engine import Engine, LRUCache, PlanBuilder
from repro.pxql import Interpreter
from repro.queries.engine import QueryEngine
from repro.storage.database import Database, DatabaseError


def small_instance(root="R", leaf="A", p=0.6):
    b = InstanceBuilder(root)
    b.children(root, "x", [leaf])
    b.opf(root, {(leaf,): p, (): 1 - p})
    b.leaf(leaf, "t", ["v"], {"v": 1.0})
    return b.build()


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1

    def test_capacity_evicts_oldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # now "b" is the least recently used
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_peek_does_not_touch_counters_or_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a")
        assert not cache.peek("zzz")
        stats = cache.stats
        assert stats.hits == 0
        assert stats.misses == 0
        cache.put("c", 3)       # "a" was only peeked, so it is still LRU
        assert not cache.peek("a")

    def test_clear_drops_entries_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert not cache.peek("a")
        assert cache.stats.size == 0
        assert cache.stats.hits == 1

    def test_stats_rendering(self):
        cache = LRUCache(8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        text = str(cache.stats)
        assert "1 hits" in text
        assert "1 misses" in text
        assert "1/8 entries" in text


class TestDatabaseNames:
    @pytest.mark.parametrize("bad", [
        "", ".", "..", "a/b", "a\\b", "../escape", "x/../y", "a..b",
    ])
    def test_invalid_names_rejected_on_register(self, bad):
        db = Database()
        with pytest.raises(DatabaseError):
            db.register(bad, small_instance())

    @pytest.mark.parametrize("bad", ["a/b", "..", "../x"])
    def test_invalid_names_rejected_on_get_and_drop(self, bad):
        db = Database()
        with pytest.raises(DatabaseError):
            db.get(bad)
        with pytest.raises(DatabaseError):
            db.drop(bad)

    def test_invalid_name_rejected_on_save(self, tmp_path):
        db = Database(tmp_path)
        with pytest.raises(DatabaseError):
            db.save("../evil")

    def test_valid_names_fine(self):
        db = Database()
        db.register("bib-2.json_ok", small_instance())
        assert "bib-2.json_ok" in db


class TestDatabaseVersions:
    def test_register_assigns_monotone_versions(self):
        db = Database()
        db.register("a", small_instance())
        db.register("b", small_instance("S", "B"))
        va, vb = db.version("a"), db.version("b")
        assert vb > va
        assert db.version("a") == va  # stable until mutation

    def test_reregister_bumps(self):
        db = Database()
        db.register("a", small_instance())
        before = db.version("a")
        db.register("a", small_instance(p=0.5), replace=True)
        assert db.version("a") > before

    def test_touch_bumps(self):
        db = Database()
        db.register("a", small_instance())
        before = db.version("a")
        assert db.touch("a") > before

    def test_unknown_names_raise(self):
        db = Database()
        with pytest.raises(DatabaseError):
            db.version("nope")
        with pytest.raises(DatabaseError):
            db.touch("nope")

    def test_drop_forgets_the_version(self):
        db = Database()
        db.register("a", small_instance())
        db.drop("a")
        with pytest.raises(DatabaseError):
            db.version("a")


class TestEngineResultCache:
    @pytest.fixture
    def database(self):
        db = Database()
        db.register("bib", small_instance())
        return db

    def test_repeated_plan_hits(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        engine.execute_plan(plan)
        assert engine.result_cache.stats.hits == 0
        engine.execute_plan(plan)
        assert engine.result_cache.stats.hits > 0

    def test_hit_returns_equal_value_and_marks_stats(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").select("R.x", "A").build()
        cold = engine.execute_plan(plan)
        warm = engine.execute_plan(plan)
        assert warm.stats.cache == "hit"
        assert cold.stats.cache == "miss"
        assert warm.value.objects == cold.value.objects
        # Selection probability survives the cache hit.
        assert warm.condition_probability == pytest.approx(
            cold.condition_probability
        )

    def test_copy_on_hit_protects_the_cache(self, database):
        engine = Engine(database, copy_on_hit=True)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        first = engine.execute_plan(plan).value
        second = engine.execute_plan(plan).value
        assert second is not first

    def test_reregistration_invalidates(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        engine.execute_plan(plan)
        database.register("bib", small_instance(p=0.9), replace=True)
        result = engine.execute_plan(plan)
        assert result.stats.cache == "miss"

    def test_touch_invalidates(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").point("R.x", "A").build()
        engine.execute_plan(plan)
        database.touch("bib")
        assert engine.execute_plan(plan).stats.cache == "miss"

    def test_caching_off(self, database):
        engine = Engine(database, caching=False)
        plan = PlanBuilder.scan("bib").project("R.x").build()
        engine.execute_plan(plan)
        result = engine.execute_plan(plan)
        assert result.stats.cache == "off"
        assert engine.result_cache.stats.size == 0

    def test_query_values_cached(self, database):
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").point("R.x", "A").build()
        cold = engine.execute_plan(plan)
        warm = engine.execute_plan(plan)
        assert warm.stats.cache == "hit"
        assert warm.value == pytest.approx(cold.value)


class TestInterpreterCaching:
    def test_repeated_statement_hits_result_cache(self):
        interp = Interpreter()
        interp.database.register("bib", small_instance())
        interp.execute("PROJECT R.x FROM bib AS p")
        assert interp.cache_stats["results"]["hits"] == 0
        interp.execute("PROJECT R.x FROM bib AS p2")
        assert interp.cache_stats["results"]["hits"] > 0

    def test_query_statement_caches(self):
        interp = Interpreter()
        interp.database.register("bib", small_instance())
        one = interp.execute("POINT R.x : A IN bib")
        two = interp.execute("POINT R.x : A IN bib")
        assert one.value == pytest.approx(two.value)
        assert interp.cache_stats["results"]["hits"] > 0

    def test_mutation_invalidates_across_statements(self):
        interp = Interpreter()
        interp.database.register("bib", small_instance(p=0.6))
        first = interp.execute("POINT R.x : A IN bib")
        assert first.value == pytest.approx(0.6)
        interp.database.register("bib", small_instance(p=0.25), replace=True)
        second = interp.execute("POINT R.x : A IN bib")
        assert second.value == pytest.approx(0.25)


class TestQueryEngineStats:
    def test_point_records_strategy_and_time(self):
        engine = QueryEngine(small_instance(), strategy="local")
        engine.point("R.x", "A")
        assert engine.stats["query"] == "point"
        assert engine.stats["strategy"] == "local"
        assert engine.stats["wall_s"] >= 0.0

    def test_sample_records_count_and_stderr(self):
        engine = QueryEngine(small_instance(), strategy="sample",
                             samples=500, seed=7)
        engine.exists("R.x")
        assert engine.stats["samples"] == 500
        assert engine.stats["stderr"] >= 0.0

    def test_each_query_kind_updates(self):
        engine = QueryEngine(small_instance(), strategy="local")
        engine.exists("R.x")
        assert engine.stats["query"] == "exists"
        engine.chain(["R", "A"])
        assert engine.stats["query"] == "chain"
        engine.object_exists("A")
        assert engine.stats["query"] == "object_exists"


class TestCacheHitStatsRegression:
    """Regressions for the two cache-hit aliasing bugs.

    Before the fix, a cache hit's ``NodeStats`` reused the cached
    entry's *live* children list (so every hit aliased the same mutable
    objects and re-reported the original miss wall times), and
    dict-valued hits were handed out as shallow ``dict(value)`` copies
    (so mutating a nested value corrupted the cache).
    """

    @pytest.fixture
    def database(self):
        db = Database()
        db.register("bib", small_instance())
        return db

    def _pipeline(self):
        return PlanBuilder.scan("bib").project("R.x").select("R.x", "A").build()

    def test_warm_descendants_marked_hit_with_zero_wall(self, database):
        engine = Engine(database)
        engine.execute_plan(self._pipeline())
        warm = engine.execute_plan(self._pipeline())
        assert warm.stats.cache == "hit"
        descendants = [
            node for node in warm.stats.walk() if node is not warm.stats
        ]
        assert descendants  # the subtree is re-reported...
        for node in descendants:
            assert node.cache == "hit"        # ...but nothing re-executed
            assert node.wall_s == 0.0
            for key in ("operator_s", "wall_s"):
                if key in node.extra:
                    assert node.extra[key] == 0.0

    def test_warm_wall_time_not_double_counted(self, database):
        engine = Engine(database)
        cold = engine.execute_plan(self._pipeline())
        warm = engine.execute_plan(self._pipeline())
        cold_total = sum(node.wall_s for node in cold.stats.walk())
        warm_total = sum(node.wall_s for node in warm.stats.walk())
        # A hit reports only the (tiny) lookup time at the hit node, not
        # the original execution times of the whole cached subtree.
        assert warm_total <= warm.stats.wall_s + 1e-12
        assert warm_total < cold_total

    def test_consecutive_hits_do_not_alias_stats(self, database):
        engine = Engine(database)
        engine.execute_plan(self._pipeline())
        first = engine.execute_plan(self._pipeline())
        # Maul the first hit's stats tree as a caller legitimately may.
        for node in first.stats.walk():
            node.cache = "poisoned"
            node.wall_s = 123.0
            node.extra["poison"] = True
            node.children.clear()
        second = engine.execute_plan(self._pipeline())
        assert second.stats.cache == "hit"
        for node in second.stats.walk():
            assert node.cache != "poisoned"
            assert "poison" not in node.extra

    def test_mutating_miss_stats_cannot_poison_later_hits(self, database):
        engine = Engine(database)
        cold = engine.execute_plan(self._pipeline())
        for node in cold.stats.walk():
            node.extra["poison"] = True
        warm = engine.execute_plan(self._pipeline())
        for node in warm.stats.walk():
            assert "poison" not in node.extra

    def test_caching_on_off_identical_values_and_object_counts(self, database):
        cached = Engine(database)
        uncached = Engine(database, caching=False)
        plan = self._pipeline()
        cached.execute_plan(plan)              # populate
        warm = cached.execute_plan(plan)
        plain = uncached.execute_plan(plan)
        assert warm.value.objects == plain.value.objects
        assert warm.condition_probability == pytest.approx(
            plain.condition_probability
        )
        # explain_analyze sees the same per-node object counts either way
        warm_objects = [node.objects for node in warm.stats.walk()]
        plain_objects = [node.objects for node in plain.stats.walk()]
        assert warm_objects == plain_objects
        assert "hit" in cached.explain_analyze(warm)
        assert "off" in uncached.explain_analyze(plain)

    def test_dict_hit_mutation_does_not_corrupt_cache(self, database):
        from repro.engine.plan import QueryNode, ScanNode
        from repro.semistructured.paths import PathExpression

        engine = Engine(database)
        node = QueryNode("dist", ScanNode("bib"),
                         path=PathExpression.parse("R.x"))
        cold = engine.execute_plan(node)
        assert isinstance(cold.value, dict)
        first = engine.execute_plan(node)
        assert first.stats.cache == "hit"
        first.value[0] = 0.999                 # caller mauls the hit
        second = engine.execute_plan(node)
        assert second.value == cold.value
        assert second.value is not first.value

    def test_seeded_nested_dict_hit_is_deep_copied(self, database):
        from repro.engine.executor import NodeStats, _CacheEntry
        from repro.engine.plan import QueryNode, ScanNode
        from repro.semistructured.paths import PathExpression

        engine = Engine(database)
        node = QueryNode("dist", ScanNode("bib"),
                         path=PathExpression.parse("R.x"))
        engine.result_cache.put(
            engine.cache_key(node),
            _CacheEntry({"a": {"b": 1}}, {}, NodeStats(node.label(), "miss")),
        )
        first, _extra, _stats = engine._run(node)
        first["a"]["b"] = 999                  # nested mutation
        second, _extra, _stats = engine._run(node)
        assert second == {"a": {"b": 1}}

    def test_engine_metrics_match_cache_counters(self, database):
        engine = Engine(database)
        pipeline = self._pipeline()
        point = PlanBuilder.scan("bib").point("R.x", "A").build()
        engine.execute_plan(pipeline)          # misses
        engine.execute_plan(pipeline)          # hit
        engine.execute_plan(point)             # miss
        engine.execute_plan(point)             # hit
        stats = engine.result_cache.stats
        assert stats.hits > 0 and stats.misses > 0
        assert engine.metrics.value("engine.cache.results.hits") == stats.hits
        assert engine.metrics.value(
            "engine.cache.results.misses"
        ) == stats.misses
        assert engine.metrics.value("engine.cache.results.size") == stats.size
        plan_stats = engine.plan_cache.stats
        assert engine.metrics.value(
            "engine.cache.plans.hits"
        ) == plan_stats.hits
        assert engine.metrics.value(
            "engine.cache.plans.misses"
        ) == plan_stats.misses


class TestGenerationKeyedCache:
    """``Engine.cache_key`` carries the catalog's on-disk generation:
    sibling-process mutations invalidate, restarts over an unchanged
    directory reuse, in-memory databases key exactly as before."""

    def test_sibling_process_mutation_moves_the_key(self, tmp_path):
        db_a = Database(tmp_path)
        db_a.register("bib", small_instance())
        db_a.save("bib")
        engine = Engine(db_a)
        plan = PlanBuilder.scan("bib").point("R.x", "A").build()
        key_before = engine.cache_key(plan)
        engine.execute_plan(plan)
        assert engine.execute_plan(plan).stats.cache == "hit"

        # A second Database over the same directory stands in for a
        # sibling process; its save bumps the shared generation.
        db_b = Database(tmp_path)
        db_b.register("other", small_instance(root="S", leaf="B"))
        db_b.save("other")

        key_after = engine.cache_key(plan)
        assert key_after != key_before
        # The in-memory entry is gone (the key moved), but ``bib``'s
        # bytes never changed, so the content-addressed persistent
        # segment still serves it — as a disk hit, not a memory hit.
        assert engine.execute_plan(plan).stats.cache == "disk"
        # The disk hit repopulates the LRU and the key is stable again
        # until the next mutation.
        assert engine.execute_plan(plan).stats.cache == "hit"

    def test_restart_over_unchanged_directory_reuses_the_key(self, tmp_path):
        db_a = Database(tmp_path)
        db_a.register("bib", small_instance())
        db_a.save("bib")
        plan = PlanBuilder.scan("bib").point("R.x", "A").build()
        key_first = Engine(db_a).cache_key(plan)

        # A fresh Database + Engine over the same directory (a restarted
        # shard) computes the identical key: cached artifacts persist
        # conceptually across the restart.
        db_b = Database(tmp_path)
        key_second = Engine(db_b).cache_key(plan)
        assert key_first == key_second

    def test_in_memory_database_reports_generation_zero(self):
        database = Database()
        database.register("bib", small_instance())
        assert database.generation() == 0
        engine = Engine(database)
        plan = PlanBuilder.scan("bib").point("R.x", "A").build()
        assert engine.cache_key(plan)[-1] == 0
