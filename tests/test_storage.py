"""Tests for the named-instance database."""

import pytest

from repro.paper import example52_instance, figure2_instance
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.storage.database import Database, DatabaseError


class TestInMemory:
    def test_register_and_get(self):
        db = Database()
        pi = figure2_instance()
        db.register("fig2", pi)
        assert db.get("fig2") is pi
        assert "fig2" in db
        assert len(db) == 1

    def test_duplicate_register_rejected(self):
        db = Database()
        db.register("a", figure2_instance())
        with pytest.raises(DatabaseError):
            db.register("a", example52_instance())

    def test_replace_allowed(self):
        db = Database()
        db.register("a", figure2_instance())
        replacement = example52_instance()
        db.register("a", replacement, replace=True)
        assert db.get("a") is replacement

    def test_unknown_get_rejected(self):
        with pytest.raises(DatabaseError):
            Database().get("ghost")

    def test_drop(self):
        db = Database()
        db.register("a", figure2_instance())
        db.drop("a")
        assert "a" not in db
        with pytest.raises(DatabaseError):
            db.drop("a")

    def test_save_without_directory_rejected(self):
        db = Database()
        db.register("a", figure2_instance())
        with pytest.raises(DatabaseError):
            db.save("a")

    def test_items(self):
        db = Database()
        db.register("a", figure2_instance())
        names = [name for name, _ in db.items()]
        assert names == ["a"]


class TestPersistence:
    def test_save_and_reload(self, tmp_path):
        db = Database(tmp_path)
        pi = figure2_instance()
        db.register("fig2", pi)
        path = db.save("fig2")
        assert path.exists()

        fresh = Database(tmp_path)
        assert "fig2" in fresh
        restored = fresh.get("fig2")
        assert GlobalInterpretation.from_local(restored).is_close_to(
            GlobalInterpretation.from_local(pi)
        )

    def test_save_all(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.register("b", example52_instance())
        paths = db.save_all()
        assert len(paths) == 2
        assert sorted(Database(tmp_path).names()) == ["a", "b"]

    def test_drop_removes_file(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        path = db.save("a")
        db.drop("a")
        assert not path.exists()
        assert "a" not in Database(tmp_path)

    def test_lazy_loading_caches(self, tmp_path):
        db = Database(tmp_path)
        db.register("a", figure2_instance())
        db.save("a")
        fresh = Database(tmp_path)
        first = fresh.get("a")
        assert fresh.get("a") is first

    def test_load_file_from_elsewhere(self, tmp_path):
        from repro.io.json_codec import write_instance

        external = tmp_path / "external.json"
        write_instance(figure2_instance(), external)
        db = Database()
        instance = db.load_file("imported", external)
        assert len(instance) == 11
        assert "imported" in db

    def test_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "db"
        Database(target)
        assert target.is_dir()
