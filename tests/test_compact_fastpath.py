"""Tests for the independence-exploiting fast path in the epsilon pass."""

import random

import pytest

from repro.algebra.projection_prob import (
    ancestor_projection_global,
    ancestor_projection_local,
    epsilon_pass,
)
from repro.core.compact import IndependentOPF, NonEmptyIndependentOPF
from repro.core.distributions import TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.interpretation import LocalInterpretation
from repro.core.weak_instance import WeakInstance
from repro.core.distributions import TabularVPF
from repro.errors import DistributionError
from repro.queries.point import existential_query, point_query
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.types import LeafType


def independent_tree(seed: int, depth: int = 2, branching: int = 2):
    """A balanced tree whose OPFs are all IndependentOPFs."""
    rng = random.Random(seed)
    weak = WeakInstance("r")
    interp = LocalInterpretation()
    leaf_type = LeafType("t", ("x", "y"))
    counter = 0
    frontier = ["r"]
    for level in range(depth):
        next_frontier = []
        for parent in frontier:
            children = []
            for _ in range(branching):
                counter += 1
                children.append(f"n{counter}")
            weak.set_lch(parent, f"L{level}", children)
            interp.set_opf(
                parent,
                IndependentOPF({c: rng.uniform(0.2, 0.95) for c in children}),
            )
            next_frontier.extend(children)
        frontier = next_frontier
    for leaf in frontier:
        weak.set_type(leaf, leaf_type)
        p = rng.uniform(0.2, 0.8)
        interp.set_vpf(leaf, TabularVPF({"x": p, "y": 1.0 - p}))
    pi = ProbabilisticInstance(weak, interp)
    pi.validate()
    return pi


class TestNonEmptyIndependentOPF:
    def test_probabilities_conditioned(self):
        opf = NonEmptyIndependentOPF({"a": 0.5, "b": 0.5})
        # Unconditional masses 0.25 each; nonempty mass 0.75.
        assert opf.prob(frozenset({"a"})) == pytest.approx(0.25 / 0.75)
        assert opf.prob(frozenset({"a", "b"})) == pytest.approx(0.25 / 0.75)
        assert opf.prob(frozenset()) == 0.0

    def test_support_sums_to_one(self):
        opf = NonEmptyIndependentOPF({"a": 0.3, "b": 0.6, "c": 0.1})
        assert sum(p for _, p in opf.support()) == pytest.approx(1.0)
        opf.validate()

    def test_marginal_inclusion(self):
        opf = NonEmptyIndependentOPF({"a": 0.5, "b": 0.5})
        assert opf.marginal_inclusion("a") == pytest.approx(0.5 / 0.75)

    def test_entry_count_compact(self):
        opf = NonEmptyIndependentOPF({f"c{i}": 0.5 for i in range(8)})
        assert opf.entry_count() == 8

    def test_zero_inclusions_rejected(self):
        with pytest.raises(DistributionError):
            NonEmptyIndependentOPF({"a": 0.0})

    def test_matches_conditioned_tabular(self):
        base = IndependentOPF({"a": 0.4, "b": 0.7})
        conditioned, mass = base.restrict(lambda c: bool(c))
        compact = NonEmptyIndependentOPF({"a": 0.4, "b": 0.7})
        assert mass == pytest.approx(compact.nonempty_mass)
        for child_set, probability in conditioned.support():
            assert compact.prob(child_set) == pytest.approx(probability)


class TestFastPath:
    @pytest.mark.parametrize("seed", range(6))
    def test_projection_matches_global(self, seed):
        pi = independent_tree(seed)
        path = "r.L0.L1"
        reference = ancestor_projection_global(pi, path)
        local = ancestor_projection_local(pi, path)
        local.validate()
        assert GlobalInterpretation.from_local(local).is_close_to(reference)

    def test_result_opfs_stay_compact(self):
        pi = independent_tree(0)
        local = ancestor_projection_local(pi, "r.L0.L1")
        assert isinstance(local.opf("r"), IndependentOPF)
        internal = [oid for oid, _ in local.interpretation.opf_items()
                    if oid != "r"]
        assert internal
        for oid in internal:
            assert isinstance(local.opf(oid), NonEmptyIndependentOPF)

    def test_partial_match_projection(self):
        pi = independent_tree(1)
        # Shorter path: matched objects are mid-level.
        reference = ancestor_projection_global(pi, "r.L0")
        local = ancestor_projection_local(pi, "r.L0")
        assert GlobalInterpretation.from_local(local).is_close_to(reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_existential_matches_enumeration(self, seed):
        pi = independent_tree(seed)
        brute = GlobalInterpretation.from_local(pi).prob_path_nonempty
        from repro.semistructured.paths import PathExpression

        path = PathExpression.parse("r.L0.L1")
        assert existential_query(pi, path) == pytest.approx(brute(path))

    def test_point_query_on_independent(self):
        pi = independent_tree(2)
        worlds = GlobalInterpretation.from_local(pi)
        from repro.semistructured.paths import PathExpression

        path = PathExpression.parse("r.L0.L1")
        for leaf in sorted(pi.weak.leaves()):
            assert point_query(pi, path, leaf) == pytest.approx(
                worlds.prob_object_at_path(path, leaf)
            )

    def test_epsilon_values_match_tabular_path(self):
        pi = independent_tree(3)
        # The same instance with all OPFs materialized as tables must give
        # identical epsilons (the fast path is an optimization, not a
        # semantic change).
        tabular = ProbabilisticInstance(pi.weak.copy())
        for oid, opf in pi.interpretation.opf_items():
            tabular.set_opf(oid, opf.to_tabular())
        for oid, vpf in pi.interpretation.vpf_items():
            tabular.interpretation.set_vpf(oid, vpf)
        fast = epsilon_pass(pi, "r.L0.L1")
        slow = epsilon_pass(tabular, "r.L0.L1")
        assert set(fast.epsilon) == set(slow.epsilon)
        for oid in fast.epsilon:
            assert fast.epsilon[oid] == pytest.approx(slow.epsilon[oid])
        assert fast.root_empty_mass == pytest.approx(slow.root_empty_mass)

    def test_recomputed_cards_compact(self):
        pi = independent_tree(4)
        local = ancestor_projection_local(pi, "r.L0.L1")
        internal = [oid for oid, _ in local.interpretation.opf_items()
                    if oid != "r"]
        for oid in internal:
            for label in local.weak.labels_of(oid):
                card = local.card(oid, label)
                assert card.min >= 1  # conditioned on >= 1 surviving child

    def test_mixed_representations(self):
        # A tree mixing tabular and independent OPFs goes through both
        # update paths in one sweep.
        pi = independent_tree(5)
        mixed = ProbabilisticInstance(pi.weak.copy())
        for index, (oid, opf) in enumerate(sorted(pi.interpretation.opf_items())):
            mixed.set_opf(oid, opf.to_tabular() if index % 2 else opf)
        for oid, vpf in pi.interpretation.vpf_items():
            mixed.interpretation.set_vpf(oid, vpf)
        reference = ancestor_projection_global(mixed, "r.L0.L1")
        local = ancestor_projection_local(mixed, "r.L0.L1")
        assert GlobalInterpretation.from_local(local).is_close_to(reference)

    def test_json_round_trip_of_result(self):
        # NonEmptyIndependentOPF has no dedicated codec kind: it encodes
        # through the tabular fallback and must round-trip faithfully.
        from repro.io import json_codec

        pi = independent_tree(6)
        local = ancestor_projection_local(pi, "r.L0.L1")
        restored = json_codec.loads(json_codec.dumps(local))
        assert GlobalInterpretation.from_local(restored).is_close_to(
            GlobalInterpretation.from_local(local)
        )
