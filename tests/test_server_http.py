"""The asyncio HTTP/JSON front door, driven over real sockets.

A :class:`HttpFrontDoor` over a thread-pool :class:`PXQLServer` backend,
its event loop running on a helper thread, exercised with plain
:mod:`urllib` clients: execute round-trips, typed-error status codes,
the submit/poll/pickup lifecycle (one-shot delivery), health and
metrics probes, and the status map itself (unit-level, no sockets).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import (
    BudgetExceeded,
    Overloaded,
    ShardUnavailable,
)
from repro.pxql.lexer import PXQLSyntaxError
from repro.server import HttpFrontDoor, PXQLServer
from repro.server.http import error_payload
from repro.storage.database import Database

STABLE_QUERY = "EXISTS R.book.author IN bib"


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"])
    b.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    b.children("B1", "author", ["A1"])
    b.opf("B1", {("A1",): 0.5, (): 0.5})
    b.children("B2", "author", ["A3"])
    b.opf("B2", {("A3",): 0.6, (): 0.4})
    b.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    b.leaf("A3", "name", vpf={"y": 1.0})
    return b.build()


def _request(port, method, path, payload=None):
    """(status, decoded_json) for one HTTP round-trip."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"} if body else {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class _Door:
    """A front door + backend + loop thread, torn down in order."""

    def __init__(self, **front_kwargs):
        database = Database()
        database.register("bib", build_bib())
        self.backend = PXQLServer(
            database=database, workers=1, queue_size=8, poll_s=0.005
        ).start()
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="http-test-loop", daemon=True
        )
        self.thread.start()
        self.front = HttpFrontDoor(self.backend, port=0, **front_kwargs)
        self._run(self.front.start())
        self.port = self.front.bound_port

    def _run(self, coro, timeout_s=30.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout_s
        )

    def close(self):
        if self.backend.state != "stopped":
            self._run(self.front.shutdown(drain_timeout_s=10.0))
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.loop.close()


@pytest.fixture()
def door():
    harness = _Door()
    yield harness
    harness.close()


class TestExecuteRoute:
    def test_execute_round_trip(self, door):
        status, body = _request(
            door.port, "POST", "/execute", {"statement": STABLE_QUERY}
        )
        assert status == 200
        assert body["result"]["value"] == pytest.approx(0.59)

    def test_parse_error_is_a_typed_400(self, door):
        status, body = _request(
            door.port, "POST", "/execute", {"statement": "FROB the knob"}
        )
        assert status == 400
        assert body["error"]["type"] == "PXQLSyntaxError"
        assert body["error"]["message"]

    def test_missing_statement_is_a_400(self, door):
        status, body = _request(door.port, "POST", "/execute", {})
        assert status == 400
        assert body["error"]["type"] == "BadRequest"

    def test_unknown_path_is_a_404(self, door):
        status, body = _request(door.port, "GET", "/nope")
        assert status == 404
        assert body["error"]["type"] == "NotFound"

    def test_stopped_backend_is_a_503(self, door):
        door.backend.stop(drain=True, timeout_s=10.0)
        status, body = _request(
            door.port, "POST", "/execute", {"statement": STABLE_QUERY}
        )
        assert status == 503
        assert body["error"]["type"] == "Overloaded"
        assert body["error"]["reason"] in ("draining", "stopped")


class TestSubmitResultRoutes:
    def test_submit_poll_pickup_lifecycle(self, door):
        status, body = _request(
            door.port, "POST", "/submit", {"statement": STABLE_QUERY}
        )
        assert status == 202
        ident = body["id"]

        deadline = time.monotonic() + 30.0
        while True:
            status, body = _request(door.port, "GET", f"/result/{ident}")
            if status == 200:
                break
            assert status == 202, body
            assert time.monotonic() < deadline, "result never arrived"
            time.sleep(0.01)
        assert body["result"]["value"] == pytest.approx(0.59)

        # Delivery is one-shot: the slot is freed on pickup.
        status, body = _request(door.port, "GET", f"/result/{ident}")
        assert status == 404

    def test_unknown_result_id_is_a_404(self, door):
        status, body = _request(door.port, "GET", "/result/99999")
        assert status == 404
        assert body["error"]["type"] == "NotFound"

    def test_submitted_error_is_typed_on_pickup(self, door):
        status, body = _request(
            door.port, "POST", "/submit",
            {"statement": "EXISTS R.x IN no_such_instance"},
        )
        assert status == 202
        ident = body["id"]
        deadline = time.monotonic() + 30.0
        while True:
            status, body = _request(door.port, "GET", f"/result/{ident}")
            if status != 202:
                break
            assert time.monotonic() < deadline, "error never arrived"
            time.sleep(0.01)
        assert status == 400
        assert body["error"]["type"]


class TestProbes:
    def test_health_is_200_when_ready(self, door):
        status, body = _request(door.port, "GET", "/health")
        assert status == 200
        assert body["health"]["ready"] is True

    def test_health_is_503_once_stopped(self, door):
        door.backend.stop(drain=True, timeout_s=10.0)
        status, body = _request(door.port, "GET", "/health")
        assert status == 503
        assert body["health"]["ready"] is False

    def test_metrics_route_exposes_the_registry(self, door):
        _request(door.port, "POST", "/execute", {"statement": STABLE_QUERY})
        status, body = _request(door.port, "GET", "/metrics")
        assert status == 200
        assert "server.submitted" in body["metrics"]

    def test_shutdown_drains_and_stops_the_backend(self, door):
        door._run(door.front.shutdown(drain_timeout_s=10.0))
        assert door.backend.state == "stopped"


class TestStatusMap:
    """``error_payload`` unit-level: the full typed-error status map."""

    def test_queue_full_is_429(self):
        status, body = error_payload(
            Overloaded("queue full", reason="queue_full")
        )
        assert (status, body["error"]["reason"]) == (429, "queue_full")

    def test_draining_and_stopped_are_503(self):
        for reason in ("draining", "stopped"):
            status, _ = error_payload(Overloaded("no", reason=reason))
            assert status == 503

    def test_shard_unavailable_is_503_with_shard(self):
        status, body = error_payload(ShardUnavailable("down", shard=1))
        assert status == 503
        assert body["error"]["shard"] == 1

    def test_budget_exceeded_is_408(self):
        status, _ = error_payload(
            BudgetExceeded("too slow", limit="deadline", where="engine")
        )
        assert status == 408

    def test_pxml_errors_are_400(self):
        status, _ = error_payload(PXQLSyntaxError("bad token"))
        assert status == 400

    def test_unrecognized_errors_are_500(self):
        status, body = error_payload(RuntimeError("boom"))
        assert status == 500
        assert body["error"]["type"] == "RuntimeError"


class TestResultRetention:
    """The pending-result TTL sweep, 410 Gone, and the hard bound."""

    def _submit(self, port):
        status, body = _request(
            port, "POST", "/submit", {"statement": STABLE_QUERY}
        )
        assert status == 202
        return body["id"]

    def test_expired_result_is_410_and_counted(self):
        harness = _Door(result_ttl_s=0.05)
        try:
            ident = self._submit(harness.port)
            # Either the manual sweep or the background sweeper may win
            # the race to expire the slot; wait on the counter, which
            # both paths increment.
            deadline = time.monotonic() + 10.0
            metrics = harness.backend.metrics
            while metrics.value("http.results_expired") == 0:
                harness.front.sweep_pending()
                assert time.monotonic() < deadline, "slot never expired"
                time.sleep(0.02)
            status, body = _request(
                harness.port, "GET", f"/result/{ident}"
            )
            assert status == 410
            assert body["error"]["type"] == "Expired"
            assert (
                harness.backend.metrics.value("http.results_expired") == 1
            )
        finally:
            harness.close()

    def test_background_sweeper_expires_without_polling(self):
        harness = _Door(result_ttl_s=0.05)
        try:
            ident = self._submit(harness.port)
            deadline = time.monotonic() + 10.0
            while True:
                status, _ = _request(
                    harness.port, "GET", f"/result/{ident}"
                )
                if status == 410:
                    break
                assert status in (200, 202)
                if status == 200:
                    # Picked up before the sweep: re-submit and retry.
                    ident = self._submit(harness.port)
                assert time.monotonic() < deadline, "sweeper never fired"
                time.sleep(0.05)
        finally:
            harness.close()

    def test_full_map_evicts_oldest_first(self):
        harness = _Door(result_ttl_s=300.0, max_pending=2)
        try:
            first = self._submit(harness.port)
            second = self._submit(harness.port)
            third = self._submit(harness.port)  # evicts `first`
            status, _ = _request(harness.port, "GET", f"/result/{first}")
            assert status == 410
            for ident in (second, third):
                status, _ = _request(
                    harness.port, "GET", f"/result/{ident}"
                )
                assert status in (200, 202)
            assert (
                harness.backend.metrics.value("http.results_expired") == 1
            )
        finally:
            harness.close()

    def test_unexpired_results_survive_the_sweep(self):
        harness = _Door(result_ttl_s=300.0)
        try:
            ident = self._submit(harness.port)
            assert harness.front.sweep_pending() == 0
            status, _ = _request(harness.port, "GET", f"/result/{ident}")
            assert status in (200, 202)
        finally:
            harness.close()
