"""Tests for the boolean event algebra."""

import random

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import QueryError
from repro.events import (
    ChainExists,
    HasValue,
    ObjectExists,
    PathNonEmpty,
    Reaches,
    conditional_probability,
    estimate,
    probability,
)
from repro.queries.engine import QueryEngine
from repro.semistructured.paths import PathExpression

from tests.helpers import random_tree_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1"])
    builder.opf("B1", {("A1",): 0.8, (): 0.2})
    builder.children("B2", "author", ["A2"])
    builder.opf("B2", {("A2",): 0.5, (): 0.5})
    builder.leaf("A1", "name", ["h", "g"], {"h": 0.9, "g": 0.1})
    builder.leaf("A2", "name", vpf={"g": 1.0})
    return builder.build()


def path(text):
    return PathExpression.parse(text)


class TestAtoms:
    def test_object_exists_matches_engine(self, tree):
        assert probability(tree, ObjectExists("B1")) == pytest.approx(
            QueryEngine(tree).object_exists("B1")
        )

    def test_reaches_matches_point_query(self, tree):
        event = Reaches(path("R.book.author"), "A1")
        assert probability(tree, event) == pytest.approx(
            QueryEngine(tree).point("R.book.author", "A1")
        )

    def test_path_nonempty_matches_existential(self, tree):
        event = PathNonEmpty(path("R.book.author"))
        assert probability(tree, event) == pytest.approx(
            QueryEngine(tree).exists("R.book.author")
        )

    def test_chain_exists_matches_chain_query(self, tree):
        event = ChainExists(("R", "B1", "A1"))
        assert probability(tree, event) == pytest.approx(
            QueryEngine(tree).chain(["R", "B1", "A1"])
        )

    def test_has_value(self, tree):
        event = HasValue("A1", "h")
        # P(A1 present) * P(h) = 0.7 * 0.8 * 0.9.
        assert probability(tree, event) == pytest.approx(0.7 * 0.8 * 0.9)


class TestCombinators:
    def test_complement(self, tree):
        event = ObjectExists("B1")
        assert probability(tree, ~event) == pytest.approx(
            1.0 - probability(tree, event)
        )

    def test_de_morgan(self, tree):
        a = ObjectExists("B1")
        b = ObjectExists("B2")
        lhs = probability(tree, ~(a | b))
        rhs = probability(tree, ~a & ~b)
        assert lhs == pytest.approx(rhs)

    def test_inclusion_exclusion(self, tree):
        a = ObjectExists("A1")
        b = ObjectExists("A2")
        union = probability(tree, a | b)
        assert union == pytest.approx(
            probability(tree, a) + probability(tree, b)
            - probability(tree, a & b)
        )

    def test_conjunction_of_independent_branches(self, tree):
        a = Reaches(path("R.book.author"), "A1")
        b = Reaches(path("R.book.author"), "A2")
        joint = probability(tree, a & b)
        # A1 and A2 sit under different books whose presences correlate
        # through the root OPF, so verify against direct enumeration.
        assert joint == pytest.approx(0.4 * 0.8 * 0.5)

    def test_str_forms(self, tree):
        event = ~(ObjectExists("B1") & HasValue("A1", "h"))
        text = str(event)
        assert "not" in text and "and" in text


class TestConditional:
    def test_bayes_consistency(self, tree):
        a = ObjectExists("A1")
        b = ObjectExists("B1")
        assert conditional_probability(tree, a, b) == pytest.approx(
            probability(tree, a & b) / probability(tree, b)
        )

    def test_conditioning_on_impossible_event(self, tree):
        with pytest.raises(QueryError):
            conditional_probability(
                tree, ObjectExists("A1"), ObjectExists("GHOST")
            )

    def test_selection_semantics_match(self, tree):
        # P(A1 | B1 selected) equals the selection-then-query route.
        from repro.algebra.selection import ObjectCondition, select_local

        conditioned = select_local(
            tree, ObjectCondition(path("R.book"), "B1")
        ).instance
        via_selection = QueryEngine(conditioned).point("R.book.author", "A1")
        via_events = conditional_probability(
            tree, Reaches(path("R.book.author"), "A1"), ObjectExists("B1")
        )
        assert via_selection == pytest.approx(via_events)


class TestEstimation:
    def test_estimate_tracks_exact(self, tree):
        event = ObjectExists("A1") | HasValue("A2", "g")
        exact = probability(tree, event)
        est = estimate(tree, event, samples=4000, seed=21)
        low, high = est.confidence_interval(z=3.5)
        assert low - 1e-9 <= exact <= high + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_random_instances_complement_law(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        target = sorted(pi.objects)[1]
        event = ObjectExists(target)
        assert probability(pi, event) + probability(pi, ~event) == (
            pytest.approx(1.0)
        )


class TestConditionalEstimation:
    def test_rejection_sampling_tracks_exact(self, tree):
        from repro.events import estimate_conditional

        event = Reaches(path("R.book.author"), "A1")
        given = ObjectExists("B1")
        exact = conditional_probability(tree, event, given)
        est = estimate_conditional(tree, event, given, samples=3000, seed=31)
        low, high = est.confidence_interval(z=3.5)
        assert low - 1e-9 <= exact <= high + 1e-9

    def test_impossible_evidence_raises(self, tree):
        from repro.events import estimate_conditional

        with pytest.raises(QueryError):
            estimate_conditional(
                tree, ObjectExists("A1"), ObjectExists("GHOST"),
                samples=50, seed=32,
            )

    def test_zero_samples_rejected(self, tree):
        from repro.events import estimate_conditional

        with pytest.raises(QueryError):
            estimate_conditional(
                tree, ObjectExists("A1"), ObjectExists("B1"), samples=0
            )
