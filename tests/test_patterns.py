"""Tests for ProTDB-style pattern-tree queries."""

import random

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import NonTreeInstanceError, QueryError
from repro.paper import figure2_instance
from repro.protdb.patterns import (
    PatternNode,
    pattern_probability,
    world_has_witness,
)
from repro.semantics.global_interpretation import GlobalInterpretation

from tests.helpers import random_tree_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1", "A2"])
    builder.children("B1", "title", ["T1"])
    builder.opf("B1", {
        ("A1", "T1"): 0.3, ("A2",): 0.2, ("A1", "A2"): 0.25, ("T1",): 0.25,
    })
    builder.children("B2", "author", ["A3"])
    builder.opf("B2", {("A3",): 0.6, (): 0.4})
    builder.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    builder.leaf("A2", "name", vpf={"x": 1.0})
    builder.leaf("A3", "name", vpf={"y": 1.0})
    builder.leaf("T1", "title", ["t"], {"t": 1.0})
    return builder.build()


def brute(pi, pattern):
    worlds = GlobalInterpretation.from_local(pi)
    return worlds.event_probability(lambda w: world_has_witness(w, pattern))


class TestWitnessChecking:
    def test_simple_witness(self, tree):
        from repro.semantics.compatible import iter_compatible_instances

        pattern = PatternNode.root(PatternNode.child("book"))
        hits = [
            w for w, _ in iter_compatible_instances(tree)
            if world_has_witness(w, pattern)
        ]
        assert hits
        for world in hits:
            assert world.children("R")

    def test_value_constraint(self, tree):
        pattern = PatternNode.root(
            PatternNode.child("book", PatternNode.child("author", value="y"))
        )
        probability = brute(tree, pattern)
        assert 0.0 < probability < 1.0

    def test_value_constrained_node_with_children_rejected(self):
        with pytest.raises(QueryError):
            PatternNode.child("a", PatternNode.child("b"), value="v")


class TestPatternProbability:
    def test_single_edge(self, tree):
        pattern = PatternNode.root(PatternNode.child("book"))
        assert pattern_probability(tree, pattern) == pytest.approx(0.9)

    def test_two_level(self, tree):
        pattern = PatternNode.root(
            PatternNode.child("book", PatternNode.child("author"))
        )
        assert pattern_probability(tree, pattern) == pytest.approx(
            brute(tree, pattern)
        )

    def test_branching_pattern(self, tree):
        # A book with BOTH an author and a title.
        pattern = PatternNode.root(
            PatternNode.child(
                "book", PatternNode.child("author"), PatternNode.child("title")
            )
        )
        assert pattern_probability(tree, pattern) == pytest.approx(
            brute(tree, pattern)
        )

    def test_sibling_patterns_same_label(self, tree):
        # Two author sub-patterns (homomorphism: may share the same object).
        pattern = PatternNode.root(
            PatternNode.child("book",
                              PatternNode.child("author", value="x"),
                              PatternNode.child("author", value="y")),
        )
        assert pattern_probability(tree, pattern) == pytest.approx(
            brute(tree, pattern)
        )

    def test_value_leaf_pattern(self, tree):
        pattern = PatternNode.root(
            PatternNode.child("book", PatternNode.child("author", value="y"))
        )
        assert pattern_probability(tree, pattern) == pytest.approx(
            brute(tree, pattern)
        )

    def test_unsatisfiable_label(self, tree):
        pattern = PatternNode.root(PatternNode.child("magazine"))
        assert pattern_probability(tree, pattern) == 0.0

    def test_empty_pattern_is_certain(self, tree):
        assert pattern_probability(tree, PatternNode.root()) == 1.0

    def test_dag_rejected(self):
        pattern = PatternNode.root(PatternNode.child("book"))
        with pytest.raises(NonTreeInstanceError):
            pattern_probability(figure2_instance(), pattern)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_match_enumeration(self, seed):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        labels = sorted(pi.weak.graph().labels)

        def random_pattern(depth):
            if depth == 0 or rng.random() < 0.3:
                value = rng.choice([None, "x", "y"])
                return PatternNode.child(rng.choice(labels), value=value)
            kids = [random_pattern(depth - 1) for _ in range(rng.randint(1, 2))]
            return PatternNode.child(rng.choice(labels), *kids)

        pattern = PatternNode.root(
            *[random_pattern(1) for _ in range(rng.randint(1, 2))]
        )
        assert pattern_probability(pi, pattern) == pytest.approx(
            brute(pi, pattern)
        ), pattern
