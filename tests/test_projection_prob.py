"""Tests for probabilistic ancestor projection: local ≡ global.

The central correctness property of Section 6.1: the efficient local
algorithm must produce a probabilistic instance whose world distribution
equals the pushed-forward distribution of Definition 5.3.
"""

import random

import pytest

from repro.algebra.projection_prob import (
    ancestor_projection_global,
    ancestor_projection_local,
    epsilon_pass,
)
from repro.core.builder import InstanceBuilder
from repro.errors import NonTreeInstanceError
from repro.paper import figure2_instance
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

from tests.helpers import random_tree_instance


def assert_local_matches_global(pi, path):
    reference = ancestor_projection_global(pi, path)
    local = ancestor_projection_local(pi, path)
    local.validate()
    rebuilt = GlobalInterpretation.from_local(local)
    assert rebuilt.is_close_to(reference, tolerance=1e-9), str(path)


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1", "A2"])
    builder.children("B1", "title", ["T1"])
    builder.opf("B1", {
        ("A1", "T1"): 0.3, ("A2",): 0.2, ("A1", "A2"): 0.25, ("T1",): 0.15,
        (): 0.1,
    })
    builder.children("B2", "author", ["A3"])
    builder.opf("B2", {("A3",): 0.6, (): 0.4})
    builder.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    builder.leaf("A2", "name", vpf={"x": 1.0})
    builder.leaf("A3", "name", vpf={"y": 1.0})
    builder.leaf("T1", "title", ["t"], {"t": 1.0})
    return builder.build()


class TestEquivalence:
    def test_two_level_path(self, tree):
        assert_local_matches_global(tree, "R.book.author")

    def test_one_level_path(self, tree):
        assert_local_matches_global(tree, "R.book")

    def test_title_path(self, tree):
        assert_local_matches_global(tree, "R.book.title")

    def test_empty_match(self, tree):
        assert_local_matches_global(tree, "R.nothing")

    def test_zero_label_path(self, tree):
        assert_local_matches_global(tree, "R")

    @pytest.mark.parametrize("seed", range(8))
    def test_random_trees_random_paths(self, seed):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=rng.choice([2, 3]), max_children=2)
        graph = pi.weak.graph()
        labels = sorted(graph.labels)
        for _ in range(3):
            length = rng.randint(1, 3)
            path = PathExpression(pi.root, tuple(rng.choice(labels)
                                                 for _ in range(length)))
            assert_local_matches_global(pi, path)

    @pytest.mark.parametrize("labeling", ["SL", "FR"])
    def test_generated_workloads(self, labeling):
        workload = generate_workload(
            WorkloadSpec(depth=2, branching=2, labeling=labeling, seed=11)
        )
        rng = random.Random(0)
        path = random_projection_path(workload, rng)
        assert_local_matches_global(workload.instance, path)


class TestResultShape:
    def test_root_empty_mass_is_no_match_probability(self, tree):
        # P(no author anywhere) — computable by brute force.
        reference = ancestor_projection_global(tree, "R.book.author")
        bare_root_mass = sum(
            p for world, p in reference.support() if len(world) == 1
        )
        sweep = epsilon_pass(tree, "R.book.author")
        assert sweep.root_empty_mass == pytest.approx(bare_root_mass)

    def test_internal_objects_never_childless(self, tree):
        local = ancestor_projection_local(tree, "R.book.author")
        for oid, opf in local.interpretation.opf_items():
            if oid == local.root:
                continue
            for child_set, probability in opf.support():
                assert child_set, f"{oid} has empty-set mass {probability}"

    def test_matched_leaves_keep_vpfs(self, tree):
        local = ancestor_projection_local(tree, "R.book.author")
        assert local.vpf("A1").prob("x") == pytest.approx(0.7)

    def test_cardinalities_recomputed(self, tree):
        local = ancestor_projection_local(tree, "R.book.author")
        card = local.card("R", "book")
        assert card.min == 0  # the projection can be the bare root
        assert card.max <= 2

    def test_pruned_siblings_absent(self, tree):
        local = ancestor_projection_local(tree, "R.book.author")
        assert "T1" not in local

    def test_dag_instance_rejected(self):
        with pytest.raises(NonTreeInstanceError):
            ancestor_projection_local(figure2_instance(), "R.book.author")

    def test_projection_result_total_mass(self, tree):
        local = ancestor_projection_local(tree, "R.book.author")
        GlobalInterpretation.from_local(local).validate()


class TestEpsilonPass:
    def test_matched_objects_have_epsilon_one(self, tree):
        sweep = epsilon_pass(tree, "R.book.author")
        for oid in sweep.match.levels[-1]:
            assert sweep.epsilon[oid] == 1.0

    def test_epsilon_is_survival_probability(self, tree):
        # eps(B2) = P(B2 has an author | B2 exists) = 0.6.
        sweep = epsilon_pass(tree, "R.book.author")
        assert sweep.epsilon["B2"] == pytest.approx(0.6)
        # eps(B1) = P(B1 has an author | B1 exists) = 1 - 0.15 - 0.1 = 0.75.
        assert sweep.epsilon["B1"] == pytest.approx(0.75)

    def test_root_epsilon_complements_empty_mass(self, tree):
        sweep = epsilon_pass(tree, "R.book.author")
        assert sweep.root_epsilon == pytest.approx(1.0 - sweep.root_empty_mass)

    def test_zero_label_path_is_certain(self, tree):
        sweep = epsilon_pass(tree, "R")
        assert sweep.root_epsilon == 1.0

    def test_unmatched_path_is_impossible(self, tree):
        sweep = epsilon_pass(tree, "R.ghost")
        assert sweep.root_epsilon == 0.0
