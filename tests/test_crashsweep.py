"""Crash-sweep harness: profiling, child kills, recovery verification.

The full every-site sweep runs in the CI ``crash-sweep`` job
(``python -m repro.resilience.crashsweep`` over a seed matrix); here a
representative subset keeps the kill-and-recover contract under tier-1
without the full matrix cost.
"""

from pathlib import Path

from repro.resilience.crashsweep import (
    profile_visits,
    run_cycle,
    spawn_child,
    sweep,
    verify_recovery,
)
from repro.resilience.faults import STORAGE_FAULT_POINTS

#: One early, one middle, one late fault point — the save publication
#: step, the generation bump, and the commit record.
SMOKE_SITES = ("codec.write.replace", "db.generation.bump", "journal.commit")


def test_profile_covers_every_registered_site():
    counts = profile_visits(seed=3)
    for site in STORAGE_FAULT_POINTS:
        assert counts.get(site, 0) > 0, f"{site} never visited by the cycle"


def test_cycle_runs_clean_without_faults(tmp_path):
    run_cycle(tmp_path)
    ok, detail = verify_recovery(tmp_path)
    assert ok, detail


def test_child_is_killed_and_directory_recovers(tmp_path):
    proc = spawn_child(tmp_path, "journal.commit", visit=1, seed=3)
    assert proc.returncode == -9, proc.stderr
    ok, detail = verify_recovery(tmp_path)
    assert ok, detail


def test_smoke_sweep_first_visits(tmp_path):
    """One kill per smoke site (first visit), full recovery contract."""
    counts = profile_visits(seed=3)
    for site in SMOKE_SITES:
        directory = Path(tmp_path) / site.replace(".", "_")
        directory.mkdir()
        proc = spawn_child(directory, site, visit=1, seed=3)
        assert proc.returncode == -9, (site, proc.stderr)
        ok, detail = verify_recovery(directory)
        assert ok, (site, detail)
        assert counts[site] >= 1


def test_sweep_outcomes_are_structured():
    outcomes = sweep(seed=5, sites=("db.drop.unlink",))
    assert outcomes and all(o.ok for o in outcomes)
    payload = outcomes[0].as_dict()
    assert payload["site"] == "db.drop.unlink"
    assert payload["killed"] and payload["recovered"]
