"""Unit tests for weak instances and the weak instance graph."""

import pytest

from repro.core.cardinality import CardinalityInterval
from repro.core.weak_instance import WeakInstance
from repro.errors import (
    CardinalityError,
    CyclicModelError,
    ModelError,
    OverlappingLabelError,
    TypeDomainError,
    UnknownObjectError,
)
from repro.semistructured.types import LeafType


@pytest.fixture
def weak():
    w = WeakInstance("R")
    w.set_lch("R", "book", ["B1", "B2"])
    w.set_lch("B1", "author", ["A1", "A2"])
    w.set_card("B1", "author", CardinalityInterval(1, 2))
    w.set_type("A1", LeafType("t", ["x"]))
    return w


class TestStructure:
    def test_children_added_on_demand(self, weak):
        assert weak.objects == frozenset({"R", "B1", "B2", "A1", "A2"})

    def test_lch_lookup(self, weak):
        assert weak.lch("R", "book") == frozenset({"B1", "B2"})
        assert weak.lch("R", "nope") == frozenset()

    def test_lch_map(self, weak):
        assert weak.lch_map("B1") == {"author": frozenset({"A1", "A2"})}

    def test_labels_of(self, weak):
        assert weak.labels_of("R") == frozenset({"book"})
        assert weak.labels_of("A1") == frozenset()

    def test_potential_children_union(self, weak):
        weak.set_lch("B1", "title", ["T1"])
        assert weak.potential_children("B1") == frozenset({"A1", "A2", "T1"})

    def test_empty_lch_removes_entry(self, weak):
        weak.set_lch("R", "book", [])
        assert weak.labels_of("R") == frozenset()
        assert weak.is_leaf("R")

    def test_overlapping_labels_rejected(self, weak):
        with pytest.raises(OverlappingLabelError):
            weak.set_lch("B1", "editor", ["A1"])

    def test_unknown_object_raises(self, weak):
        with pytest.raises(UnknownObjectError):
            weak.lch("ghost", "l")

    def test_leaves_and_non_leaves(self, weak):
        assert weak.leaves() == frozenset({"B2", "A1", "A2"})
        assert weak.non_leaves() == frozenset({"R", "B1"})

    def test_label_of_child(self, weak):
        assert weak.label_of_child("B1", "A1") == "author"
        with pytest.raises(ModelError):
            weak.label_of_child("B1", "B2")

    def test_copy_independent(self, weak):
        clone = weak.copy()
        clone.set_lch("B2", "title", ["T9"])
        assert weak.is_leaf("B2")
        assert not clone.is_leaf("B2")


class TestCardinality:
    def test_default_is_unconstrained(self, weak):
        assert weak.card("R", "book") == CardinalityInterval(0, 2)
        assert not weak.has_explicit_card("R", "book")

    def test_explicit_card(self, weak):
        assert weak.card("B1", "author") == CardinalityInterval(1, 2)
        assert weak.has_explicit_card("B1", "author")

    def test_card_entries_iterates_explicit_only(self, weak):
        entries = list(weak.card_entries())
        assert entries == [("B1", "author", CardinalityInterval(1, 2))]


class TestPotentialSets:
    def test_pl(self, weak):
        sets = weak.potential_l_child_sets("B1", "author")
        assert set(sets) == {
            frozenset({"A1"}),
            frozenset({"A2"}),
            frozenset({"A1", "A2"}),
        }

    def test_pc_counts(self, weak):
        assert weak.count_potential_child_sets("B1") == 3
        assert weak.count_potential_child_sets("R") == 4
        assert len(list(weak.potential_child_sets("R"))) == 4

    def test_membership_without_enumeration(self, weak):
        assert weak.is_potential_child_set("B1", frozenset({"A1"}))
        assert not weak.is_potential_child_set("B1", frozenset())  # card.min = 1
        assert not weak.is_potential_child_set("B1", frozenset({"B2"}))


class TestWeakInstanceGraph:
    def test_edges_follow_lch(self, weak):
        graph = weak.graph()
        assert graph.has_edge("R", "B1")
        assert graph.label("R", "B1") == "book"
        assert graph.has_edge("B1", "A2")

    def test_zero_max_card_removes_edges(self, weak):
        weak.set_card("R", "book", CardinalityInterval(0, 0))
        assert not weak.graph().has_edge("R", "B1")

    def test_graph_cache_invalidated_on_mutation(self, weak):
        graph_before = weak.graph()
        weak.set_lch("B2", "title", ["T1"])
        assert weak.graph() is not graph_before
        assert weak.graph().has_edge("B2", "T1")

    def test_acyclic_and_tree(self, weak):
        assert weak.is_acyclic()
        assert weak.is_tree()

    def test_dag_is_not_tree(self, weak):
        weak.set_lch("B2", "author2", ["A1"])
        assert weak.is_acyclic()
        assert not weak.is_tree()


class TestValidation:
    def test_valid_instance_passes(self, weak):
        weak.validate()

    def test_cycle_rejected(self):
        w = WeakInstance("a")
        w.set_lch("a", "l", ["b"])
        w.set_lch("b", "l", ["a"])
        with pytest.raises(CyclicModelError):
            w.validate()

    def test_unreachable_object_rejected(self, weak):
        weak.add_object("island")
        with pytest.raises(ModelError):
            weak.validate()

    def test_unsatisfiable_card_rejected(self, weak):
        weak.set_card("R", "book", CardinalityInterval(3, 3))
        with pytest.raises(CardinalityError):
            weak.validate()

    def test_value_without_type_rejected(self, weak):
        weak.set_val("A2", "x")
        with pytest.raises(TypeDomainError):
            weak.validate()

    def test_value_checked_against_type(self, weak):
        with pytest.raises(TypeDomainError):
            weak.set_val("A1", "not-in-domain")
