"""Tests for Theorem 2: factoring global interpretations."""

import random

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import NotFactorizableError
from repro.semantics.factorization import factorize
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.instance import SemistructuredInstance
from repro.semistructured.types import LeafType

from tests.helpers import random_dag_instance, random_tree_instance


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_tree_round_trip(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        interpretation = GlobalInterpretation.from_local(pi)
        recovered = factorize(pi.weak, interpretation, check=True)
        rebuilt = GlobalInterpretation.from_local(recovered)
        assert rebuilt.is_close_to(interpretation)

    @pytest.mark.parametrize("seed", range(3))
    def test_dag_round_trip(self, seed):
        pi = random_dag_instance(random.Random(seed))
        interpretation = GlobalInterpretation.from_local(pi)
        recovered = factorize(pi.weak, interpretation, check=True)
        assert GlobalInterpretation.from_local(recovered).is_close_to(interpretation)

    def test_recovered_opfs_match_original(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"], card=(0, 1))
        builder.opf("r", {(): 0.3, ("a",): 0.7})
        builder.leaf("a", "t", ["x", "y"], {"x": 0.6, "y": 0.4})
        pi = builder.build()
        recovered = factorize(pi.weak, GlobalInterpretation.from_local(pi))
        assert recovered.opf("r").prob(frozenset({"a"})) == pytest.approx(0.7)
        assert recovered.vpf("a").prob("x") == pytest.approx(0.6)

    def test_never_occurring_object_gets_uniform(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"], card=(0, 1))
        builder.opf("r", {(): 1.0})  # 'a' never occurs
        builder.children("a", "m", ["b"], card=(0, 1))
        builder.opf("a", {(): 0.5, ("b",): 0.5})
        builder.leaf("b", "t", ["x"], {"x": 1.0})
        pi = builder.build()
        recovered = factorize(pi.weak, GlobalInterpretation.from_local(pi))
        # a's OPF is unconstrained by P; the factorization picks uniform.
        assert recovered.opf("a").prob(frozenset()) == pytest.approx(0.5)


class TestNonFactorizable:
    def test_sibling_child_correlation_is_factorizable(self):
        # Correlation among children of the SAME object is expressible in
        # its OPF — this is the expressiveness edge over ProTDB — so the
        # all-or-nothing sibling distribution factorizes fine.
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b"], card=(0, 2))
        builder.opf("r", {(): 0.5, ("a", "b"): 0.25, ("a",): 0.25})
        builder.leaf("a", "t", ["x"], {"x": 1.0})
        builder.leaf("b", "t", vpf={"x": 1.0})
        pi = builder.build()
        t = LeafType("t", ["x"])
        w_empty = SemistructuredInstance("r")
        w_both = SemistructuredInstance("r")
        w_both.add_edge("r", "a", "l")
        w_both.add_edge("r", "b", "l")
        w_both.set_leaf("a", t, "x")
        w_both.set_leaf("b", t, "x")
        interpretation = GlobalInterpretation({w_empty: 0.5, w_both: 0.5})
        recovered = factorize(pi.weak, interpretation, check=True)
        assert recovered.opf("r").prob(frozenset({"a", "b"})) == pytest.approx(0.5)

    def test_cross_object_correlation_rejected(self):
        # Correlation between the VALUES of two different leaves cannot be
        # factored into per-object local functions.
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b"], card=(2, 2))
        builder.opf("r", {("a", "b"): 1.0})
        builder.leaf("a", "t", ["x", "y"], {"x": 0.5, "y": 0.5})
        builder.leaf("b", "t", vpf={"x": 0.5, "y": 0.5})
        pi = builder.build()

        t = LeafType("t", ["x", "y"])

        def world(va, vb):
            w = SemistructuredInstance("r")
            w.add_edge("r", "a", "l")
            w.add_edge("r", "b", "l")
            w.set_leaf("a", t, va)
            w.set_leaf("b", t, vb)
            return w

        # Perfectly correlated leaf values: P(x,x) = P(y,y) = 0.5.
        interpretation = GlobalInterpretation({world("x", "x"): 0.5,
                                               world("y", "y"): 0.5})
        with pytest.raises(NotFactorizableError):
            factorize(pi.weak, interpretation, check=True)

    def test_check_false_skips_verification(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"], card=(0, 1))
        builder.opf("r", {(): 0.5, ("a",): 0.5})
        builder.children("a", "m", ["b"], card=(0, 1))
        builder.opf("a", {(): 0.5, ("b",): 0.5})
        builder.leaf("b", "t", ["x", "y"], {"x": 0.5, "y": 0.5})
        pi = builder.build()
        t = LeafType("t", ["x", "y"])
        w_r = SemistructuredInstance("r")
        w_ab = SemistructuredInstance("r")
        w_ab.add_edge("r", "a", "l")
        w_ab.add_edge("a", "b", "m")
        w_ab.set_leaf("b", t, "x")
        interpretation = GlobalInterpretation({w_r: 0.5, w_ab: 0.5})
        recovered = factorize(pi.weak, interpretation, check=False)
        recovered.validate()  # still a coherent instance, just a different P
