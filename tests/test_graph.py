"""Unit tests for the edge-labeled directed graph substrate."""

import pytest

from repro.errors import UnknownObjectError
from repro.semistructured.graph import EdgeLabeledGraph


@pytest.fixture
def diamond():
    """r -> a, b -> c (a DAG with a shared child)."""
    g = EdgeLabeledGraph()
    g.add_edge("r", "a", "x")
    g.add_edge("r", "b", "y")
    g.add_edge("a", "c", "z")
    g.add_edge("b", "c", "z")
    return g


class TestConstruction:
    def test_add_vertex_idempotent(self):
        g = EdgeLabeledGraph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert len(g) == 1

    def test_add_edge_creates_vertices(self):
        g = EdgeLabeledGraph()
        g.add_edge("a", "b", "l")
        assert "a" in g and "b" in g
        assert g.num_edges() == 1

    def test_readding_edge_overwrites_label(self):
        g = EdgeLabeledGraph()
        g.add_edge("a", "b", "l1")
        g.add_edge("a", "b", "l2")
        assert g.label("a", "b") == "l2"
        assert g.num_edges() == 1

    def test_remove_edge(self, diamond):
        diamond.remove_edge("a", "c")
        assert not diamond.has_edge("a", "c")
        assert diamond.has_edge("b", "c")

    def test_remove_missing_edge_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.remove_edge("r", "c")

    def test_remove_vertex_drops_incident_edges(self, diamond):
        diamond.remove_vertex("c")
        assert "c" not in diamond
        assert diamond.children("a") == frozenset()
        assert diamond.children("b") == frozenset()

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_edge("c", "d", "w")
        assert "d" not in diamond
        assert "d" in clone

    def test_labels_collected(self, diamond):
        assert diamond.labels == frozenset({"x", "y", "z"})


class TestDefinition32:
    def test_children(self, diamond):
        assert diamond.children("r") == frozenset({"a", "b"})

    def test_parents(self, diamond):
        assert diamond.parents("c") == frozenset({"a", "b"})

    def test_lch_filters_by_label(self, diamond):
        assert diamond.lch("r", "x") == frozenset({"a"})
        assert diamond.lch("r", "y") == frozenset({"b"})
        assert diamond.lch("r", "nope") == frozenset()

    def test_out_labels(self, diamond):
        assert diamond.out_labels("r") == frozenset({"x", "y"})

    def test_leaf_detection(self, diamond):
        assert diamond.is_leaf("c")
        assert not diamond.is_leaf("r")
        assert diamond.leaves() == frozenset({"c"})

    def test_descendants(self, diamond):
        assert diamond.descendants("r") == frozenset({"a", "b", "c"})
        assert diamond.descendants("a") == frozenset({"c"})
        assert diamond.descendants("c") == frozenset()

    def test_non_descendants_excludes_self(self, diamond):
        assert diamond.non_descendants("a") == frozenset({"r", "b"})

    def test_ancestors(self, diamond):
        assert diamond.ancestors("c") == frozenset({"a", "b", "r"})
        assert diamond.ancestors("r") == frozenset()

    def test_unknown_vertex_raises(self, diamond):
        with pytest.raises(UnknownObjectError):
            diamond.children("ghost")


class TestStructure:
    def test_diamond_is_acyclic(self, diamond):
        assert diamond.is_acyclic()

    def test_cycle_detected(self):
        g = EdgeLabeledGraph()
        g.add_edge("a", "b", "l")
        g.add_edge("b", "a", "l")
        assert not g.is_acyclic()
        assert g.topological_order() is None

    def test_self_loop_detected(self):
        g = EdgeLabeledGraph()
        g.add_edge("a", "a", "l")
        assert not g.is_acyclic()

    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for src, dst, _ in diamond.edges():
            assert position[src] < position[dst]

    def test_diamond_is_not_tree(self, diamond):
        assert not diamond.is_tree("r")

    def test_tree_detected(self):
        g = EdgeLabeledGraph()
        g.add_edge("r", "a", "l")
        g.add_edge("r", "b", "l")
        g.add_edge("a", "c", "l")
        assert g.is_tree("r")
        assert not g.is_tree("a")

    def test_disconnected_vertex_breaks_tree(self):
        g = EdgeLabeledGraph()
        g.add_edge("r", "a", "l")
        g.add_vertex("island")
        assert not g.is_tree("r")

    def test_roots(self, diamond):
        assert diamond.roots() == frozenset({"r"})

    def test_reachable_from(self, diamond):
        assert diamond.reachable_from("a") == frozenset({"a", "c"})

    def test_induced_subgraph(self, diamond):
        sub = diamond.induced_subgraph({"r", "a", "c"})
        assert sub.has_edge("r", "a")
        assert sub.has_edge("a", "c")
        assert not sub.has_edge("r", "b")
        assert len(sub) == 3

    def test_equality(self, diamond):
        assert diamond == diamond.copy()
        other = diamond.copy()
        other.add_edge("c", "d", "w")
        assert diamond != other
