"""Tests for descendant/single projection on probabilistic instances."""

import random

import pytest

from repro.algebra.projection_more import (
    descendant_projection_global,
    descendant_projection_local,
    single_projection_global,
    single_projection_local,
)
from repro.algebra.selection import ObjectCardinalityCondition, select_global, select_local
from repro.core.builder import InstanceBuilder
from repro.core.cardinality import CardinalityInterval
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression

from tests.helpers import random_tree_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1", "A2"])
    builder.opf("B1", {("A1",): 0.5, ("A2",): 0.2, ("A1", "A2"): 0.3})
    builder.children("B2", "author", ["A3"])
    builder.opf("B2", {("A3",): 0.6, (): 0.4})
    builder.children("A1", "inst", ["I1"])
    builder.opf("A1", {("I1",): 0.7, (): 0.3})
    builder.leaf("I1", "place", ["MD"], {"MD": 1.0})
    builder.leaf("A2", "name", ["x", "y"], {"x": 0.6, "y": 0.4})
    builder.leaf("A3", "name", vpf={"y": 1.0})
    return builder.build()


class TestDescendantProjection:
    def test_local_matches_global(self, tree):
        reference = descendant_projection_global(tree, "R.book.author")
        local = descendant_projection_local(tree, "R.book.author")
        local.validate()
        assert GlobalInterpretation.from_local(local).is_close_to(reference)

    def test_keeps_subtrees_below_matches(self, tree):
        local = descendant_projection_local(tree, "R.book.author")
        assert "I1" in local  # institution below matched author A1
        assert local.opf("A1").prob(frozenset({"I1"})) == pytest.approx(0.7)

    def test_shallow_path_local_matches_global(self, tree):
        reference = descendant_projection_global(tree, "R.book")
        local = descendant_projection_local(tree, "R.book")
        local.validate()
        assert GlobalInterpretation.from_local(local).is_close_to(reference)

    def test_matched_leaf_path_equals_ancestor(self, tree):
        from repro.algebra.projection_prob import ancestor_projection_local

        # When matches are leaves, descendant == ancestor projection.
        path = "R.book.author.inst"
        a = ancestor_projection_local(tree, path)
        d = descendant_projection_local(tree, path)
        assert GlobalInterpretation.from_local(a).is_close_to(
            GlobalInterpretation.from_local(d)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_trees(self, seed):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=3, max_children=2)
        labels = sorted(pi.weak.graph().labels)
        path = PathExpression(pi.root, (rng.choice(labels), rng.choice(labels)))
        reference = descendant_projection_global(pi, path)
        local = descendant_projection_local(pi, path)
        assert GlobalInterpretation.from_local(local).is_close_to(reference)


class TestSingleProjection:
    def test_local_matches_global(self, tree):
        reference = single_projection_global(tree, "R.book.author")
        local = single_projection_local(tree, "R.book.author")
        local.validate()
        assert GlobalInterpretation.from_local(local).is_close_to(reference)

    def test_matches_attached_to_root(self, tree):
        local = single_projection_local(tree, "R.book.author")
        assert local.lch("R", "author") == frozenset({"A1", "A2", "A3"})
        assert len(local) == 4

    def test_root_opf_captures_sibling_correlation(self, tree):
        # A1 and A2 share the ancestor B1: the joint presence probability
        # differs from the product of the marginals, and the root OPF must
        # carry exactly that correlation.
        local = single_projection_local(tree, "R.book.author")
        worlds = GlobalInterpretation.from_local(local)
        p_a1 = worlds.prob_object_exists("A1")
        p_a2 = worlds.prob_object_exists("A2")
        joint = worlds.event_probability(lambda w: "A1" in w and "A2" in w)
        assert joint != pytest.approx(p_a1 * p_a2)

    def test_leaf_values_survive(self, tree):
        local = single_projection_local(tree, "R.book.author")
        assert local.vpf("A2").prob("x") == pytest.approx(0.6)

    def test_empty_match(self, tree):
        local = single_projection_local(tree, "R.nothing")
        assert len(local) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_random_trees(self, seed):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        labels = sorted(pi.weak.graph().labels)
        path = PathExpression(pi.root, (rng.choice(labels), rng.choice(labels)))
        reference = single_projection_global(pi, path)
        local = single_projection_local(pi, path)
        assert GlobalInterpretation.from_local(local).is_close_to(reference)


class TestObjectCardinalitySelection:
    def test_local_matches_global(self, tree):
        condition = ObjectCardinalityCondition(
            PathExpression.parse("R.book"), "B1", "author", CardinalityInterval(2, 2)
        )
        reference = select_global(tree, condition)
        local = select_local(tree, condition)
        local.instance.validate()
        assert GlobalInterpretation.from_local(local.instance).is_close_to(reference)
        # P(B1 present) * P(two authors | B1) = 0.7 * 0.3.
        assert local.probability == pytest.approx(0.7 * 0.3)

    def test_conditioned_opf_support(self, tree):
        condition = ObjectCardinalityCondition(
            PathExpression.parse("R.book"), "B1", "author", CardinalityInterval(1, 1)
        )
        local = select_local(tree, condition)
        for child_set, _ in local.instance.opf("B1").support():
            assert len(child_set) == 1

    def test_unsatisfiable_interval_raises(self, tree):
        from repro.errors import EmptyResultError

        condition = ObjectCardinalityCondition(
            PathExpression.parse("R.book"), "B2", "author", CardinalityInterval(5, 9)
        )
        with pytest.raises(EmptyResultError):
            select_local(tree, condition)

    def test_leaf_target_rejected(self, tree):
        from repro.errors import EmptyResultError

        condition = ObjectCardinalityCondition(
            PathExpression.parse("R.book.author.inst"), "I1", "x",
            CardinalityInterval(0, 0),
        )
        with pytest.raises(EmptyResultError):
            select_local(tree, condition)
