"""Tests for the persistent, shared result-cache segment."""

from repro.engine.diskcache import (
    DiskResultCache,
    decode_value,
    encode_value,
    result_key,
)
from repro.obs.metrics import MetricsRegistry
from repro.paper import figure2_instance
from repro.pxql.interpreter import Interpreter
from repro.storage.database import Database

QUERY = "EXISTS R.book.author IN a"


def _populated(tmp_path):
    db = Database(tmp_path)
    db.register("a", figure2_instance())
    db.save("a")
    return db


class TestSegment:
    def test_store_and_lookup_roundtrip(self, tmp_path):
        cache = DiskResultCache(tmp_path, metrics=MetricsRegistry())
        inputs = (("a", "abc123"),)
        key = result_key("Exists(Scan(a))", inputs)
        assert cache.lookup(key, inputs) is None
        assert cache.store(
            key, 3, inputs, {"kind": "scalar", "data": 0.5},
            extra={}, stats={},
        )
        entry = cache.lookup(key, inputs)
        assert entry is not None
        assert decode_value(entry.value) == 0.5

    def test_sibling_process_sees_appends(self, tmp_path):
        registry = MetricsRegistry()
        writer = DiskResultCache(tmp_path, metrics=registry)
        reader = DiskResultCache(tmp_path, metrics=registry)
        inputs = (("a", "abc"),)
        key = result_key("fp", inputs)
        writer.store(key, 1, inputs, {"kind": "scalar", "data": 1},
                     extra={}, stats={})
        # The reader refreshes its tail on the miss and finds the spill.
        assert reader.lookup(key, inputs) is not None

    def test_corrupt_line_is_a_silent_miss(self, tmp_path):
        registry = MetricsRegistry()
        cache = DiskResultCache(tmp_path, metrics=registry)
        inputs = (("a", "abc"),)
        key = result_key("fp", inputs)
        cache.store(key, 1, inputs, {"kind": "scalar", "data": 1},
                    extra={}, stats={})
        raw = bytearray(cache.path.read_bytes())
        raw[len(raw) // 2] ^= 0x41
        cache.path.write_bytes(bytes(raw))

        fresh = DiskResultCache(tmp_path, metrics=registry)
        assert fresh.lookup(key, inputs) is None
        assert registry.value("engine.cache.disk_corrupt") >= 1

    def test_mismatched_inputs_are_a_miss(self, tmp_path):
        cache = DiskResultCache(tmp_path, metrics=MetricsRegistry())
        inputs = (("a", "abc"),)
        key = result_key("fp", inputs)
        cache.store(key, 1, inputs, {"kind": "scalar", "data": 1},
                    extra={}, stats={})
        assert cache.lookup(key, (("a", "OTHER"),)) is None

    def test_compaction_dedups_newest_wins(self, tmp_path):
        cache = DiskResultCache(
            tmp_path, metrics=MetricsRegistry(), max_segment_bytes=1
        )
        inputs = (("a", "abc"),)
        key = result_key("fp", inputs)
        for value in (1, 2, 3):
            cache.store(key, value, inputs,
                        {"kind": "scalar", "data": value},
                        extra={}, stats={})
        lines = [
            line for line in
            cache.path.read_text(encoding="utf-8").splitlines() if line
        ]
        assert len(lines) == 1
        entry = cache.lookup(key, inputs)
        assert entry is not None and decode_value(entry.value) == 3

    def test_oversize_entry_is_skipped(self, tmp_path):
        registry = MetricsRegistry()
        cache = DiskResultCache(
            tmp_path, metrics=registry, max_entry_bytes=16
        )
        inputs = (("a", "abc"),)
        assert not cache.store(
            result_key("fp", inputs), 1, inputs,
            {"kind": "scalar", "data": "x" * 100}, extra={}, stats={},
        )
        assert registry.value("engine.cache.disk_skipped") == 1

    def test_value_codec_covers_result_kinds(self):
        instance = figure2_instance()
        encoded = encode_value(instance)
        assert encoded is not None
        assert len(decode_value(encoded)) == len(instance)
        pairs = encode_value({1: 0.25, 2: 0.75})
        assert decode_value(pairs) == {1: 0.25, 2: 0.75}
        assert decode_value(encode_value(0.5)) == 0.5
        assert encode_value(object()) is None


class TestEngineIntegration:
    def test_restart_serves_from_disk(self, tmp_path):
        db = _populated(tmp_path)
        first = Interpreter(database=db)
        cold = first.execute(QUERY).value
        assert first.engine.metrics.value("engine.cache.disk_spills") >= 1
        assert (tmp_path / "cache" / "results.segment").exists()

        # A fresh Database + Interpreter over the same directory is the
        # process-restart simulation: all in-memory state is gone.
        restarted = Interpreter(database=Database(tmp_path))
        warm = restarted.execute(QUERY).value
        assert warm == cold
        metrics = restarted.engine.metrics
        assert metrics.value("engine.cache.disk_loaded") >= 1
        assert metrics.value("engine.cache.disk_hits") >= 1

    def test_dirty_instance_bypasses_disk(self, tmp_path):
        db = _populated(tmp_path)
        interp = Interpreter(database=db)
        interp.execute(QUERY)
        db.touch("a")  # in-memory divergence: disk results are stale
        interp.execute(QUERY)
        assert interp.engine.metrics.value("engine.cache.disk_hits") == 0
        db.save("a")  # clean again: the disk cache re-engages
        interp.execute(QUERY)
        assert interp.engine.metrics.value("engine.cache.disk_hits") == 1

    def test_memoryless_database_disables_disk(self):
        db = Database()
        db.register("a", figure2_instance())
        interp = Interpreter(database=db)
        assert interp.engine.disk_cache is None
        assert interp.execute(QUERY).value is not None

    def test_cache_stats_expose_disk_section(self, tmp_path):
        interp = Interpreter(database=_populated(tmp_path))
        interp.execute(QUERY)
        stats = interp.engine.cache_stats
        assert "disk" in stats
        assert stats["disk"]["spills"] >= 1

    def test_corrupt_segment_degrades_to_recompute(self, tmp_path):
        db = _populated(tmp_path)
        cold = Interpreter(database=db).execute(QUERY).value
        segment = tmp_path / "cache" / "results.segment"
        segment.write_text("garbage not json\n", encoding="utf-8")

        restarted = Interpreter(database=Database(tmp_path))
        assert restarted.execute(QUERY).value == cold
