"""Tests for ``python -m repro.check`` (repro.check.cli)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check.cli import collect_diagnostics, main
from repro.core.builder import InstanceBuilder
from repro.io.json_codec import write_instance

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def write_sloppy(path):
    b = InstanceBuilder("S")
    b.children("S", "x", ["a", "b"])
    b.opf("S", {("a",): 1.0, ("a", "b"): 0.0})
    b.leaf("a", "t", ["v"], {"v": 1.0})
    b.leaf("b", "t", None, {"v": 1.0})
    write_instance(b.build(), path)


class TestCollect:
    def test_examples_corpus_is_error_free(self):
        report = collect_diagnostics([str(EXAMPLES)])
        assert report.count("error") == 0
        # ... but the deliberately sloppy fixture does produce findings.
        assert any(
            "sloppy" in (d.subject or "") for d in report.diagnostics
        )
        assert report.count("warning") >= 1

    def test_instance_file(self, tmp_path):
        target = tmp_path / "one.pxml.json"
        write_sloppy(target)
        report = collect_diagnostics([str(target)])
        assert any(d.code == "PX112" for d in report.diagnostics)

    def test_unreadable_instance_file(self, tmp_path):
        target = tmp_path / "junk.pxml.json"
        target.write_text("{not json")
        report = collect_diagnostics([str(target)])
        assert any(d.code == "PX120" for d in report.diagnostics)
        assert report.fails("error")

    def test_script_checks_against_sibling_instances(self, tmp_path):
        write_sloppy(tmp_path / "s.pxml.json")
        script = tmp_path / "queries.pxql"
        script.write_text(
            "# comment\n"
            "EXISTS S.x IN s\n"
            "PROJECT S.nothing FROM s\n"
            "EXISTS S.x IN ghost\n"
        )
        report = collect_diagnostics([str(script)])
        by_code = {d.code for d in report.diagnostics}
        assert "PX210" in by_code     # never-match projection
        assert "PX201" in by_code     # unknown instance 'ghost'

    def test_script_trusts_earlier_as_targets(self, tmp_path):
        write_sloppy(tmp_path / "s.pxml.json")
        script = tmp_path / "session.pxql"
        script.write_text(
            "PROJECT S.x FROM s AS kept\n"
            "EXISTS S.x IN kept\n"
        )
        report = collect_diagnostics([str(script)])
        assert not any(d.code in ("PX201", "PX301")
                       for d in report.diagnostics)

    def test_syntax_error_becomes_px310(self, tmp_path):
        script = tmp_path / "bad.pxql"
        script.write_text("SELEKT gibberish\n")
        report = collect_diagnostics([str(script)])
        assert any(d.code == "PX310" for d in report.diagnostics)

    def test_suppression_only_hides_unknown_instance_findings(self, tmp_path):
        # The AS-name suppression is keyed on the exact name a
        # PX201/PX301 finding quotes: findings of other codes on later
        # statements must survive, and unknown-instance findings about
        # names the script never defines must too.
        write_sloppy(tmp_path / "s.pxml.json")
        script = tmp_path / "session.pxql"
        script.write_text(
            "PROJECT S.x FROM s AS kept\n"
            "EXISTS S.x IN kept\n"            # defined: suppressed
            "PROJECT S.nothing FROM s\n"      # dead path: PX210 stays
            "EXISTS S.x IN ghost\n"           # undefined: PX201 stays
        )
        report = collect_diagnostics([str(script)])
        by_code = {d.code for d in report.diagnostics}
        assert "PX210" in by_code
        unknowns = [d for d in report.diagnostics
                    if d.code in ("PX201", "PX301")]
        assert unknowns and all("ghost" in d.message for d in unknowns)

    def test_script_dataflow_findings_reported(self, tmp_path):
        write_sloppy(tmp_path / "s.pxml.json")
        script = tmp_path / "flow.pxql"
        script.write_text(
            "PROJECT S.x FROM s AS p\n"       # shadowed at line 3
            "SET TIMEOUT 5\n"
            "PROJECT S.x FROM s AS p WITH TIMEOUT 1\n"
            "PROJECT S.x FROM p AS q\n"       # q is never read: dead
        )
        report = collect_diagnostics([str(script)])
        found = {d.code: d for d in report.diagnostics}
        assert "PX313" in found and "PX314" in found and "PX312" in found
        # Dataflow findings carry file:line subjects like the rest.
        assert found["PX313"].subject == f"{script}:3"


class TestMain:
    def test_examples_gate_passes(self, capsys):
        assert main([str(EXAMPLES), "--fail-on", "error"]) == 0
        assert "warning" in capsys.readouterr().out

    def test_warning_gate_fails_on_examples(self, capsys):
        assert main([str(EXAMPLES), "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_json_format(self, capsys):
        assert main([str(EXAMPLES), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["error"] == 0
        assert isinstance(payload["diagnostics"], list)

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.check", str(EXAMPLES),
             "--format", "json", "--fail-on", "error"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["totals"]["error"] == 0

    def test_bad_path_is_error(self, tmp_path, capsys):
        bogus = tmp_path / "nope.txt"
        bogus.write_text("")
        assert main([str(bogus)]) == 1
        capsys.readouterr()

    def test_px_code_gate_fails_on_listed_code(self, tmp_path, capsys):
        write_sloppy(tmp_path / "s.pxml.json")
        script = tmp_path / "dead.pxql"
        script.write_text("PROJECT S.x FROM s AS unread\n")
        assert main([str(script), "--fail-on", "PX312"]) == 1
        assert main([str(script), "--fail-on", "PX311,PX313"]) == 0
        # Severity gates still behave: PX312 is only a warning.
        assert main([str(script), "--fail-on", "error"]) == 0
        capsys.readouterr()

    def test_examples_pass_the_px_code_gate(self, capsys):
        gate = "PX260,PX311,PX312,PX313,PX314"
        assert main([str(EXAMPLES), "--fail-on", gate]) == 0
        capsys.readouterr()

    def test_invalid_gate_value_rejected(self, capsys):
        with pytest.raises(SystemExit) as info:
            main([str(EXAMPLES), "--fail-on", "PX26"])
        assert info.value.code == 2
        capsys.readouterr()
