"""Tests for ``python -m repro.check`` (repro.check.cli)."""

import json
import subprocess
import sys
from pathlib import Path

from repro.check.cli import collect_diagnostics, main
from repro.core.builder import InstanceBuilder
from repro.io.json_codec import write_instance

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def write_sloppy(path):
    b = InstanceBuilder("S")
    b.children("S", "x", ["a", "b"])
    b.opf("S", {("a",): 1.0, ("a", "b"): 0.0})
    b.leaf("a", "t", ["v"], {"v": 1.0})
    b.leaf("b", "t", None, {"v": 1.0})
    write_instance(b.build(), path)


class TestCollect:
    def test_examples_corpus_is_error_free(self):
        report = collect_diagnostics([str(EXAMPLES)])
        assert report.count("error") == 0
        # ... but the deliberately sloppy fixture does produce findings.
        assert any(
            "sloppy" in (d.subject or "") for d in report.diagnostics
        )
        assert report.count("warning") >= 1

    def test_instance_file(self, tmp_path):
        target = tmp_path / "one.pxml.json"
        write_sloppy(target)
        report = collect_diagnostics([str(target)])
        assert any(d.code == "PX112" for d in report.diagnostics)

    def test_unreadable_instance_file(self, tmp_path):
        target = tmp_path / "junk.pxml.json"
        target.write_text("{not json")
        report = collect_diagnostics([str(target)])
        assert any(d.code == "PX120" for d in report.diagnostics)
        assert report.fails("error")

    def test_script_checks_against_sibling_instances(self, tmp_path):
        write_sloppy(tmp_path / "s.pxml.json")
        script = tmp_path / "queries.pxql"
        script.write_text(
            "# comment\n"
            "EXISTS S.x IN s\n"
            "PROJECT S.nothing FROM s\n"
            "EXISTS S.x IN ghost\n"
        )
        report = collect_diagnostics([str(script)])
        by_code = {d.code for d in report.diagnostics}
        assert "PX210" in by_code     # never-match projection
        assert "PX201" in by_code     # unknown instance 'ghost'

    def test_script_trusts_earlier_as_targets(self, tmp_path):
        write_sloppy(tmp_path / "s.pxml.json")
        script = tmp_path / "session.pxql"
        script.write_text(
            "PROJECT S.x FROM s AS kept\n"
            "EXISTS S.x IN kept\n"
        )
        report = collect_diagnostics([str(script)])
        assert not any(d.code in ("PX201", "PX301")
                       for d in report.diagnostics)

    def test_syntax_error_becomes_px310(self, tmp_path):
        script = tmp_path / "bad.pxql"
        script.write_text("SELEKT gibberish\n")
        report = collect_diagnostics([str(script)])
        assert any(d.code == "PX310" for d in report.diagnostics)


class TestMain:
    def test_examples_gate_passes(self, capsys):
        assert main([str(EXAMPLES), "--fail-on", "error"]) == 0
        assert "warning" in capsys.readouterr().out

    def test_warning_gate_fails_on_examples(self, capsys):
        assert main([str(EXAMPLES), "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_json_format(self, capsys):
        assert main([str(EXAMPLES), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["error"] == 0
        assert isinstance(payload["diagnostics"], list)

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.check", str(EXAMPLES),
             "--format", "json", "--fail-on", "error"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["totals"]["error"] == 0

    def test_bad_path_is_error(self, tmp_path, capsys):
        bogus = tmp_path / "nope.txt"
        bogus.write_text("")
        assert main([str(bogus)]) == 1
        capsys.readouterr()
