"""Tests for the ProTDB baseline and its translation into PXML."""

import pytest

from repro.errors import DistributionError, ModelError
from repro.protdb.model import ProTDBInstance, ProTDBNode
from repro.protdb.translate import protdb_world_distribution, to_pxml
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.types import LeafType

T = LeafType("t", ["v1", "v2"])


def make_instance():
    root = ProTDBNode("r")
    book = root.add_child("book", ProTDBNode("b1"), 0.8)
    book.add_child("title", ProTDBNode("t1", leaf_type=T, value="v1"), 0.9)
    book.add_child("author", ProTDBNode("a1", leaf_type=T, value="v2"), 0.5)
    root.add_child("book", ProTDBNode("b2", leaf_type=T, value="v1"), 0.3)
    return ProTDBInstance(root)


class TestModel:
    def test_tree_structure(self):
        instance = make_instance()
        assert len(instance) == 5
        assert instance.objects == frozenset({"r", "b1", "t1", "a1", "b2"})

    def test_nodes_preorder(self):
        nodes = [n.oid for n in make_instance().nodes()]
        assert nodes[0] == "r"
        assert set(nodes) == {"r", "b1", "t1", "a1", "b2"}

    def test_duplicate_oid_rejected(self):
        root = ProTDBNode("r")
        root.add_child("l", ProTDBNode("x"), 0.5)
        root.add_child("l", ProTDBNode("x"), 0.5)
        with pytest.raises(ModelError):
            ProTDBInstance(root)

    def test_bad_probability_rejected(self):
        with pytest.raises(DistributionError):
            ProTDBNode("r").add_child("l", ProTDBNode("x"), 1.5)

    def test_leaf_detection(self):
        node = ProTDBNode("x")
        assert node.is_leaf()
        node.add_child("l", ProTDBNode("y"), 0.1)
        assert not node.is_leaf()


class TestTranslation:
    def test_pxml_is_coherent(self):
        pxml = to_pxml(make_instance())
        pxml.validate()

    def test_independent_opfs_used(self):
        from repro.core.compact import IndependentOPF

        pxml = to_pxml(make_instance())
        assert isinstance(pxml.opf("r"), IndependentOPF)
        assert pxml.opf("r").marginal_inclusion("b1") == pytest.approx(0.8)

    def test_leaf_values_become_point_masses(self):
        pxml = to_pxml(make_instance())
        assert pxml.effective_vpf("t1").prob("v1") == 1.0

    def test_world_distributions_identical(self):
        protdb = make_instance()
        pxml = to_pxml(protdb)
        reference = protdb_world_distribution(protdb)
        translated = GlobalInterpretation.from_local(pxml)
        assert len(reference) == len(translated)
        for world, probability in reference.items():
            assert translated.prob(world) == pytest.approx(probability), world

    def test_protdb_distribution_sums_to_one(self):
        distribution = protdb_world_distribution(make_instance())
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_certain_children_collapse_worlds(self):
        root = ProTDBNode("r")
        root.add_child("l", ProTDBNode("a", leaf_type=T, value="v1"), 1.0)
        distribution = protdb_world_distribution(ProTDBInstance(root))
        assert len(distribution) == 1

    def test_pxml_queries_work_on_translation(self):
        from repro.queries.engine import QueryEngine

        pxml = to_pxml(make_instance())
        engine = QueryEngine(pxml)
        assert engine.point("r.book.author", "a1") == pytest.approx(0.8 * 0.5)

    def test_labels_partition_children(self):
        pxml = to_pxml(make_instance())
        assert pxml.lch("r", "book") == frozenset({"b1", "b2"})
        assert pxml.lch("b1", "title") == frozenset({"t1"})


class TestSubsumptionLimit:
    def test_correlated_children_not_expressible_in_protdb(self):
        # PXML can give correlated children (all-or-nothing); the closest
        # ProTDB independent model has a strictly different distribution —
        # the subsumption is strict.
        from repro.core.builder import InstanceBuilder

        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b"], card=(0, 2))
        builder.opf("r", {(): 0.5, ("a", "b"): 0.5})
        builder.leaf("a", "t", ["v1"], {"v1": 1.0})
        builder.leaf("b", "t", vpf={"v1": 1.0})
        pxml = builder.build()
        worlds = GlobalInterpretation.from_local(pxml)
        p_a = worlds.prob_object_exists("a")
        p_b = worlds.prob_object_exists("b")
        joint = worlds.event_probability(lambda w: "a" in w and "b" in w)
        # Under any ProTDB (independent) model, joint = p_a * p_b.
        assert joint != pytest.approx(p_a * p_b)
