"""Unit tests for repro.resilience: budgets, retry, breaker, faults,
graceful engine degradation, and the PXQL timeout surface."""

import random

import pytest

from repro.errors import BudgetExceeded, FaultError, PXMLError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.paper import figure2_instance
from repro.pxql.interpreter import Interpreter
from repro.pxql.lexer import PXQLSyntaxError
from repro.pxql.parser import parse
from repro.pxql import ast
from repro.resilience import (
    Budget,
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    current_budget,
    fault_point,
    retry_call,
    use_budget,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Budget
# ----------------------------------------------------------------------
class TestBudget:
    def test_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline_s=1.0, clock=clock).start()
        budget.check_deadline("here")  # within
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded) as info:
            budget.check_deadline("here")
        assert info.value.limit == "deadline"
        assert info.value.where == "here"

    def test_node_evals(self):
        budget = Budget(max_node_evals=2)
        budget.tick_node("a")
        budget.tick_node("b")
        with pytest.raises(BudgetExceeded) as info:
            budget.tick_node("c")
        assert info.value.limit == "node_evals"
        assert info.value.where == "c"

    def test_result_objects(self):
        budget = Budget(max_result_objects=10)
        budget.charge_objects(6, "x")
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_objects(6, "y")
        assert info.value.limit == "result_objects"

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        for _ in range(1000):
            budget.tick_node()
        budget.charge_objects(10**9)
        budget.check_deadline()

    def test_ambient_install(self):
        assert current_budget() is None
        budget = Budget(deadline_s=5.0)
        with use_budget(budget) as active:
            assert active is budget
            assert current_budget() is budget
            assert budget.started_at is not None
        assert current_budget() is None

    def test_exceed_bumps_metric(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            budget = Budget(max_node_evals=0)
            with pytest.raises(BudgetExceeded):
                budget.tick_node()
        assert registry.counter("budget.exceeded").value == 1.0


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay_s=0.01, jitter=0.0)
        assert retry_call(flaky, policy, sleep=sleeps.append) == "ok"
        assert len(calls) == 3
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhausted_raises_last_error(self):
        def always():
            raise OSError("permanent")

        policy = RetryPolicy(attempts=2, base_delay_s=0.0)
        with pytest.raises(OSError, match="permanent"):
            retry_call(always, policy, sleep=lambda _s: None)

    def test_give_up_on_beats_retry_on(self):
        calls = []

        def vanish():
            calls.append(1)
            raise FileNotFoundError("gone")

        policy = RetryPolicy(attempts=5, base_delay_s=0.0)
        with pytest.raises(FileNotFoundError):
            retry_call(
                vanish, policy,
                retry_on=(OSError,), give_up_on=(FileNotFoundError,),
                sleep=lambda _s: None,
            )
        assert len(calls) == 1  # no retries for a vanished file

    def test_unmatched_exceptions_propagate_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not an OSError")

        with pytest.raises(ValueError):
            retry_call(boom, RetryPolicy(attempts=5), sleep=lambda _s: None)
        assert len(calls) == 1

    def test_retries_are_counted(self):
        registry = MetricsRegistry()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("transient")
            return 42

        with use_registry(registry):
            retry_call(flaky, RetryPolicy(attempts=3, base_delay_s=0.0),
                       sleep=lambda _s: None, site="test")
        assert registry.counter("resilience.retries").value == 1.0

    def test_jitter_is_seeded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=7)
        a = [policy.delay_for(i, random.Random(7)) for i in range(4)]
        b = [policy.delay_for(i, random.Random(7)) for i in range(4)]
        assert a == b
        assert all(d >= 0.0 for d in a)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.15, jitter=0.0)
        assert policy.delay_for(0, random.Random(0)) == pytest.approx(0.1)
        assert policy.delay_for(5, random.Random(0)) == pytest.approx(0.15)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(11.0)
        assert breaker.allow()  # probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_retrips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, reset_after_s=1.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()  # a single half-open failure re-trips
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_trip_metrics(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            breaker = CircuitBreaker(
                name="unit", failure_threshold=1, clock=FakeClock()
            )
            breaker.record_failure()
        assert registry.counter("resilience.breaker_trips").value == 1.0
        assert registry.gauge("resilience.breaker_open.unit").value == 1.0


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_noop_without_injector(self):
        assert fault_point("nowhere") is None
        assert fault_point("nowhere", "payload") == "payload"

    def test_nth_and_times_schedule(self):
        spec = FaultSpec("site.a", kind="error", nth=2, times=2)
        with FaultInjector(spec) as injector:
            fault_point("site.a")  # visit 1: armed but not yet firing
            with pytest.raises(FaultError):
                fault_point("site.a")  # visit 2 fires
            with pytest.raises(FaultError):
                fault_point("site.a")  # visit 3 fires (times=2)
            fault_point("site.a")  # exhausted
        assert injector.fired() == 2
        assert [e.visit for e in injector.events] == [2, 3]

    def test_custom_exception_type(self):
        with FaultInjector(FaultSpec("io", exception=OSError)):
            with pytest.raises(OSError):
                fault_point("io")

    def test_pattern_matching(self):
        with FaultInjector(FaultSpec("engine.cache.*", times=None)) as injector:
            with pytest.raises(FaultError):
                fault_point("engine.cache.results.get")
            with pytest.raises(FaultError):
                fault_point("engine.cache.plans.put")
            fault_point("engine.other")  # no match
        assert injector.fired("engine.cache.*") == 2

    def test_corrupt_breaks_json(self):
        import json

        text = '{"k": [1, 2, 3]}'
        with FaultInjector(FaultSpec("payload", kind="corrupt")):
            mangled = fault_point("payload", text)
        assert mangled != text
        assert "\x00" in mangled
        with pytest.raises(json.JSONDecodeError):
            json.loads(mangled)

    def test_probability_is_seeded(self):
        def run(seed):
            fired = []
            spec = FaultSpec("p", kind="error", probability=0.5, times=None)
            with FaultInjector(spec, seed=seed) as injector:
                for _ in range(50):
                    try:
                        fault_point("p")
                        fired.append(0)
                    except FaultError:
                        fired.append(1)
            return fired

        assert run(13) == run(13)
        assert run(13) != run(14)

    def test_slow_uses_injected_sleep(self):
        sleeps = []
        spec = FaultSpec("s", kind="slow", delay_s=0.5)
        with FaultInjector(spec, sleep=sleeps.append):
            fault_point("s")
        assert sleeps == [0.5]

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("x", kind="explode")
        with pytest.raises(ValueError):
            FaultSpec("x", nth=0)


# ----------------------------------------------------------------------
# Graceful engine degradation
# ----------------------------------------------------------------------
def _fig2_interpreter(**kwargs):
    interpreter = Interpreter(check="off", **kwargs)
    interpreter.database.register("fig2", figure2_instance())
    return interpreter


def _break_optimizer(monkeypatch):
    def explode(plan, cost, rules):
        raise RuntimeError("optimizer bug")

    import repro.engine.executor as executor_module

    monkeypatch.setattr(executor_module, "optimize", explode)


class TestEngineDegradation:
    def test_optimizer_error_degrades_to_unoptimized_plan(self, monkeypatch):
        interpreter = _fig2_interpreter()
        _break_optimizer(monkeypatch)
        result = interpreter.execute("PROB B1 IN fig2")
        assert result.value == pytest.approx(0.8)
        assert interpreter.metrics.counter(
            "resilience.optimizer_errors"
        ).value >= 1.0

    def test_breaker_trips_after_repeated_optimizer_failures(self, monkeypatch):
        interpreter = _fig2_interpreter()
        engine = interpreter.engine
        _break_optimizer(monkeypatch)
        threshold = engine.breaker.failure_threshold
        for _ in range(threshold + 2):
            value = interpreter.execute("PROB B1 IN fig2").value
            assert value == pytest.approx(0.8)
        assert engine.breaker.state == "open"
        # Once open the optimizer is not consulted at all; queries keep
        # answering on the degraded path.
        value = interpreter.execute("EXISTS R.book IN fig2").value
        assert 0.0 <= value <= 1.0

    def test_cache_get_faults_never_fail_a_query(self):
        interpreter = _fig2_interpreter()
        with FaultInjector(
            FaultSpec("engine.cache.*", kind="error", times=None)
        ) as injector:
            value = interpreter.execute("PROB B1 IN fig2").value
        assert value == pytest.approx(0.8)
        assert injector.fired() >= 1
        assert interpreter.metrics.counter(
            "resilience.cache_errors"
        ).value >= 1.0

    def test_statement_falls_back_to_naive_path(self):
        interpreter = _fig2_interpreter()

        def explode(statement):
            raise RuntimeError("engine exploded")

        interpreter.engine.execute_statement = explode
        result = interpreter.execute("PROB B1 IN fig2")
        assert result.value == pytest.approx(0.8)
        assert interpreter.strategy == "engine"  # restored after fallback
        assert len(interpreter.fallbacks) == 1
        label, error = interpreter.fallbacks[0]
        assert "PROB" in label and "exploded" in str(error)
        assert interpreter.metrics.counter(
            "resilience.fallbacks"
        ).value == 1.0

    def test_budget_errors_are_not_degraded(self):
        interpreter = _fig2_interpreter()

        def explode(statement):
            raise BudgetExceeded("over budget")

        interpreter.engine.execute_statement = explode
        with pytest.raises(BudgetExceeded):
            interpreter.execute("PROB B1 IN fig2")
        assert interpreter.fallbacks == []

    def test_catalog_errors_are_not_degraded(self):
        interpreter = _fig2_interpreter()
        from repro.storage.database import DatabaseError

        with pytest.raises(DatabaseError):
            interpreter.execute("PROB B1 IN nonexistent")
        assert interpreter.fallbacks == []


# ----------------------------------------------------------------------
# PXQL timeout surface
# ----------------------------------------------------------------------
class TestPXQLTimeouts:
    def test_parse_set_timeout(self):
        statement = parse("SET TIMEOUT 2.5")
        assert statement == ast.SetStatement("timeout", 2.5)

    def test_parse_with_timeout_suffix(self):
        statement = parse("PROB B1 IN fig2 WITH TIMEOUT 3")
        assert isinstance(statement, ast.TimeoutStatement)
        assert statement.seconds == 3.0
        assert isinstance(statement.statement, ast.ProbStatement)

    def test_parse_rejects_bad_timeouts(self):
        with pytest.raises(PXQLSyntaxError):
            parse("SET TIMEOUT -1")
        with pytest.raises(PXQLSyntaxError):
            parse("PROB B1 IN fig2 WITH TIMEOUT 0")

    def test_set_timeout_session_state(self):
        interpreter = _fig2_interpreter()
        result = interpreter.execute("SET TIMEOUT 5")
        assert result.value == 5.0
        assert interpreter._session_timeout_s == 5.0
        result = interpreter.execute("SET TIMEOUT 0")
        assert result.value is None
        assert interpreter._session_timeout_s is None

    def test_generous_timeout_passes(self):
        interpreter = _fig2_interpreter()
        value = interpreter.execute("PROB B1 IN fig2 WITH TIMEOUT 60").value
        assert value == pytest.approx(0.8)

    def test_tiny_timeout_trips_sampler(self):
        interpreter = _fig2_interpreter()
        interpreter.execute("SET TIMEOUT 0.0000001")
        with pytest.raises(BudgetExceeded) as info:
            interpreter.execute(
                "ESTIMATE R.book : B1 IN fig2 SAMPLES 200000"
            )
        assert info.value.limit == "deadline"

    def test_with_timeout_overrides_session(self):
        interpreter = _fig2_interpreter()
        interpreter.execute("SET TIMEOUT 0.0000001")
        # The per-statement override buys enough time.
        value = interpreter.execute(
            "PROB B1 IN fig2 WITH TIMEOUT 60"
        ).value
        assert value == pytest.approx(0.8)

    def test_profile_attaches_partial_span_tree(self):
        interpreter = _fig2_interpreter()
        interpreter.execute("SET TIMEOUT 0.0000001")
        with pytest.raises(BudgetExceeded) as info:
            interpreter.execute(
                "PROFILE ESTIMATE R.book : B1 IN fig2 SAMPLES 200000"
            )
        span = info.value.span
        assert span is not None
        assert span.name == "pxql.profile"

    def test_budget_exceeded_is_a_pxml_error(self):
        assert issubclass(BudgetExceeded, PXMLError)
