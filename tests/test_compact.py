"""Unit tests for the compact OPF representations."""

import math

import pytest

from repro.core.compact import IndependentOPF, PerLabelOPF, SymmetricOPF
from repro.core.distributions import TabularOPF
from repro.errors import DistributionError


class TestIndependentOPF:
    def test_product_probability(self):
        opf = IndependentOPF({"a": 0.5, "b": 0.2})
        assert opf.prob(frozenset({"a"})) == pytest.approx(0.5 * 0.8)
        assert opf.prob(frozenset({"a", "b"})) == pytest.approx(0.5 * 0.2)
        assert opf.prob(frozenset()) == pytest.approx(0.5 * 0.8)

    def test_outside_pool_is_zero(self):
        opf = IndependentOPF({"a": 0.5})
        assert opf.prob(frozenset({"ghost"})) == 0.0

    def test_support_sums_to_one(self):
        opf = IndependentOPF({"a": 0.3, "b": 0.7, "c": 0.5})
        assert sum(p for _, p in opf.support()) == pytest.approx(1.0)
        opf.validate()

    def test_certain_child_prunes_support(self):
        opf = IndependentOPF({"a": 1.0, "b": 0.5})
        sets = {c for c, _ in opf.support()}
        assert all("a" in c for c in sets)

    def test_entry_count_is_linear(self):
        opf = IndependentOPF({f"c{i}": 0.5 for i in range(10)})
        assert opf.entry_count() == 10
        # The equivalent table would have 2^10 entries.
        assert opf.to_tabular().entry_count() == 1024

    def test_marginal_inclusion(self):
        opf = IndependentOPF({"a": 0.3})
        assert opf.marginal_inclusion("a") == 0.3
        assert opf.marginal_inclusion("ghost") == 0.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(DistributionError):
            IndependentOPF({"a": 1.5})

    def test_restrict_matches_tabular(self):
        opf = IndependentOPF({"a": 0.4, "b": 0.6})
        conditioned, mass = opf.restrict(lambda c: "a" in c)
        assert mass == pytest.approx(0.4)
        assert conditioned.prob(frozenset({"a", "b"})) == pytest.approx(0.6)


class TestPerLabelOPF:
    @pytest.fixture
    def opf(self):
        return PerLabelOPF({
            "author": (["A1", "A2"], TabularOPF({("A1",): 0.6, ("A2",): 0.4})),
            "title": (["T1"], TabularOPF({("T1",): 0.9, (): 0.1})),
        })

    def test_product_of_components(self, opf):
        assert opf.prob(frozenset({"A1", "T1"})) == pytest.approx(0.54)
        assert opf.prob(frozenset({"A2"})) == pytest.approx(0.04)

    def test_unsupported_combination_zero(self, opf):
        assert opf.prob(frozenset({"A1", "A2"})) == 0.0
        assert opf.prob(frozenset({"ghost"})) == 0.0

    def test_support_is_joint(self, opf):
        support = dict(opf.support())
        assert sum(support.values()) == pytest.approx(1.0)
        assert len(support) == 4

    def test_entry_count_is_sum(self, opf):
        assert opf.entry_count() == 4  # 2 + 2

    def test_component_access(self, opf):
        assert opf.labels() == frozenset({"author", "title"})
        assert opf.component("author").prob(frozenset({"A1"})) == 0.6

    def test_overlapping_pools_rejected(self):
        with pytest.raises(DistributionError):
            PerLabelOPF({
                "x": (["a"], TabularOPF({("a",): 1.0})),
                "y": (["a"], TabularOPF({("a",): 1.0})),
            })

    def test_validate(self, opf):
        opf.validate()


class TestSymmetricOPF:
    def test_equal_probability_within_size(self):
        opf = SymmetricOPF(["v1", "v2", "bridge"], {1: 0.3, 2: 0.7})
        assert opf.prob(frozenset({"v1"})) == opf.prob(frozenset({"v2"}))
        assert opf.prob(frozenset({"v1", "bridge"})) == opf.prob(
            frozenset({"v2", "bridge"})
        )

    def test_size_mass_divided_by_binomial(self):
        opf = SymmetricOPF(["a", "b", "c"], {2: 1.0})
        assert opf.prob(frozenset({"a", "b"})) == pytest.approx(1.0 / math.comb(3, 2))

    def test_support_sums_to_one(self):
        opf = SymmetricOPF(["a", "b", "c"], {0: 0.1, 1: 0.5, 3: 0.4})
        assert sum(p for _, p in opf.support()) == pytest.approx(1.0)
        opf.validate()

    def test_outside_pool_zero(self):
        opf = SymmetricOPF(["a"], {1: 1.0})
        assert opf.prob(frozenset({"ghost"})) == 0.0

    def test_unlisted_size_zero(self):
        opf = SymmetricOPF(["a", "b"], {2: 1.0})
        assert opf.prob(frozenset({"a"})) == 0.0

    def test_entry_count_is_number_of_sizes(self):
        opf = SymmetricOPF(["a", "b", "c"], {1: 0.5, 2: 0.5})
        assert opf.entry_count() == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(DistributionError):
            SymmetricOPF(["a"], {2: 1.0})


class TestCrossRepresentation:
    def test_independent_equals_tabular(self):
        inclusion = {"a": 0.25, "b": 0.5}
        compact = IndependentOPF(inclusion)
        table = compact.to_tabular()
        for child_set, probability in table.support():
            assert compact.prob(child_set) == pytest.approx(probability)

    def test_per_label_equals_tabular(self):
        opf = PerLabelOPF({
            "x": (["a"], TabularOPF({("a",): 0.5, (): 0.5})),
            "y": (["b"], TabularOPF({("b",): 1.0})),
        })
        table = opf.to_tabular()
        assert table.prob(frozenset({"a", "b"})) == pytest.approx(0.5)
        assert table.prob(frozenset({"b"})) == pytest.approx(0.5)
