"""Tests for the Cartesian product of probabilistic instances."""

import pytest

from repro.algebra.product import cartesian_product
from repro.core.builder import InstanceBuilder
from repro.errors import AlgebraError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression, evaluate_path


def make_left():
    builder = InstanceBuilder("r1")
    builder.children("r1", "book", ["B1"], card=(0, 1))
    builder.opf("r1", {(): 0.4, ("B1",): 0.6})
    builder.leaf("B1", "t", ["x"], {"x": 1.0})
    return builder.build()


def make_right():
    builder = InstanceBuilder("r2")
    builder.children("r2", "paper", ["P1"], card=(0, 1))
    builder.opf("r2", {(): 0.3, ("P1",): 0.7})
    builder.leaf("P1", "t", ["x"], {"x": 1.0})
    return builder.build()


class TestCartesianProduct:
    def test_roots_merged(self):
        product = cartesian_product(make_left(), make_right(), new_root="r")
        assert product.root == "r"
        assert product.lch("r", "book") == frozenset({"B1"})
        assert product.lch("r", "paper") == frozenset({"P1"})
        product.validate()

    def test_default_root_name(self):
        product = cartesian_product(make_left(), make_right())
        assert product.root == "r1xr2"

    def test_root_opf_is_product(self):
        product = cartesian_product(make_left(), make_right(), new_root="r")
        opf = product.opf("r")
        assert opf.prob(frozenset()) == pytest.approx(0.4 * 0.3)
        assert opf.prob(frozenset({"B1"})) == pytest.approx(0.6 * 0.3)
        assert opf.prob(frozenset({"P1"})) == pytest.approx(0.4 * 0.7)
        assert opf.prob(frozenset({"B1", "P1"})) == pytest.approx(0.6 * 0.7)

    def test_marginals_preserved(self):
        product = cartesian_product(make_left(), make_right(), new_root="r")
        worlds = GlobalInterpretation.from_local(product)
        worlds.validate()
        assert worlds.prob_object_exists("B1") == pytest.approx(0.6)
        assert worlds.prob_object_exists("P1") == pytest.approx(0.7)

    def test_components_independent(self):
        product = cartesian_product(make_left(), make_right(), new_root="r")
        worlds = GlobalInterpretation.from_local(product)
        joint = worlds.event_probability(lambda w: "B1" in w and "P1" in w)
        assert joint == pytest.approx(0.6 * 0.7)

    def test_path_expressions_still_work(self):
        # The paper's stated reason for merging roots instead of stacking.
        product = cartesian_product(make_left(), make_right(), new_root="r")
        graph = product.weak.graph()
        assert evaluate_path(graph, PathExpression.parse("r.book")) == frozenset(
            {"B1"}
        )
        assert evaluate_path(graph, PathExpression.parse("r.paper")) == frozenset(
            {"P1"}
        )

    def test_shared_label_cards_summed(self):
        left = InstanceBuilder("r1")
        left.children("r1", "book", ["B1"], card=(1, 1))
        left.opf("r1", {("B1",): 1.0})
        left.leaf("B1", "t", ["x"], {"x": 1.0})
        right = InstanceBuilder("r2")
        right.children("r2", "book", ["B2"], card=(1, 1))
        right.opf("r2", {("B2",): 1.0})
        right.leaf("B2", "t", ["x"], {"x": 1.0})
        product = cartesian_product(left.build(), right.build(), new_root="r")
        assert product.card("r", "book").min == 2
        assert product.card("r", "book").max == 2
        product.validate()

    def test_overlapping_ids_rejected(self):
        left = make_left()
        clash = InstanceBuilder("r3")
        clash.children("r3", "z", ["B1"], card=(1, 1))  # B1 clashes
        clash.opf("r3", {("B1",): 1.0})
        clash.leaf("B1", "t", ["x"], {"x": 1.0})
        with pytest.raises(AlgebraError):
            cartesian_product(left, clash.build())

    def test_root_id_collision_rejected(self):
        with pytest.raises(AlgebraError):
            cartesian_product(make_left(), make_right(), new_root="B1")

    def test_leaf_root_operand(self):
        # An operand that is just a root leaf contributes nothing but mass.
        bare = InstanceBuilder("solo").build(validate=False)
        product = cartesian_product(make_left(), bare, new_root="r")
        worlds = GlobalInterpretation.from_local(product)
        assert worlds.prob_object_exists("B1") == pytest.approx(0.6)

    def test_deep_components_kept_intact(self):
        deep = InstanceBuilder("r2")
        deep.children("r2", "a", ["M"], card=(1, 1))
        deep.opf("r2", {("M",): 1.0})
        deep.children("M", "b", ["L"], card=(0, 1))
        deep.opf("M", {(): 0.5, ("L",): 0.5})
        deep.leaf("L", "t", ["x"], {"x": 1.0})
        product = cartesian_product(make_left(), deep.build(), new_root="r")
        product.validate()
        worlds = GlobalInterpretation.from_local(product)
        assert worlds.prob_object_exists("L") == pytest.approx(0.5)
