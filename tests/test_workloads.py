"""Tests for the Section 7.1 workload generators."""

import random

import pytest

from repro.errors import ModelError
from repro.semistructured.paths import match_path
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
    random_selection_target,
)


class TestSpec:
    def test_object_count_formula(self):
        assert WorkloadSpec(depth=3, branching=2).num_objects == 15
        assert WorkloadSpec(depth=2, branching=3).num_objects == 13
        assert WorkloadSpec(depth=4, branching=1).num_objects == 5

    def test_invalid_specs_rejected(self):
        with pytest.raises(ModelError):
            WorkloadSpec(depth=0, branching=2)
        with pytest.raises(ModelError):
            WorkloadSpec(depth=2, branching=0)
        with pytest.raises(ModelError):
            WorkloadSpec(depth=2, branching=2, labeling="XX")


class TestGeneration:
    @pytest.mark.parametrize("labeling", ["SL", "FR"])
    def test_instance_is_coherent(self, labeling):
        workload = generate_workload(
            WorkloadSpec(depth=3, branching=2, labeling=labeling, seed=1)
        )
        workload.instance.validate()

    def test_object_count_matches_spec(self):
        spec = WorkloadSpec(depth=3, branching=3, seed=2)
        workload = generate_workload(spec)
        assert workload.num_objects == spec.num_objects

    def test_tree_structured(self):
        workload = generate_workload(WorkloadSpec(depth=3, branching=2, seed=3))
        assert workload.instance.weak.is_tree()

    def test_opf_entries_are_2_to_the_b(self):
        # The paper: "the total number of entries in a local interpretation
        # for each non-leaf object is 2^b".
        spec = WorkloadSpec(depth=2, branching=3, seed=4)
        workload = generate_workload(spec)
        for oid, opf in workload.instance.interpretation.opf_items():
            assert opf.entry_count() == 8, oid

    def test_sl_children_share_one_label(self):
        workload = generate_workload(
            WorkloadSpec(depth=2, branching=3, labeling="SL", seed=5)
        )
        weak = workload.instance.weak
        for oid in weak.non_leaves():
            assert len(weak.labels_of(oid)) == 1

    def test_fr_can_split_labels(self):
        # With enough nodes, FR labeling must produce at least one parent
        # whose children use different labels.
        workload = generate_workload(
            WorkloadSpec(depth=3, branching=4, labeling="FR", seed=6)
        )
        weak = workload.instance.weak
        assert any(len(weak.labels_of(oid)) > 1 for oid in weak.non_leaves())

    def test_reproducible(self):
        spec = WorkloadSpec(depth=2, branching=2, seed=42)
        a = generate_workload(spec)
        b = generate_workload(spec)
        assert a.instance.weak.lch_map("o0") == b.instance.weak.lch_map("o0")
        assert a.instance.opf("o0").to_tabular() == b.instance.opf("o0").to_tabular()

    def test_labels_by_depth_recorded(self):
        workload = generate_workload(WorkloadSpec(depth=3, branching=2, seed=7))
        assert len(workload.labels_by_depth) == 3
        for pool in workload.labels_by_depth:
            assert pool

    def test_leaves_have_vpfs(self):
        workload = generate_workload(WorkloadSpec(depth=2, branching=2, seed=8))
        for leaf in workload.instance.weak.leaves():
            assert workload.instance.vpf(leaf) is not None

    def test_total_entries_counts_everything(self):
        workload = generate_workload(WorkloadSpec(depth=2, branching=2, seed=9))
        # 3 non-leaves * 4 entries + 4 leaves * 2 entries = 20.
        assert workload.total_entries == 20


class TestQueryGeneration:
    @pytest.mark.parametrize("labeling", ["SL", "FR"])
    def test_projection_path_is_accepted(self, labeling):
        workload = generate_workload(
            WorkloadSpec(depth=3, branching=2, labeling=labeling, seed=10)
        )
        rng = random.Random(0)
        for _ in range(5):
            path = random_projection_path(workload, rng)
            assert len(path) == 3  # query length equals instance depth
            match = match_path(workload.instance.weak.graph(), path)
            assert not match.is_empty

    def test_path_labels_drawn_from_depth_pools(self):
        workload = generate_workload(WorkloadSpec(depth=3, branching=2, seed=11))
        rng = random.Random(1)
        path = random_projection_path(workload, rng)
        for index, label in enumerate(path.labels):
            assert label in workload.labels_by_depth[index]

    def test_selection_target_satisfies_path(self):
        workload = generate_workload(WorkloadSpec(depth=3, branching=2, seed=12))
        rng = random.Random(2)
        path, target = random_selection_target(workload, rng)
        match = match_path(workload.instance.weak.graph(), path)
        assert target in match.matched

    def test_fallback_path_when_random_misses(self):
        # With a single try allowed, the fallback (an actual branch walk)
        # must still return an accepted path.
        workload = generate_workload(
            WorkloadSpec(depth=3, branching=2, labeling="SL", seed=13)
        )
        rng = random.Random(3)
        path = random_projection_path(workload, rng, max_tries=0)
        match = match_path(workload.instance.weak.graph(), path)
        assert not match.is_empty


class TestIndependentWorkloads:
    def test_independent_kind_generates_compact_opfs(self):
        from repro.core.compact import IndependentOPF

        workload = generate_workload(
            WorkloadSpec(depth=2, branching=3, seed=14, opf_kind="independent")
        )
        workload.instance.validate()
        for _, opf in workload.instance.interpretation.opf_items():
            assert isinstance(opf, IndependentOPF)
            assert opf.entry_count() == 3  # b entries, not 2^b

    def test_bad_opf_kind_rejected(self):
        with pytest.raises(ModelError):
            WorkloadSpec(depth=2, branching=2, opf_kind="magic")

    def test_sweep_runner_accepts_opf_kind(self):
        from repro.bench.runner import SweepConfig, run_projection_sweep

        config = SweepConfig(
            grid={2: (3,)}, labelings=("SL",), instances_per_config=1,
            queries_per_instance=1, opf_kind="independent",
        )
        records = run_projection_sweep(config)
        assert len(records) == 1
        # b entries per non-leaf: 7 non-leaves * 2 + 8 leaves * 2 = 30.
        assert records[0].entries == 30
