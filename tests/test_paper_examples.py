"""Tests reproducing the paper's worked examples and figures.

X1-X3 of the experiment index in DESIGN.md: Figure 1 / Example 3.1,
Figure 2 / Example 3.3, Example 4.1 (with the paper's arithmetic typo
corrected), Figures 4-5 / Example 5.1, and Figure 6 / Example 5.2 (again
with a typo corrected — see DESIGN.md).
"""

import pytest

from repro.algebra.projection import ancestor_projection
from repro.algebra.projection_prob import ancestor_projection_global
from repro.algebra.selection import ObjectCondition, select_global
from repro.core.cardinality import CardinalityInterval
from repro.paper import example41_s1, example52_instance, figure1_instance, figure2_instance
from repro.semantics.compatible import is_compatible, world_probability
from repro.semantics.global_interpretation import GlobalInterpretation, verify_theorem1
from repro.semistructured.paths import PathExpression, evaluate_path


class TestFigure1:
    def test_structure(self):
        inst = figure1_instance()
        inst.validate()
        assert inst.children("R") == frozenset({"B1", "B2", "B3"})
        assert inst.lch("B2", "author") == frozenset({"A1", "A2"})
        assert inst.val("T1") == "VQDB"
        assert inst.val("I2") == "UMD"

    def test_example31_path(self):
        inst = figure1_instance()
        assert evaluate_path(
            inst.graph, PathExpression.parse("R.book.author")
        ) == frozenset({"A1", "A2", "A3"})


class TestFigure2:
    def test_validates(self):
        figure2_instance().validate()

    def test_example32_potential_author_children(self):
        pi = figure2_instance()
        sets = pi.weak.potential_l_child_sets("B1", "author")
        assert set(sets) == {
            frozenset({"A1"}),
            frozenset({"A2"}),
            frozenset({"A1", "A2"}),
        }

    def test_card_entries_match_figure(self):
        pi = figure2_instance()
        assert pi.card("R", "book") == CardinalityInterval(2, 3)
        assert pi.card("B1", "author") == CardinalityInterval(1, 2)
        assert pi.card("B1", "title") == CardinalityInterval(0, 1)
        assert pi.card("B2", "author") == CardinalityInterval(2, 2)
        assert pi.card("A1", "institution") == CardinalityInterval(0, 1)

    def test_opf_tables_match_figure(self):
        pi = figure2_instance()
        assert pi.opf("R").prob(frozenset({"B1", "B2", "B3"})) == 0.4
        assert pi.opf("B1").prob(frozenset({"A1", "T1"})) == 0.35
        assert pi.opf("B2").prob(frozenset({"A1", "A3"})) == 0.4
        assert pi.opf("A1").prob(frozenset()) == pytest.approx(0.2)
        assert pi.opf("A1").prob(frozenset({"I1"})) == pytest.approx(0.8)

    def test_weak_instance_is_dag_not_tree(self):
        pi = figure2_instance()
        assert pi.weak.is_acyclic()
        assert not pi.weak.is_tree()


class TestExample41:
    def test_s1_is_compatible(self):
        assert is_compatible(example41_s1(), figure2_instance().weak)

    def test_s1_probability_factors(self):
        # P(S1) = P(B1,B2|R) P(A1,T1|B1) P(A1,A2|B2) P(I1|A1) P(I1|A2)
        #       = 0.2 * 0.35 * 0.4 * 0.8 * 0.5 = 0.0112
        # (the paper prints 0.00448 — an arithmetic typo; see DESIGN.md).
        expected = 0.2 * 0.35 * 0.4 * 0.8 * 0.5
        assert world_probability(figure2_instance(), example41_s1()) == pytest.approx(
            expected
        )

    def test_theorem1_on_figure2(self):
        interpretation = verify_theorem1(figure2_instance())
        assert interpretation.total_mass() == pytest.approx(1.0)

    def test_enumeration_agrees_with_direct_product(self):
        pi = figure2_instance()
        interpretation = GlobalInterpretation.from_local(pi)
        s1 = example41_s1()
        assert interpretation.prob(s1) == pytest.approx(world_probability(pi, s1))


class TestExample51:
    def test_figure4_projection_result(self):
        inst = figure1_instance()
        result = ancestor_projection(inst, "R.book.author")
        assert result.objects == frozenset(
            {"R", "B1", "B2", "B3", "A1", "A2", "A3"}
        )
        # Title edges and institutions are gone; book/author edges kept.
        assert result.children("B1") == frozenset({"A1"})
        assert result.children("B3") == frozenset({"A3"})
        assert result.label("R", "B1") == "book"
        assert result.label("B2", "A2") == "author"

    def test_figure5_probability_grouping(self):
        # Projections of distinct worlds that coincide must have their
        # probabilities summed (Definition 5.3).
        pi = figure2_instance()
        projected = ancestor_projection_global(pi, "R.book.author")
        projected.validate()
        # Every projected world must be its own ancestor projection
        # (idempotence) and the masses must total 1.
        path = PathExpression.parse("R.book.author")
        for world, probability in projected.support():
            assert probability > 0
            assert ancestor_projection(world, path) == world

    def test_projection_groups_fewer_worlds(self):
        pi = figure2_instance()
        base = GlobalInterpretation.from_local(pi)
        projected = ancestor_projection_global(pi, "R.book.author")
        assert len(projected) < len(base)


class TestExample52:
    def test_selection_normalization(self):
        # P'(S1) = 0.4 / (0.4 + 0.2 + 0.2) = 0.5 (the paper prints 0.4 —
        # an arithmetic typo; see DESIGN.md).
        pi = example52_instance()
        condition = ObjectCondition(PathExpression.parse("R.book"), "B1")
        result = select_global(pi, condition)
        result.validate()
        probabilities = sorted(p for _, p in result.support())
        assert probabilities == pytest.approx([0.25, 0.25, 0.5])

    def test_worlds_without_b1_are_dropped(self):
        pi = example52_instance()
        condition = ObjectCondition(PathExpression.parse("R.book"), "B1")
        result = select_global(pi, condition)
        for world, _ in result.support():
            assert "B1" in world

    def test_prior_world_probabilities(self):
        pi = example52_instance()
        interpretation = GlobalInterpretation.from_local(pi)
        assert sorted(p for _, p in interpretation.support()) == pytest.approx(
            [0.2, 0.2, 0.2, 0.4]
        )
