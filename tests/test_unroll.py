"""Tests for bounded unrolling of cyclic models."""

import pytest

from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.unroll import copy_id, is_cyclic, unroll
from repro.core.weak_instance import WeakInstance
from repro.errors import EmptyResultError, ModelError
from repro.queries.chain import chain_probability
from repro.queries.engine import QueryEngine
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.types import LeafType


def cyclic_social_network() -> ProbabilisticInstance:
    """person -> friend -> person: a self-loop through one object."""
    weak = WeakInstance("alice")
    weak.set_lch("alice", "friend", ["bob"])
    weak.set_lch("bob", "friend", ["alice"])
    pi = ProbabilisticInstance(weak)
    pi.set_opf("alice", TabularOPF({("bob",): 0.5, (): 0.5}))
    pi.set_opf("bob", TabularOPF({("alice",): 0.4, (): 0.6}))
    return pi


def self_loop() -> ProbabilisticInstance:
    weak = WeakInstance("w")
    weak.set_lch("w", "next", ["w"])
    pi = ProbabilisticInstance(weak)
    pi.set_opf("w", TabularOPF({("w",): 0.3, (): 0.7}))
    return pi


class TestCopyId:
    def test_depth_zero_keeps_id(self):
        assert copy_id("o", 0) == "o"

    def test_deeper_copies_tagged(self):
        assert copy_id("o", 2) == "o@2"


class TestUnroll:
    def test_detects_cycles(self):
        assert is_cyclic(cyclic_social_network())
        assert is_cyclic(self_loop())

    def test_unrolled_is_acyclic_and_coherent(self):
        unrolled = unroll(cyclic_social_network(), horizon=4)
        unrolled.validate()
        assert unrolled.weak.is_acyclic()

    def test_layered_ids(self):
        unrolled = unroll(cyclic_social_network(), horizon=3)
        assert "alice" in unrolled
        assert "bob@1" in unrolled
        assert "alice@2" in unrolled
        assert "bob@3" in unrolled
        assert "alice@4" not in unrolled

    def test_self_loop_unrolls_to_chain(self):
        unrolled = unroll(self_loop(), horizon=3)
        unrolled.validate()
        assert sorted(unrolled.objects) == ["w", "w@1", "w@2", "w@3"]
        # P(chain of length k) = 0.3^k.
        assert chain_probability(unrolled, ["w", "w@1", "w@2"]) == pytest.approx(
            0.09
        )

    def test_horizon_zero_is_bare_root(self):
        unrolled = unroll(self_loop(), horizon=0)
        assert sorted(unrolled.objects) == ["w"]

    def test_negative_horizon_rejected(self):
        with pytest.raises(ModelError):
            unroll(self_loop(), horizon=-1)

    def test_bounded_queries_converge(self):
        # P(friend-chain of length 2 from alice) is exact once the
        # horizon covers it, and stays fixed as the horizon grows.
        pi = cyclic_social_network()
        values = [
            QueryEngine(unroll(pi, horizon=h)).chain(["alice", "bob@1", "alice@2"])
            for h in (2, 3, 5)
        ]
        assert values[0] == pytest.approx(0.5 * 0.4)
        assert values[0] == pytest.approx(values[1])
        assert values[1] == pytest.approx(values[2])

    def test_mass_is_one(self):
        unrolled = unroll(cyclic_social_network(), horizon=3)
        GlobalInterpretation.from_local(unrolled).validate()

    def test_mandatory_child_at_horizon_rejected(self):
        weak = WeakInstance("w")
        weak.set_lch("w", "next", ["w"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("w", TabularOPF({("w",): 1.0}))  # the child is mandatory
        with pytest.raises(EmptyResultError):
            unroll(pi, horizon=2)

    def test_leaf_annotations_transported(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["r", "v"])
        weak.set_type("v", LeafType("t", ["x", "y"]))
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({("v",): 0.5, ("r", "v"): 0.25, (): 0.25}))
        pi.interpretation.set_vpf("v", TabularVPF({"x": 0.5, "y": 0.5}))
        unrolled = unroll(pi, horizon=2)
        unrolled.validate()
        assert unrolled.tau("v@1") is not None
        assert unrolled.vpf("v@1").prob("x") == pytest.approx(0.5)
        assert unrolled.vpf("v@2").prob("y") == pytest.approx(0.5)

    def test_acyclic_input_unrolls_to_itself_shapewise(self):
        # An already-acyclic chain unrolls to an isomorphic instance.
        weak = WeakInstance("a")
        weak.set_lch("a", "l", ["b"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("a", TabularOPF({("b",): 0.5, (): 0.5}))
        unrolled = unroll(pi, horizon=5)
        assert sorted(unrolled.objects) == ["a", "b@1"]
        assert unrolled.opf("a").prob(frozenset({"b@1"})) == pytest.approx(0.5)
