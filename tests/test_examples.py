"""Every example script must run end-to-end and print sane output."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

EXPECTED_MARKERS = {
    "quickstart.py": "P(S1)",
    "bibliography.py": "Situation 4",
    "information_extraction.py": "Curator questions",
    "object_recognition.py": "indistinguishable",
    "protdb_migration.py": "Pattern-tree queries",
    "pxql_session.py": "new session",
    "kb_maintenance.py": "unrolled" ,
    "interval_sources.py": "midpoint selection",
    "learning_pipeline.py": "total variation",
}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
    marker = EXPECTED_MARKERS.get(path.name)
    if marker is not None:
        assert marker.lower() in out.lower(), (
            f"{path.name} output missing marker {marker!r}"
        )


def test_every_example_has_a_marker():
    names = {path.name for path in EXAMPLES}
    assert set(EXPECTED_MARKERS) <= names
