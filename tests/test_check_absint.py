"""Abstract interpretation of plans (repro.check.absint).

Three layers of coverage:

* unit tests for the interval lattice (:class:`ProbInterval`,
  :class:`CardInterval`) and the certificate machinery
  (:func:`certify_plan`, :func:`verify_execution`);
* diagnostics through the plan pass — ``PX260`` (provably empty),
  ``PX261``/``PX263`` (constant probability guards), ``PX262`` (zero
  condition), and their suppression rules;
* soundness over the generated corpus: on every Section 7.1 workload
  the exact engine answer must lie inside the inferred interval, the
  runtime verifier must observe zero violations, and certified-empty
  plans must short-circuit without changing any answer (checked against
  both the skipping engine and the naive interpreter).
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.absint import (
    CardInterval,
    ProbInterval,
    absint_diagnostics,
    certify_plan,
    verify_execution,
)
from repro.check.plans import check_plan
from repro.core.builder import InstanceBuilder
from repro.engine.cost import CostModel
from repro.engine.executor import Engine
from repro.engine.plan import PlanBuilder, QueryNode, ScanNode, fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.pxql import Interpreter
from repro.semistructured.paths import PathExpression
from repro.storage.database import Database
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
)

TOL = 1e-9

#: Same corpus as the engine parity suite (13 seeds x 2 labelings x 2
#: OPF representations); the intervals must be sound on all of it.
SPECS = [
    WorkloadSpec(depth=2, branching=2, labeling=labeling, seed=seed,
                 opf_kind=opf_kind)
    for labeling in ("SL", "FR")
    for opf_kind in ("tabular", "independent")
    for seed in range(13)
]

SMALL_SPECS = SPECS[::5]

KINDS = ("exists", "count", "point", "dist")

#: The workload generator never emits this label: appending it to any
#: live path yields a provably dead path (dataguide-certified empty).
DEAD_LABEL = "never_a_label"


def _spec_id(spec):
    return f"{spec.labeling}-{spec.opf_kind}-s{spec.seed}"


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"], card=(1, 2))
    b.opf("R", {("B1",): 0.4, ("B2",): 0.2, ("B1", "B2"): 0.4})
    b.children("B1", "author", ["A1"], card=(1, 1))
    b.opf("B1", {("A1",): 1.0})
    b.children("B2", "author", ["A2"], card=(0, 1))
    b.opf("B2", {("A2",): 0.5, (): 0.5})
    b.leaf("A1", "name", ["hung", "getoor"], {"hung": 0.9, "getoor": 0.1})
    b.leaf("A2", "name", None, {"hung": 0.5, "getoor": 0.5})
    return b.build()


def build_zero():
    """An instance with a structurally present but zero-probability child."""
    b = InstanceBuilder("R")
    b.children("R", "x", ["a", "b"])
    b.opf("R", {("a",): 1.0, ("a", "b"): 0.0})
    b.leaf("a", "t", ["v"], {"v": 1.0})
    b.leaf("b", "t", None, {"v": 1.0})
    return b.build()


@pytest.fixture
def database():
    db = Database()
    db.register("bib", build_bib())
    return db


def codes(diagnostics):
    return [d.code for d in diagnostics]


def _engine(database, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return Engine(database, **kwargs)


def _query_plan(kind, name, path, oid=None):
    if kind == "point":
        return QueryNode("point", ScanNode(name), path=path, oid=oid)
    return QueryNode(kind, ScanNode(name), path=path)


def _scalar_answer(kind, value):
    """The single number an interval certificate bounds for each kind."""
    if kind == "dist":
        return 1.0 - value.get(0, 0.0)
    return float(value)


def _workload_targets(spec):
    workload = generate_workload(spec)
    rng = random.Random(spec.seed + 7000)
    path = random_projection_path(workload, rng)
    from repro.semistructured.paths import match_path

    graph = workload.instance.weak.graph()
    oid = rng.choice(sorted(match_path(graph, path).matched))
    return workload, path, oid


# ----------------------------------------------------------------------
# Interval lattice
# ----------------------------------------------------------------------
class TestProbInterval:
    def test_point_and_top(self):
        assert ProbInterval.point(0.3) == ProbInterval(0.3, 0.3)
        assert ProbInterval.top() == ProbInterval(0.0, 1.0)
        assert ProbInterval.point(0.3).is_point
        assert not ProbInterval.top().is_point

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ProbInterval(0.7, 0.2)
        with pytest.raises(ValueError):
            ProbInterval(-0.1, 0.5)

    def test_contains_with_tolerance(self):
        interval = ProbInterval(0.2, 0.4)
        assert interval.contains(0.3)
        assert not interval.contains(0.5)
        assert interval.contains(0.4 + 1e-9, tol=1e-6)

    def test_times_and_hull(self):
        a, b = ProbInterval(0.2, 0.5), ProbInterval(0.5, 1.0)
        assert a.times(b) == ProbInterval(0.1, 0.5)
        assert a.hull(b) == ProbInterval(0.2, 1.0)


class TestCardInterval:
    def test_exactly_and_top(self):
        assert CardInterval.exactly(3) == CardInterval(3, 3)
        assert CardInterval.top().hi is None
        assert CardInterval.exactly(3).is_exact

    def test_containment_with_open_upper_bound(self):
        assert CardInterval.top().contains(10 ** 9)
        assert not CardInterval(2, 5).contains(6)
        assert CardInterval(2, 5).contains(2)

    def test_tightness_scales_with_magnitude(self):
        assert CardInterval.exactly(7).is_tight()
        assert not CardInterval(0, None).is_tight()
        assert CardInterval(64, 70).is_tight()     # slack 6 <= 64 // 8
        assert not CardInterval(2, 9).is_tight()   # slack 7 > max(1, 0)

    def test_plus_with_unbounded_side(self):
        assert CardInterval(1, 2).plus(CardInterval(3, 4)) == CardInterval(4, 6)
        assert CardInterval(1, 2).plus(CardInterval.top()).hi is None
        assert CardInterval(1, 2).plus(CardInterval(0, 0), shift=1) == \
            CardInterval(2, 3)

    def test_midpoint(self):
        assert CardInterval(2, 6).midpoint == 4
        assert CardInterval.exactly(5).midpoint == 5


# ----------------------------------------------------------------------
# Certificates and PX26x diagnostics
# ----------------------------------------------------------------------
class TestCertificates:
    def test_facts_mirror_plan_walk(self, database):
        plan = PlanBuilder.scan("bib").project("R.book").exists("R.book")
        plan = plan.build()
        certificate = certify_plan(plan, database)
        from repro.engine.plan import walk

        assert [f.label for f in certificate.facts] == \
            [node.label() for node in walk(plan)]
        assert certificate.kind == "exists"
        assert certificate.root.kind == "query"

    def test_live_plan_is_not_empty(self, database):
        plan = QueryNode("exists", ScanNode("bib"),
                         path=PathExpression("R", ("book",)))
        certificate = certify_plan(plan, database)
        assert not certificate.empty
        assert not certificate.skippable
        # P(some book exists) is exactly 1 (every OPF tuple has a book);
        # the abstraction keeps the sound union bound [max p_i, sum p_i].
        lo, hi = certificate.result
        assert lo == pytest.approx(0.8) and hi == pytest.approx(1.0)

    def test_dead_path_is_provably_empty(self, database):
        plan = QueryNode("exists", ScanNode("bib"),
                         path=PathExpression("R", ("book", DEAD_LABEL)))
        certificate = certify_plan(plan, database)
        assert certificate.empty
        assert certificate.skippable
        assert certificate.result == (0.0, 0.0)

    def test_px260_on_dead_query(self, database):
        plan = QueryNode("exists", ScanNode("bib"),
                         path=PathExpression("R", ("book", "movie")))
        found = codes(check_plan(plan, database))
        assert "PX260" in found

    def test_px261_always_true_guard(self, database):
        plan = PlanBuilder.scan("bib").select(
            "R.book", "B1", prob_op=">=", prob_bound=0.5).build()
        assert codes(check_plan(plan, database)) == ["PX261"]

    def test_px263_unsatisfiable_guard(self, database):
        plan = PlanBuilder.scan("bib").select(
            "R.book", "B1", prob_op=">=", prob_bound=0.9).build()
        assert codes(check_plan(plan, database)) == ["PX263"]

    def test_px262_zero_condition_direct(self):
        db = Database()
        db.register("zero", build_zero())
        plan = PlanBuilder.scan("zero").select("R.x", "b").build()
        certificate = certify_plan(plan, db)
        assert certificate.zero_conditions
        assert codes(absint_diagnostics(plan, certificate)) == ["PX262"]

    def test_px262_suppressed_behind_base_finding(self):
        # The base pass already reports the zero-probability selection
        # (PX220); the interval pass must not add a duplicate PX262.
        db = Database()
        db.register("zero", build_zero())
        plan = PlanBuilder.scan("zero").select("R.x", "b").build()
        assert codes(check_plan(plan, db)) == ["PX220"]


class TestVerifyExecution:
    def test_clean_execution_has_no_violations(self, database):
        plan = QueryNode("count", ScanNode("bib"),
                         path=PathExpression("R", ("book",)))
        engine = _engine(database, use_index=False, caching=False)
        result = engine.execute_plan(plan)
        assert verify_execution(result.certificate, result.value,
                                result.stats) == []

    def test_tampered_result_interval_is_flagged(self, database):
        plan = QueryNode("exists", ScanNode("bib"),
                         path=PathExpression("R", ("book",)))
        engine = _engine(database, use_index=False, caching=False)
        result = engine.execute_plan(plan)
        bogus = dataclasses.replace(result.certificate, result=(0.0, 0.1))
        violations = verify_execution(bogus, result.value, result.stats)
        assert violations and "outside certified" in violations[0]

    def test_shape_mismatch_skips_the_check(self, database):
        plan = QueryNode("exists", ScanNode("bib"),
                         path=PathExpression("R", ("book",)))
        engine = _engine(database, use_index=False, caching=False)
        result = engine.execute_plan(plan)
        truncated = dataclasses.replace(
            result.certificate, facts=result.certificate.facts[:1])
        assert verify_execution(truncated, result.value, result.stats) == []

    def test_engine_verify_counter_stays_zero(self, database):
        engine = _engine(database, use_index=False, caching=False)
        engine.absint_verify = True
        for kind in KINDS:
            plan = _query_plan(kind, "bib", PathExpression("R", ("book",)),
                               oid="B1")
            result = engine.execute_plan(plan)
            assert result.violations == ()
        assert engine.metrics.counter("check.absint_violations").value == 0


# ----------------------------------------------------------------------
# Engine integration: short-circuit, cost hints, EXPLAIN rendering
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_dead_plan_short_circuits(self, database):
        plan = QueryNode("count", ScanNode("bib"),
                         path=PathExpression("R", ("book", DEAD_LABEL)))
        engine = _engine(database, use_index=False, caching=False)
        result = engine.execute_plan(plan)
        assert result.value == 0.0
        assert engine.metrics.counter("check.absint_skips").value == 1
        assert result.stats.cache == "skip"

    def test_absint_off_engine_never_skips(self, database):
        plan = QueryNode("count", ScanNode("bib"),
                         path=PathExpression("R", ("book", DEAD_LABEL)))
        engine = _engine(database, use_index=False, caching=False,
                         absint=False)
        result = engine.execute_plan(plan)
        assert result.value == 0.0
        assert result.certificate is None
        assert engine.metrics.counter("check.absint_skips").value == 0

    def test_index_skip_takes_precedence(self, database):
        # With the structural index on, the dataguide skip inside the
        # indexed operator serves dead paths; absint defers to it so the
        # index's own skip statistics stay meaningful.
        plan = QueryNode("count", ScanNode("bib"),
                         path=PathExpression("R", ("book", DEAD_LABEL)))
        engine = _engine(database, use_index=True, caching=False)
        result = engine.execute_plan(plan)
        assert result.value == 0.0
        assert engine.metrics.counter("check.absint_skips").value == 0

    def test_cost_model_consumes_tight_hints(self, database):
        model = CostModel(database)
        plan = PlanBuilder.scan("bib").project("R.book").build()
        before = model.estimate(plan).objects
        model.note_hint(fingerprint(plan), 1, 1)
        after = model.estimate(plan)
        assert after.objects == 1
        assert after.objects != before
        assert model.hint_hits == 1

    def test_explain_renders_intervals(self, database):
        plan = QueryNode("exists", ScanNode("bib"),
                         path=PathExpression("R", ("book",)))
        engine = _engine(database, use_index=False, caching=False)
        text = engine.explain(plan)
        assert "est_rows=[" in text
        assert "prob=[" in text
        assert "absint: kind=exists" in text

    def test_explain_marks_provably_empty(self, database):
        plan = QueryNode("exists", ScanNode("bib"),
                         path=PathExpression("R", ("book", DEAD_LABEL)))
        engine = _engine(database, use_index=False, caching=False)
        assert "provably empty" in engine.explain(plan)

    def test_explain_analyze_reports_verification(self):
        interp = Interpreter(Database())
        interp.database.register("bib", build_bib())
        result = interp.execute("EXPLAIN ANALYZE EXISTS R.book IN bib")
        assert "absint violations: none" in result.text
        assert interp.metrics.counter("check.absint_violations").value == 0


# ----------------------------------------------------------------------
# Corpus soundness: the exact answer always lies inside the interval
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SPECS, ids=_spec_id)
def test_corpus_answers_inside_certified_intervals(spec):
    workload, path, oid = _workload_targets(spec)
    database = Database()
    database.register("base", workload.instance)
    for use_index in (False, True):
        engine = _engine(database, use_index=use_index, caching=False)
        engine.absint_verify = True
        for kind in KINDS:
            plan = _query_plan(kind, "base", path, oid=oid)
            result = engine.execute_plan(plan)
            assert result.violations == (), (kind, use_index)
            certificate = result.certificate
            assert certificate is not None
            lo, hi = certificate.result
            answer = _scalar_answer(kind, result.value)
            assert lo - TOL <= answer <= hi + TOL, (kind, use_index)
        assert engine.metrics.counter("check.absint_violations").value == 0
        assert engine.metrics.counter("check.absint_errors").value == 0


@pytest.mark.parametrize("spec", SMALL_SPECS, ids=_spec_id)
def test_dead_plan_parity_and_skip(spec):
    """PX260 short-circuits are answer-preserving on the corpus.

    The same dead-path queries run on an absint engine and a plain one
    (plus the naive interpreter for ``EXISTS``); all answers must agree
    and the absint engine must actually have served them as skips.
    """
    workload, path, _oid = _workload_targets(spec)
    dead = dataclasses.replace(path, labels=path.labels + (DEAD_LABEL,))

    database = Database()
    database.register("base", workload.instance)
    on = _engine(database, use_index=False, caching=False)
    off = _engine(database, use_index=False, caching=False, absint=False)
    for kind in ("exists", "count", "dist"):
        plan = _query_plan(kind, "base", dead)
        assert on.execute_plan(plan).value == off.execute_plan(plan).value
    assert on.metrics.counter("check.absint_skips").value == 3
    assert off.metrics.counter("check.absint_skips").value == 0

    naive = Interpreter(Database(), strategy="naive")
    naive.database.register("base", workload.instance.copy())
    assert naive.execute(f"EXISTS {dead} IN base").value == 0.0


@settings(deadline=None, max_examples=25)
@given(
    labeling=st.sampled_from(("SL", "FR")),
    opf_kind=st.sampled_from(("tabular", "independent")),
    seed=st.integers(min_value=0, max_value=10_000),
    kind=st.sampled_from(KINDS),
    use_index=st.booleans(),
)
def test_property_interval_soundness(labeling, opf_kind, seed, kind,
                                     use_index):
    """Property: on any generated workload, any supported query kind's
    exact answer lies inside the certified interval and the runtime
    verifier finds nothing to complain about."""
    spec = WorkloadSpec(depth=2, branching=2, labeling=labeling,
                        opf_kind=opf_kind, seed=seed)
    workload, path, oid = _workload_targets(spec)
    database = Database()
    database.register("base", workload.instance)
    engine = _engine(database, use_index=use_index, caching=False)
    engine.absint_verify = True
    plan = _query_plan(kind, "base", path, oid=oid)
    result = engine.execute_plan(plan)
    assert result.violations == ()
    lo, hi = result.certificate.result
    answer = _scalar_answer(kind, result.value)
    assert lo - TOL <= answer <= hi + TOL
    assert engine.metrics.counter("check.absint_violations").value == 0
