"""Property-based tests (hypothesis) for the library's core invariants.

These cover the invariants listed in DESIGN.md §4: distribution legality,
Theorem 1, local/global algorithm equivalence, query-engine agreement,
codec round-trips and interval soundness — on randomly generated models
rather than hand-picked fixtures.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.projection_prob import (
    ancestor_projection_global,
    ancestor_projection_local,
)
from repro.core.cardinality import CardinalityInterval
from repro.core.compact import IndependentOPF, SymmetricOPF
from repro.core.distributions import TabularOPF
from repro.core.potential import (
    count_potential_child_sets,
    potential_child_sets,
    potential_child_sets_via_hitting,
)
from repro.io import json_codec
from repro.pixml.intervals import ProbInterval
from repro.queries.engine import QueryEngine
from repro.semantics.global_interpretation import GlobalInterpretation, verify_theorem1
from repro.semistructured.paths import PathExpression

from tests.helpers import random_dag_instance, random_tree_instance

HEAVY = settings(max_examples=20, deadline=None)
LIGHT = settings(max_examples=60, deadline=None)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def inclusion_maps(draw):
    size = draw(st.integers(min_value=1, max_value=5))
    return {
        f"c{i}": draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        for i in range(size)
    }


@st.composite
def opf_tables(draw):
    """A random legal OPF over subsets of a small child pool."""
    pool = [f"c{i}" for i in range(draw(st.integers(min_value=1, max_value=4)))]
    subsets = [frozenset(), *map(lambda i: frozenset(pool[: i + 1]), range(len(pool)))]
    chosen = draw(st.lists(st.sampled_from(subsets), min_size=1, max_size=4,
                           unique=True))
    weights = draw(st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=len(chosen), max_size=len(chosen)))
    total = sum(weights)
    return TabularOPF({c: w / total for c, w in zip(chosen, weights)})


@st.composite
def lch_with_cards(draw):
    labels = draw(st.integers(min_value=1, max_value=3))
    lch = {}
    cards = {}
    next_id = 0
    for index in range(labels):
        size = draw(st.integers(min_value=1, max_value=3))
        children = {f"c{next_id + i}" for i in range(size)}
        next_id += size
        low = draw(st.integers(min_value=0, max_value=size))
        high = draw(st.integers(min_value=low, max_value=size))
        lch[f"l{index}"] = children
        cards[f"l{index}"] = CardinalityInterval(low, high)
    return lch, cards


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------
class TestDistributionProperties:
    @LIGHT
    @given(opf_tables())
    def test_opf_mass_is_one(self, opf):
        opf.validate()

    @LIGHT
    @given(opf_tables(), st.sampled_from(["c0", "c1", "c2"]))
    def test_marginal_inclusion_bounded(self, opf, oid):
        marginal = opf.marginal_inclusion(oid)
        assert 0.0 <= marginal <= 1.0 + 1e-12

    @LIGHT
    @given(inclusion_maps())
    def test_independent_opf_equals_tabular(self, inclusion):
        compact = IndependentOPF(inclusion)
        for child_set, probability in compact.to_tabular().support():
            assert compact.prob(child_set) == pytest.approx(probability)

    @LIGHT
    @given(inclusion_maps())
    def test_independent_opf_mass_is_one(self, inclusion):
        total = sum(p for _, p in IndependentOPF(inclusion).support())
        assert total == pytest.approx(1.0)

    @LIGHT
    @given(st.integers(min_value=1, max_value=5),
           st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1,
                    max_size=4))
    def test_symmetric_opf_mass_is_one(self, n, raw_weights):
        sizes = list(range(min(len(raw_weights), n + 1)))
        weights = raw_weights[: len(sizes)]
        total = sum(weights)
        opf = SymmetricOPF([f"c{i}" for i in range(n)],
                           {s: w / total for s, w in zip(sizes, weights)})
        assert sum(p for _, p in opf.support()) == pytest.approx(1.0)


class TestPotentialProperties:
    @LIGHT
    @given(lch_with_cards())
    def test_count_matches_enumeration(self, setup):
        lch, cards = setup
        assert count_potential_child_sets(lch, cards) == len(
            list(potential_child_sets(lch, cards))
        )

    @settings(max_examples=30, deadline=None)
    @given(lch_with_cards())
    def test_hitting_definition_agrees(self, setup):
        lch, cards = setup
        via_product = set(potential_child_sets(lch, cards))
        via_hitting = potential_child_sets_via_hitting(lch, cards)
        assert via_product == via_hitting

    @LIGHT
    @given(lch_with_cards())
    def test_every_pc_member_respects_cards(self, setup):
        lch, cards = setup
        for child_set in potential_child_sets(lch, cards):
            for label, children in lch.items():
                assert len(child_set & children) in cards[label]


# ----------------------------------------------------------------------
# Semantics and algebra
# ----------------------------------------------------------------------
class TestSemanticsProperties:
    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000))
    def test_theorem1_random_trees(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        verify_theorem1(pi)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_theorem1_random_dags(self, seed):
        pi = random_dag_instance(random.Random(seed), width=2)
        verify_theorem1(pi)

    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000), st.integers(1, 3))
    def test_projection_local_equals_global(self, seed, length):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        labels = sorted(pi.weak.graph().labels)
        path = PathExpression(
            pi.root, tuple(rng.choice(labels) for _ in range(length))
        )
        reference = ancestor_projection_global(pi, path)
        local = ancestor_projection_local(pi, path)
        local.validate()
        assert GlobalInterpretation.from_local(local).is_close_to(reference)

    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000))
    def test_query_engines_agree(self, seed):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        graph = pi.weak.graph()
        target = rng.choice(sorted(pi.objects))
        labels = []
        current = target
        while current != pi.root:
            (parent,) = graph.parents(current)
            labels.append(graph.label(parent, current))
            current = parent
        labels.reverse()
        path = PathExpression(pi.root, tuple(labels))
        answers = [
            QueryEngine(pi, strategy=s).point(path, target)
            for s in ("local", "bayes", "enumerate")
        ]
        assert answers[0] == pytest.approx(answers[2], abs=1e-9)
        assert answers[1] == pytest.approx(answers[2], abs=1e-9)

    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000))
    def test_json_round_trip_preserves_distribution(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        restored = json_codec.loads(json_codec.dumps(pi))
        restored.validate()
        assert GlobalInterpretation.from_local(restored).is_close_to(
            GlobalInterpretation.from_local(pi)
        )


# ----------------------------------------------------------------------
# Intervals
# ----------------------------------------------------------------------
class TestIntervalProperties:
    @LIGHT
    @given(
        st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1),
        st.floats(0, 1), st.floats(0, 1),
    )
    def test_product_soundness(self, a, b, c, d, p, q):
        lo1, hi1 = min(a, b), max(a, b)
        lo2, hi2 = min(c, d), max(c, d)
        i1 = ProbInterval(lo1, hi1)
        i2 = ProbInterval(lo2, hi2)
        point1 = lo1 + p * (hi1 - lo1)
        point2 = lo2 + q * (hi2 - lo2)
        product = i1.product(i2)
        assert product.lo - 1e-12 <= point1 * point2 <= product.hi + 1e-12

    @LIGHT
    @given(st.floats(0, 1), st.floats(0, 1))
    def test_complement_involution(self, a, b):
        interval = ProbInterval(min(a, b), max(a, b))
        doubled = interval.complement().complement()
        assert doubled.lo == pytest.approx(interval.lo, abs=1e-12)
        assert doubled.hi == pytest.approx(interval.hi, abs=1e-12)


class TestAggregateProperties:
    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000), st.integers(1, 3))
    def test_match_count_distribution_matches_enumeration(self, seed, length):
        from repro.queries.aggregates import match_count_distribution
        from repro.semistructured.paths import evaluate_path

        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        labels = sorted(pi.weak.graph().labels)
        path = PathExpression(
            pi.root, tuple(rng.choice(labels) for _ in range(length))
        )
        computed = match_count_distribution(pi, path)
        brute: dict[int, float] = {}
        for world, probability in GlobalInterpretation.from_local(pi).support():
            count = len(evaluate_path(world.graph, path))
            brute[count] = brute.get(count, 0.0) + probability
        assert set(computed) == set(brute)
        for count in brute:
            assert computed[count] == pytest.approx(brute[count])

    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000))
    def test_expected_size_by_linearity(self, seed):
        from repro.analysis import expected_size

        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        brute = sum(
            p * len(w)
            for w, p in GlobalInterpretation.from_local(pi).support()
        )
        assert expected_size(pi) == pytest.approx(brute)


class TestUpdateProperties:
    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000))
    def test_assert_child_certain_root_equals_conditioning(self, seed):
        from repro.algebra.updates import assert_child

        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        children = sorted(pi.weak.potential_children(pi.root))
        child = rng.choice(children)
        opf = pi.opf(pi.root)
        if opf.marginal_inclusion(child) <= 0.0:
            return  # conditioning event has probability zero
        updated = assert_child(pi, pi.root, child)
        reference = GlobalInterpretation.from_local(pi).condition(
            lambda w, _c=child: _c in w.children(w.root)
        )
        assert GlobalInterpretation.from_local(updated).is_close_to(reference)

    @HEAVY
    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=0.0, max_value=1.0))
    def test_insert_child_marginal(self, seed, probability):
        from repro.algebra.updates import insert_child

        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        label = sorted(pi.weak.labels_of(pi.root))[0]
        updated = insert_child(pi, pi.root, label, "brand-new", probability)
        assert updated.opf(pi.root).marginal_inclusion("brand-new") == (
            pytest.approx(probability)
        )


class TestUnrollProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(0, 4))
    def test_unrolled_mass_is_one(self, seed, horizon):
        from repro.core.distributions import TabularOPF
        from repro.core.instance import ProbabilisticInstance
        from repro.core.unroll import unroll
        from repro.core.weak_instance import WeakInstance

        rng = random.Random(seed)
        weak = WeakInstance("a")
        weak.set_lch("a", "l", ["b"])
        weak.set_lch("b", "l", ["a"])
        pi = ProbabilisticInstance(weak)
        p_ab = rng.uniform(0.1, 0.9)
        p_ba = rng.uniform(0.1, 0.9)
        pi.set_opf("a", TabularOPF({("b",): p_ab, (): 1.0 - p_ab}))
        pi.set_opf("b", TabularOPF({("a",): p_ba, (): 1.0 - p_ba}))
        unrolled = unroll(pi, horizon)
        unrolled.validate()
        GlobalInterpretation.from_local(unrolled).validate()


class TestLearningProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_exact_weights_recover_distribution(self, seed):
        from repro.learn import learn_instance
        from repro.semantics.compatible import domain_distribution

        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        learned = learn_instance(list(domain_distribution(pi).items()))
        assert GlobalInterpretation.from_local(learned).is_close_to(
            GlobalInterpretation.from_local(pi)
        )


class TestEventProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_boolean_laws(self, seed):
        from repro.events import ObjectExists, probability

        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2)
        objects = sorted(pi.objects)
        a = ObjectExists(rng.choice(objects))
        b = ObjectExists(rng.choice(objects))
        p_a = probability(pi, a)
        p_b = probability(pi, b)
        p_and = probability(pi, a & b)
        p_or = probability(pi, a | b)
        assert p_or == pytest.approx(p_a + p_b - p_and)
        assert probability(pi, ~a) == pytest.approx(1.0 - p_a)
        assert probability(pi, ~(a & b)) == pytest.approx(
            probability(pi, ~a | ~b)
        )
