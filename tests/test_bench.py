"""Tests for the benchmark harness (timing decomposition and sweep runner)."""

import random

import pytest

from repro.bench.runner import (
    SweepConfig,
    format_series,
    records_to_dicts,
    run_projection_sweep,
    run_selection_sweep,
)
from repro.bench.timing import timed_ancestor_projection, timed_selection
from repro.algebra.projection_prob import ancestor_projection_local
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
    random_selection_target,
)


@pytest.fixture
def workload():
    return generate_workload(WorkloadSpec(depth=3, branching=2, seed=21))


class TestTiming:
    def test_projection_timing_components(self, workload, tmp_path):
        rng = random.Random(0)
        path = random_projection_path(workload, rng)
        result, timing = timed_ancestor_projection(
            workload.instance, path, tmp_path / "out.json"
        )
        assert timing.copy >= 0 and timing.locate >= 0
        assert timing.update > 0
        assert timing.write > 0
        assert timing.total == pytest.approx(
            timing.copy + timing.locate + timing.structure + timing.update
            + timing.write
        )
        assert (tmp_path / "out.json").exists()
        result.validate()

    def test_projection_result_matches_untimed(self, workload, tmp_path):
        rng = random.Random(1)
        path = random_projection_path(workload, rng)
        timed, _ = timed_ancestor_projection(workload.instance, path, None)
        plain = ancestor_projection_local(workload.instance, path)
        a = GlobalInterpretation.from_local(timed)
        b = GlobalInterpretation.from_local(plain)
        assert a.is_close_to(b)

    def test_selection_timing_components(self, workload, tmp_path):
        rng = random.Random(2)
        path, target = random_selection_target(workload, rng)
        result, timing = timed_selection(
            workload.instance, path, target, tmp_path / "out.json"
        )
        assert timing.structure == 0.0  # selection never changes structure
        assert timing.write > 0
        result.validate()

    def test_selection_does_not_mutate_input(self, workload):
        rng = random.Random(3)
        path, target = random_selection_target(workload, rng)
        before = workload.instance.opf("o0").to_tabular()
        timed_selection(workload.instance, path, target, None)
        assert workload.instance.opf("o0").to_tabular() == before

    def test_skip_write_when_no_path(self, workload):
        rng = random.Random(4)
        path = random_projection_path(workload, rng)
        _, timing = timed_ancestor_projection(workload.instance, path, None)
        assert timing.write == 0.0


class TestRunner:
    @pytest.fixture(scope="class")
    def records(self):
        config = SweepConfig(
            grid={2: (3, 4)},
            labelings=("SL", "FR"),
            instances_per_config=1,
            queries_per_instance=2,
        )
        return run_projection_sweep(config)

    def test_one_record_per_cell(self, records):
        assert len(records) == 4  # 2 labelings x 2 depths

    def test_record_contents(self, records):
        for record in records:
            assert record.operation == "projection"
            assert record.objects in (15, 31)
            assert record.queries == 2
            assert record.total > 0

    def test_selection_sweep(self):
        config = SweepConfig(
            grid={2: (3,)}, labelings=("SL",),
            instances_per_config=1, queries_per_instance=1,
        )
        records = run_selection_sweep(config)
        assert len(records) == 1
        assert records[0].operation == "selection"
        assert records[0].timing.write > 0

    def test_format_series_table(self, records):
        table = format_series(records, "total")
        assert "b=2 SL" in table
        assert "b=2 FR" in table
        assert "15" in table and "31" in table

    def test_records_to_dicts(self, records):
        dicts = records_to_dicts(records)
        assert len(dicts) == len(records)
        assert {"operation", "labeling", "branching", "depth", "objects",
                "total_s"} <= set(dicts[0])
