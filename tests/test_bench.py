"""Tests for the benchmark harness (timing decomposition and sweep runner)."""

import random

import pytest

from repro.bench.runner import (
    SweepConfig,
    format_series,
    records_to_dicts,
    run_projection_sweep,
    run_selection_sweep,
)
from repro.bench.timing import timed_ancestor_projection, timed_selection
from repro.algebra.projection_prob import ancestor_projection_local
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.workloads.generator import (
    WorkloadSpec,
    generate_workload,
    random_projection_path,
    random_selection_target,
)


@pytest.fixture
def workload():
    return generate_workload(WorkloadSpec(depth=3, branching=2, seed=21))


class TestTiming:
    def test_projection_timing_components(self, workload, tmp_path):
        rng = random.Random(0)
        path = random_projection_path(workload, rng)
        result, timing = timed_ancestor_projection(
            workload.instance, path, tmp_path / "out.json"
        )
        assert timing.copy >= 0 and timing.locate >= 0
        assert timing.update > 0
        assert timing.write > 0
        assert timing.total == pytest.approx(
            timing.copy + timing.locate + timing.structure + timing.update
            + timing.write
        )
        assert (tmp_path / "out.json").exists()
        result.validate()

    def test_projection_result_matches_untimed(self, workload, tmp_path):
        rng = random.Random(1)
        path = random_projection_path(workload, rng)
        timed, _ = timed_ancestor_projection(workload.instance, path, None)
        plain = ancestor_projection_local(workload.instance, path)
        a = GlobalInterpretation.from_local(timed)
        b = GlobalInterpretation.from_local(plain)
        assert a.is_close_to(b)

    def test_selection_timing_components(self, workload, tmp_path):
        rng = random.Random(2)
        path, target = random_selection_target(workload, rng)
        result, timing = timed_selection(
            workload.instance, path, target, tmp_path / "out.json"
        )
        assert timing.structure == 0.0  # selection never changes structure
        assert timing.write > 0
        result.validate()

    def test_selection_does_not_mutate_input(self, workload):
        rng = random.Random(3)
        path, target = random_selection_target(workload, rng)
        before = workload.instance.opf("o0").to_tabular()
        timed_selection(workload.instance, path, target, None)
        assert workload.instance.opf("o0").to_tabular() == before

    def test_skip_write_when_no_path(self, workload):
        rng = random.Random(4)
        path = random_projection_path(workload, rng)
        _, timing = timed_ancestor_projection(workload.instance, path, None)
        assert timing.write == 0.0


class TestRunner:
    @pytest.fixture(scope="class")
    def records(self):
        config = SweepConfig(
            grid={2: (3, 4)},
            labelings=("SL", "FR"),
            instances_per_config=1,
            queries_per_instance=2,
        )
        return run_projection_sweep(config)

    def test_one_record_per_cell(self, records):
        assert len(records) == 4  # 2 labelings x 2 depths

    def test_record_contents(self, records):
        for record in records:
            assert record.operation == "projection"
            assert record.objects in (15, 31)
            assert record.queries == 2
            assert record.total > 0

    def test_selection_sweep(self):
        config = SweepConfig(
            grid={2: (3,)}, labelings=("SL",),
            instances_per_config=1, queries_per_instance=1,
        )
        records = run_selection_sweep(config)
        assert len(records) == 1
        assert records[0].operation == "selection"
        assert records[0].timing.write > 0

    def test_format_series_table(self, records):
        table = format_series(records, "total")
        assert "b=2 SL" in table
        assert "b=2 FR" in table
        assert "15" in table and "31" in table

    def test_records_to_dicts(self, records):
        dicts = records_to_dicts(records)
        assert len(dicts) == len(records)
        assert {"operation", "labeling", "branching", "depth", "objects",
                "total_s"} <= set(dicts[0])


class TestAbsintBench:
    @pytest.fixture(scope="class")
    def records(self):
        from repro.bench.absint import run_absint_bench

        return run_absint_bench(quick=True, repeats=1)

    def test_every_cell_measures_every_mode(self, records):
        from repro.bench.absint import MODES, QUICK_GRID

        assert len(records) == len(QUICK_GRID) * len(MODES)

    def test_dead_on_actually_skipped(self, records):
        dead_on = [r for r in records if r.mode == "dead_on"]
        assert dead_on and all(r.skips > 0 for r in dead_on)
        assert all(r.speedup is not None for r in dead_on)

    def test_records_are_mergeable(self, records):
        from repro.bench.absint import records_to_dicts as to_dicts

        entry = to_dicts(records)[0]
        assert entry["operation"] == "absint"
        assert {"mode", "repeats", "total_s", "speedup", "skips"} <= set(entry)

    def test_format_table(self, records):
        from repro.bench.absint import format_absint_records

        table = format_absint_records(records)
        assert "dead_on" in table and "certify" in table


class TestGate:
    def test_new_series_pass(self):
        from repro.bench.gate import gate_records

        lines, regressed = gate_records(
            [{"operation": "absint", "mode": "dead_on", "labeling": "SL",
              "branching": 2, "depth": 4, "speedup": 3.0}]
        )
        assert not regressed
        assert any("new" in line for line in lines)

    def test_regression_detected(self):
        from repro.bench.gate import gate_records

        history = [
            {"operation": "absint", "mode": "dead_on", "labeling": "SL",
             "branching": 2, "depth": 4, "speedup": s}
            for s in (3.0, 3.2, 2.9, 1.0)
        ]
        lines, regressed = gate_records(history, threshold=0.30)
        assert regressed
        assert any("REGRESSION" in line for line in lines)

    def test_within_threshold_passes(self):
        from repro.bench.gate import gate_records

        history = [
            {"operation": "absint", "mode": "dead_on", "labeling": "SL",
             "branching": 2, "depth": 4, "speedup": s}
            for s in (3.0, 3.2, 2.9, 2.5)
        ]
        _lines, regressed = gate_records(history, threshold=0.30)
        assert not regressed

    def test_records_without_speedup_ignored(self):
        from repro.bench.gate import gate_records

        lines, regressed = gate_records(
            [{"operation": "projection", "total_s": 0.1}]
        )
        assert not regressed
        assert "no ratio metrics" in lines[-1]

    def test_missing_file_fails(self, tmp_path):
        from repro.bench.gate import run_gate

        assert run_gate(tmp_path / "absent.json") == 1

    def test_cli_entry_point(self, tmp_path, capsys):
        import json

        from repro.bench.gate import main

        records = tmp_path / "records.json"
        records.write_text(json.dumps([
            {"operation": "absint", "mode": "dead_on", "labeling": "SL",
             "branching": 2, "depth": 4, "speedup": s}
            for s in (3.0, 2.8)
        ]))
        assert main(["--records", str(records)]) == 0
        assert "gate: pass" in capsys.readouterr().out
