"""Tests for the exhaustive model linter and DOT export."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.core.cardinality import CardinalityInterval
from repro.core.distributions import TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.lint import format_issues, has_errors, lint_instance
from repro.core.weak_instance import WeakInstance
from repro.paper import figure2_instance
from repro.render import to_dot
from repro.semistructured.types import LeafType


def codes(issues):
    return [issue.code for issue in issues]


class TestLint:
    def test_clean_instance(self):
        issues = lint_instance(figure2_instance())
        assert issues == []
        assert format_issues(issues) == "clean"

    def test_cycle_reported(self):
        weak = WeakInstance("a")
        weak.set_lch("a", "l", ["b"])
        weak.set_lch("b", "l", ["a"])
        issues = lint_instance(ProbabilisticInstance(weak))
        assert "cyclic" in codes(issues)
        assert has_errors(issues)

    def test_unreachable_warning(self):
        weak = WeakInstance("r")
        weak.add_object("island")
        issues = lint_instance(ProbabilisticInstance(weak))
        assert "unreachable" in codes(issues)
        assert not has_errors(issues)

    def test_missing_opf(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        issues = lint_instance(ProbabilisticInstance(weak))
        assert "missing-opf" in codes(issues)

    def test_bad_total_and_outside_pc(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({("a", "ghost"): 0.5}))
        issue_codes = codes(lint_instance(pi))
        assert "bad-total" in issue_codes
        assert "outside-pc" in issue_codes

    def test_unsatisfiable_card(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        weak.set_card("r", "l", CardinalityInterval(2, 2))
        pi = ProbabilisticInstance(weak)
        issue_codes = codes(lint_instance(pi))
        assert "unsatisfiable-card" in issue_codes

    def test_dead_label_warning(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        weak.set_card("r", "l", CardinalityInterval(0, 0))
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({(): 1.0}))
        assert "dead-label" in codes(lint_instance(pi))

    def test_never_chosen_warning(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b"])
        builder.opf("r", {("a",): 1.0})  # b has zero inclusion probability
        builder.leaf("a", "t", ["v"], {"v": 1.0})
        builder.leaf("b", "t", vpf={"v": 1.0})
        pi = builder.build()
        issues = lint_instance(pi)
        assert "never-chosen" in codes(issues)
        assert not has_errors(issues)

    def test_vpf_outside_domain(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        weak.set_type("a", LeafType("t", ["x"]))
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({("a",): 1.0}))
        pi.interpretation.set_vpf("a", TabularVPF({"nope": 1.0}))
        assert "outside-domain" in codes(lint_instance(pi))

    def test_typed_leaf_without_vpf_warning(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        weak.set_type("a", LeafType("t", ["x"]))
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({("a",): 1.0}))
        assert "typed-no-vpf" in codes(lint_instance(pi))

    def test_vpf_without_type_warning(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({("a",): 1.0}))
        pi.interpretation.set_vpf("a", TabularVPF({"x": 1.0}))
        assert "vpf-no-type" in codes(lint_instance(pi))

    def test_errors_sorted_before_warnings(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        weak.add_object("island")  # warning
        pi = ProbabilisticInstance(weak)  # missing OPF: error
        issues = lint_instance(pi)
        severities = [issue.severity for issue in issues]
        assert severities == sorted(severities)

    def test_issue_str(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        issues = lint_instance(ProbabilisticInstance(weak))
        assert "missing-opf" in str(issues[0])

    def test_unknown_mnemonic_rejected_at_construction(self):
        # Every mnemonic must map to a stable PX code; a typo in an
        # emitting site must fail loudly, not produce a codeless issue.
        from repro.core.lint import Issue

        with pytest.raises(ValueError, match="unknown lint mnemonic"):
            Issue(severity="error", oid=None, code="no-such-mnemonic",
                  message="boom")

    def test_known_mnemonic_gets_its_px_code(self):
        from repro.core.lint import Issue

        issue = Issue(severity="error", oid=None, code="missing-opf",
                      message="m")
        assert issue.px.startswith("PX1")


class TestDot:
    def test_dot_structure(self):
        dot = to_dot(figure2_instance())
        assert dot.startswith("digraph pxml {")
        assert '"R" -> "B1"' in dot
        assert "book" in dot

    def test_dot_marginals(self):
        dot = to_dot(figure2_instance())
        # P(B1 in c(R)) = 0.2 + 0.2 + 0.4 = 0.8.
        assert "p=0.800" in dot

    def test_dot_leaf_values(self):
        dot = to_dot(figure2_instance())
        assert "institution-type" in dot
        assert "Stanford" in dot
