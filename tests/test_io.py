"""Tests for the JSON and XML codecs."""

import json

import pytest

from repro.core.compact import IndependentOPF
from repro.errors import CodecError
from repro.io import json_codec, xml_codec
from repro.paper import example41_s1, figure1_instance, figure2_instance
from repro.protdb.translate import to_pxml
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.workloads.generator import WorkloadSpec, generate_workload


class TestJsonProbabilistic:
    def test_round_trip_figure2(self):
        pi = figure2_instance()
        restored = json_codec.loads(json_codec.dumps(pi))
        restored.validate()
        assert restored.objects == pi.objects
        assert restored.lch("R", "book") == pi.lch("R", "book")
        assert restored.card("B1", "author") == pi.card("B1", "author")
        assert restored.opf("B1").to_tabular() == pi.opf("B1").to_tabular()
        assert restored.vpf("T1").to_tabular() == pi.vpf("T1").to_tabular()

    def test_round_trip_preserves_distribution(self):
        pi = figure2_instance()
        restored = json_codec.loads(json_codec.dumps(pi))
        a = GlobalInterpretation.from_local(pi)
        b = GlobalInterpretation.from_local(restored)
        assert a.is_close_to(b)

    def test_round_trip_generated_workload(self):
        workload = generate_workload(WorkloadSpec(depth=2, branching=2, seed=3))
        pi = workload.instance
        restored = json_codec.loads(json_codec.dumps(pi))
        restored.validate()
        assert restored.total_interpretation_entries() == (
            pi.total_interpretation_entries()
        )

    def test_independent_opf_kind_preserved(self):
        from tests.test_protdb import make_instance

        pi = to_pxml(make_instance())
        restored = json_codec.loads(json_codec.dumps(pi))
        assert isinstance(restored.opf("r"), IndependentOPF)
        assert restored.opf("r").marginal_inclusion("b1") == pytest.approx(0.8)

    def test_file_round_trip(self, tmp_path):
        pi = figure2_instance()
        path = tmp_path / "instance.json"
        written = json_codec.write_instance(pi, path)
        assert written == path.stat().st_size
        restored = json_codec.read_instance(path)
        restored.validate()

    def test_wrong_format_rejected(self):
        with pytest.raises(CodecError):
            json_codec.decode_instance({"format": "something-else"})

    def test_wrong_version_rejected(self):
        payload = json_codec.encode_instance(figure2_instance())
        payload["version"] = 999
        with pytest.raises(CodecError):
            json_codec.decode_instance(payload)

    def test_non_scalar_value_rejected(self):
        from repro.core.builder import InstanceBuilder

        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"])
        builder.opf("r", {("a",): 1.0})
        builder.leaf("a", "t", [("tuple", "value")], {("tuple", "value"): 1.0})
        pi = builder.build()
        with pytest.raises(CodecError):
            json_codec.dumps(pi)

    def test_output_is_valid_json(self):
        payload = json_codec.dumps(figure2_instance(), indent=2)
        parsed = json.loads(payload)
        assert parsed["root"] == "R"


class TestJsonSemistructured:
    def test_round_trip(self):
        inst = figure1_instance()
        data = json_codec.encode_semistructured(inst)
        restored = json_codec.decode_semistructured(data)
        assert restored == inst

    def test_world_round_trip(self):
        world = example41_s1()
        restored = json_codec.decode_semistructured(
            json_codec.encode_semistructured(world)
        )
        assert restored == world

    def test_wrong_format_rejected(self):
        with pytest.raises(CodecError):
            json_codec.decode_semistructured({"format": "nope"})


class TestXml:
    def test_tree_round_trip(self):
        world = example41_s1()
        text = xml_codec.dumps(world)
        restored = xml_codec.loads(text)
        assert restored == world

    def test_dag_round_trip_uses_refs(self):
        inst = figure1_instance()  # A1 shared by B1 and B2; I1 by A1 and A2
        text = xml_codec.dumps(inst)
        assert "pxml-ref" in text
        restored = xml_codec.loads(text)
        assert restored == inst

    def test_file_round_trip(self, tmp_path):
        world = example41_s1()
        path = tmp_path / "world.xml"
        xml_codec.write_world(world, path)
        assert xml_codec.read_world(path) == world

    def test_root_tag_enforced(self):
        with pytest.raises(CodecError):
            xml_codec.loads("<wrong oid='r'/>")

    def test_readable_tags_are_labels(self):
        text = xml_codec.dumps(example41_s1())
        assert "<book" in text
        assert "<author" in text


class TestCorpus:
    def test_round_trip(self, tmp_path):
        from repro.io.corpus import read_corpus, write_corpus
        from repro.semantics.sampling import WorldSampler

        pi = figure2_instance()
        worlds = WorldSampler(pi, seed=4).sample_many(25)
        path = tmp_path / "corpus.jsonl"
        assert write_corpus(worlds, path) == 25
        restored = read_corpus(path)
        assert restored == worlds

    def test_streaming_iteration(self, tmp_path):
        from repro.io.corpus import iter_corpus, write_corpus

        worlds = [example41_s1(), example41_s1()]
        path = tmp_path / "corpus.jsonl"
        write_corpus(worlds, path)
        count = sum(1 for _ in iter_corpus(path))
        assert count == 2

    def test_learning_from_corpus_file(self, tmp_path):
        from repro.io.corpus import iter_corpus, write_corpus
        from repro.learn import learn_instance
        from repro.semantics.sampling import WorldSampler

        pi = figure2_instance()
        write_corpus(WorldSampler(pi, seed=5).sample_many(500),
                     tmp_path / "c.jsonl")
        learned = learn_instance(iter_corpus(tmp_path / "c.jsonl"))
        learned.validate()
        assert learned.root == "R"

    def test_blank_lines_skipped(self, tmp_path):
        from repro.io.corpus import read_corpus, write_corpus

        path = tmp_path / "corpus.jsonl"
        write_corpus([example41_s1()], path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(read_corpus(path)) == 1


class TestCompactCodec:
    def test_round_trip_figure2(self):
        from repro.io import compact_codec

        pi = figure2_instance()
        restored = compact_codec.loads(compact_codec.dumps(pi))
        restored.validate()
        assert GlobalInterpretation.from_local(restored).is_close_to(
            GlobalInterpretation.from_local(pi)
        )
        assert restored.card("B1", "author") == pi.card("B1", "author")

    def test_round_trip_generated_workload(self):
        from repro.io import compact_codec

        pi = generate_workload(WorkloadSpec(depth=2, branching=3, seed=8)).instance
        restored = compact_codec.loads(compact_codec.dumps(pi))
        restored.validate()
        assert restored.total_interpretation_entries() == (
            pi.total_interpretation_entries()
        )

    def test_independent_opf_stays_compact(self):
        from repro.io import compact_codec
        from tests.test_protdb import make_instance

        pi = to_pxml(make_instance())
        restored = compact_codec.loads(compact_codec.dumps(pi))
        assert isinstance(restored.opf("r"), IndependentOPF)

    def test_numeric_values_round_trip(self):
        from repro.core.builder import InstanceBuilder
        from repro.io import compact_codec

        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"])
        builder.opf("r", {("a",): 1.0})
        builder.leaf("a", "n", [1, 2.5], {1: 0.25, 2.5: 0.75})
        restored = compact_codec.loads(compact_codec.dumps(builder.build()))
        assert restored.vpf("a").prob(2.5) == pytest.approx(0.75)

    def test_file_round_trip(self, tmp_path):
        from repro.io import compact_codec

        path = tmp_path / "fig2.pxmlc"
        written = compact_codec.write_instance(figure2_instance(), path)
        assert written == path.stat().st_size
        compact_codec.read_instance(path).validate()

    def test_forbidden_id_rejected(self):
        from repro.core.builder import InstanceBuilder
        from repro.io import compact_codec

        builder = InstanceBuilder("r")
        builder.children("r", "l", ["bad,id"])
        builder.opf("r", {("bad,id",): 1.0})
        builder.leaf("bad,id", "t", ["x"], {"x": 1.0})
        with pytest.raises(CodecError):
            compact_codec.dumps(builder.build())

    def test_missing_header_rejected(self):
        from repro.io import compact_codec

        with pytest.raises(CodecError):
            compact_codec.loads("ROOT\tr\n")

    def test_malformed_record_rejected(self):
        from repro.io import compact_codec

        with pytest.raises(CodecError):
            compact_codec.loads("PXMLC\t1\nROOT\tr\nE\tnot-a-float\tx\n")

    def test_selection_timing_with_compact_codec(self, tmp_path):
        from repro.bench.timing import timed_selection
        from repro.semistructured.paths import PathExpression
        import random as _random
        from repro.workloads.generator import random_selection_target

        workload = generate_workload(WorkloadSpec(depth=3, branching=2, seed=9))
        path, target = random_selection_target(workload, _random.Random(0))
        _, timing = timed_selection(
            workload.instance, path, target, tmp_path / "o.pxmlc",
            codec="compact",
        )
        assert timing.write > 0
