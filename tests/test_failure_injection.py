"""Failure-injection and less-traveled-path tests."""

import subprocess
import sys

import pytest

from repro.algebra.product import cartesian_product
from repro.algebra.projection_prob import epsilon_pass
from repro.core.builder import InstanceBuilder
from repro.core.distributions import TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.weak_instance import WeakInstance
from repro.errors import AlgebraError, ModelError, SemanticsError
from repro.io.json_codec import dumps, loads, write_instance
from repro.paper import figure2_instance
from repro.queries.engine import QueryEngine


class TestMissingPieces:
    def test_epsilon_pass_without_opf(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        pi = ProbabilisticInstance(weak)
        with pytest.raises(SemanticsError):
            epsilon_pass(pi, "r.l")

    def test_product_default_root_collision(self):
        left = InstanceBuilder("a")
        left.children("a", "l", ["axb"], card=(1, 1))  # collides with "axb"
        left.opf("a", {("axb",): 1.0})
        left.leaf("axb", "t", ["v"], {"v": 1.0})
        right = InstanceBuilder("b").build(validate=False)
        with pytest.raises(AlgebraError):
            cartesian_product(left.build(), right)  # default root id "axb"

    def test_weak_root_removal_rejected(self):
        weak = WeakInstance("r")
        with pytest.raises(ModelError):
            weak.remove_object("r")

    def test_engine_on_single_node_instance(self):
        pi = InstanceBuilder("solo").build(validate=False)
        engine = QueryEngine(pi)
        assert engine.strategy == "local"
        assert engine.point("solo", "solo") == 1.0
        assert engine.exists("solo") == 1.0


class TestUnrollFanOut:
    def test_multi_child_cycle(self):
        # A cycle through a node that also has an ordinary leaf child.
        weak = WeakInstance("r")
        weak.set_lch("r", "next", ["r"])
        weak.set_lch("r", "leafy", ["v"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({
            ("v",): 0.4, ("r", "v"): 0.3, ("r",): 0.1, (): 0.2,
        }))
        from repro.core.unroll import unroll

        flat = unroll(pi, 2)
        flat.validate()
        # Each layer keeps both the self-copy and the leaf copy.
        assert "v@1" in flat and "r@1" in flat and "v@2" in flat
        assert flat.opf("r@1").prob(frozenset({"r@2", "v@2"})) == pytest.approx(0.3)


class TestScalarValues:
    def test_numeric_and_bool_values_round_trip(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b", "c"], card=(3, 3))
        builder.opf("r", {("a", "b", "c"): 1.0})
        builder.leaf("a", "int-type", [1, 2, 3], {2: 1.0})
        builder.leaf("b", "float-type", [1.5, 2.5], {2.5: 1.0})
        builder.leaf("c", "bool-type", [True, False], {True: 1.0})
        pi = builder.build()
        restored = loads(dumps(pi))
        restored.validate()
        assert restored.vpf("a").prob(2) == 1.0
        assert restored.vpf("b").prob(2.5) == 1.0
        assert restored.vpf("c").prob(True) == 1.0


class TestModuleEntryPoints:
    """The ``python -m`` entry points must work as real subprocesses."""

    def test_tools_subprocess(self, tmp_path):
        target = tmp_path / "fig2.json"
        write_instance(figure2_instance(), target)
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "summary", str(target)],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "objects=11" in result.stdout

    def test_pxql_subprocess(self, tmp_path):
        write_instance(figure2_instance(), tmp_path / "fig2.pxml.json")
        result = subprocess.run(
            [sys.executable, "-m", "repro.pxql", "-d", str(tmp_path),
             "PROB B1 IN fig2"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "0.8" in result.stdout

    def test_bench_subprocess(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench", "fig7b", "--quick"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0
        assert "Figure 7(b)" in result.stdout
