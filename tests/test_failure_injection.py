"""Failure-injection and less-traveled-path tests.

The second half of this module is the chaos suite: deterministic seeded
fault injection (see :mod:`repro.resilience.faults`) driven through the
codec, the catalog, and the PXQL example corpus.  The invariant under
test everywhere: every operation either returns its fault-free result or
raises a typed :class:`~repro.errors.PXMLError` — no torn files, no
silent wrong answers, no raw ``OSError`` escapes.  Extra chaos seeds can
be supplied via the ``PXML_CHAOS_SEED`` environment variable (CI runs a
matrix of them).
"""

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algebra.product import cartesian_product
from repro.algebra.projection_prob import epsilon_pass
from repro.core.builder import InstanceBuilder
from repro.core.distributions import TabularOPF
from repro.core.instance import ProbabilisticInstance
from repro.core.weak_instance import WeakInstance
from repro.errors import (
    AlgebraError,
    CorruptInstanceError,
    ModelError,
    PXMLError,
    SemanticsError,
)
from repro.io.json_codec import (
    checksum_sidecar,
    dumps,
    loads,
    read_instance,
    write_instance,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.paper import figure2_instance
from repro.pxql.interpreter import Interpreter
from repro.queries.engine import QueryEngine
from repro.resilience import FaultInjector, FaultSpec
from repro.storage.database import QUARANTINE_DIR, Database, DatabaseError

FIXTURES = Path(__file__).resolve().parent.parent / "examples" / "fixtures"


def _no_sleep(_seconds):
    """Injectable sleep: retries and slow faults cost no wall-clock."""


class TestMissingPieces:
    def test_epsilon_pass_without_opf(self):
        weak = WeakInstance("r")
        weak.set_lch("r", "l", ["a"])
        pi = ProbabilisticInstance(weak)
        with pytest.raises(SemanticsError):
            epsilon_pass(pi, "r.l")

    def test_product_default_root_collision(self):
        left = InstanceBuilder("a")
        left.children("a", "l", ["axb"], card=(1, 1))  # collides with "axb"
        left.opf("a", {("axb",): 1.0})
        left.leaf("axb", "t", ["v"], {"v": 1.0})
        right = InstanceBuilder("b").build(validate=False)
        with pytest.raises(AlgebraError):
            cartesian_product(left.build(), right)  # default root id "axb"

    def test_weak_root_removal_rejected(self):
        weak = WeakInstance("r")
        with pytest.raises(ModelError):
            weak.remove_object("r")

    def test_engine_on_single_node_instance(self):
        pi = InstanceBuilder("solo").build(validate=False)
        engine = QueryEngine(pi)
        assert engine.strategy == "local"
        assert engine.point("solo", "solo") == 1.0
        assert engine.exists("solo") == 1.0


class TestUnrollFanOut:
    def test_multi_child_cycle(self):
        # A cycle through a node that also has an ordinary leaf child.
        weak = WeakInstance("r")
        weak.set_lch("r", "next", ["r"])
        weak.set_lch("r", "leafy", ["v"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("r", TabularOPF({
            ("v",): 0.4, ("r", "v"): 0.3, ("r",): 0.1, (): 0.2,
        }))
        from repro.core.unroll import unroll

        flat = unroll(pi, 2)
        flat.validate()
        # Each layer keeps both the self-copy and the leaf copy.
        assert "v@1" in flat and "r@1" in flat and "v@2" in flat
        assert flat.opf("r@1").prob(frozenset({"r@2", "v@2"})) == pytest.approx(0.3)


class TestScalarValues:
    def test_numeric_and_bool_values_round_trip(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a", "b", "c"], card=(3, 3))
        builder.opf("r", {("a", "b", "c"): 1.0})
        builder.leaf("a", "int-type", [1, 2, 3], {2: 1.0})
        builder.leaf("b", "float-type", [1.5, 2.5], {2.5: 1.0})
        builder.leaf("c", "bool-type", [True, False], {True: 1.0})
        pi = builder.build()
        restored = loads(dumps(pi))
        restored.validate()
        assert restored.vpf("a").prob(2) == 1.0
        assert restored.vpf("b").prob(2.5) == 1.0
        assert restored.vpf("c").prob(True) == 1.0


class TestModuleEntryPoints:
    """The ``python -m`` entry points must work as real subprocesses."""

    def test_tools_subprocess(self, tmp_path):
        target = tmp_path / "fig2.json"
        write_instance(figure2_instance(), target)
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "summary", str(target)],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "objects=11" in result.stdout

    def test_pxql_subprocess(self, tmp_path):
        write_instance(figure2_instance(), tmp_path / "fig2.pxml.json")
        result = subprocess.run(
            [sys.executable, "-m", "repro.pxql", "-d", str(tmp_path),
             "PROB B1 IN fig2"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "0.8" in result.stdout

    def test_bench_subprocess(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench", "fig7b", "--quick"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0
        assert "Figure 7(b)" in result.stdout


# ----------------------------------------------------------------------
# Crash-safe codec: atomic publication and checksum verification
# ----------------------------------------------------------------------
class TestCrashConsistency:
    def test_crash_before_publish_keeps_old_version(self, tmp_path):
        """A crash while the tmp file is being swapped in loses nothing."""
        target = tmp_path / "fig2.pxml.json"
        write_instance(figure2_instance(), target)
        old_bytes = target.read_bytes()
        with FaultInjector(FaultSpec("codec.write.tmp", kind="error")):
            with pytest.raises(PXMLError):
                write_instance(figure2_instance(), target)
        assert target.read_bytes() == old_bytes  # old, never torn
        assert not list(tmp_path.glob("*.tmp"))  # tmp file cleaned up
        read_instance(target).validate()

    def test_crash_between_data_and_sidecar_is_detected(self, tmp_path):
        """The torn-sidecar window surfaces as a typed error on load."""
        target = tmp_path / "fig2.pxml.json"
        write_instance(figure2_instance(), target)
        # Make the second write produce different bytes than the first so
        # the stale sidecar genuinely mismatches.
        changed = InstanceBuilder("R").build(validate=False)
        with FaultInjector(FaultSpec("codec.write.replace", kind="error")):
            with pytest.raises(PXMLError):
                write_instance(changed, target)
        with pytest.raises(CorruptInstanceError):
            read_instance(target)

    def test_payload_corruption_never_reads_back_silently(self, tmp_path):
        """A corrupted write can never produce a silently-wrong instance."""
        target = tmp_path / "fig2.pxml.json"
        with FaultInjector(FaultSpec("codec.write.payload", kind="corrupt")):
            write_instance(figure2_instance(), target)
        with pytest.raises(CorruptInstanceError):
            read_instance(target)

    def test_read_time_corruption_fails_the_checksum(self, tmp_path):
        target = tmp_path / "fig2.pxml.json"
        write_instance(figure2_instance(), target)
        with FaultInjector(FaultSpec("codec.read", kind="corrupt")):
            with pytest.raises(CorruptInstanceError):
                read_instance(target)
        read_instance(target).validate()  # the file itself is intact

    def test_sidecar_written_and_verifies(self, tmp_path):
        target = tmp_path / "fig2.pxml.json"
        write_instance(figure2_instance(), target)
        assert checksum_sidecar(target).exists()
        read_instance(target).validate()


# ----------------------------------------------------------------------
# Crash-safe catalog: retry, corruption policy, drop/TOCTOU regressions
# ----------------------------------------------------------------------
class TestCatalogResilience:
    def _backed(self, tmp_path, **kwargs):
        db = Database(tmp_path, retry_sleep=_no_sleep, **kwargs)
        db.register("fig2", figure2_instance())
        db.save("fig2")
        return db

    def test_transient_read_errors_are_retried(self, tmp_path):
        self._backed(tmp_path)
        fresh = Database(tmp_path, retry_sleep=_no_sleep)
        spec = FaultSpec("codec.read.open", exception=OSError, times=2)
        with FaultInjector(spec) as injector:
            fresh.get("fig2").validate()
        assert injector.fired() == 2  # two failures absorbed by retry

    def test_exhausted_retries_raise_database_error(self, tmp_path):
        self._backed(tmp_path)
        fresh = Database(tmp_path, retry_sleep=_no_sleep)
        spec = FaultSpec("codec.read.open", exception=OSError, times=None)
        with FaultInjector(spec):
            with pytest.raises(DatabaseError):
                fresh.get("fig2")

    def test_vanished_file_is_a_database_error(self, tmp_path):
        """The lazy-load TOCTOU window: exists() said yes, open() says no."""
        self._backed(tmp_path)
        fresh = Database(tmp_path, retry_sleep=_no_sleep)
        spec = FaultSpec(
            "codec.read.open:fig2.pxml.json", exception=FileNotFoundError
        )
        with FaultInjector(spec) as injector:
            with pytest.raises(DatabaseError, match="fig2"):
                fresh.get("fig2")
        assert injector.fired() == 1  # vanished files are not retried

    def test_corrupt_file_raise_policy(self, tmp_path):
        self._backed(tmp_path)
        path = tmp_path / "fig2.pxml.json"
        path.write_text("{ definitely not json", encoding="utf-8")
        fresh = Database(tmp_path, retry_sleep=_no_sleep)
        with pytest.raises(DatabaseError, match="corrupt"):
            fresh.get("fig2")
        assert path.exists()  # raise policy leaves the file in place

    def test_corrupt_file_quarantine_policy(self, tmp_path):
        self._backed(tmp_path)
        path = tmp_path / "fig2.pxml.json"
        path.write_text("{ definitely not json", encoding="utf-8")
        registry = MetricsRegistry()
        fresh = Database(
            tmp_path, on_corrupt="quarantine", retry_sleep=_no_sleep
        )
        with use_registry(registry):
            with pytest.raises(DatabaseError, match="quarantined"):
                fresh.get("fig2")
        assert not path.exists()
        # Quarantine names carry the catalog generation (plus a dedup
        # suffix on collision) so repeat quarantines never overwrite
        # earlier evidence.
        assert list((tmp_path / QUARANTINE_DIR).glob("fig2.pxml.json.g*"))
        assert fresh.quarantined() == ["fig2"]
        assert registry.counter("db.corrupt_quarantined").value == 1.0

    def test_quarantine_keeps_rest_of_catalog_iterable(self, tmp_path):
        db = self._backed(tmp_path, on_corrupt="quarantine")
        db.register("other", figure2_instance())
        db.save("other")
        (tmp_path / "fig2.pxml.json").write_text("garbage", encoding="utf-8")
        fresh = Database(
            tmp_path, on_corrupt="quarantine", retry_sleep=_no_sleep
        )
        loaded = dict(fresh.items())
        assert "other" in loaded and "fig2" not in loaded
        assert fresh.quarantined() == ["fig2"]

    def test_drop_unlink_failure_leaves_catalog_intact(self, tmp_path):
        """Regression: a failed unlink used to leave memory half-dropped."""
        db = self._backed(tmp_path)
        spec = FaultSpec("db.drop.unlink", exception=PermissionError)
        with FaultInjector(spec):
            with pytest.raises(DatabaseError, match="fig2"):
                db.drop("fig2")
        # The name is still fully resolvable: nothing was popped.
        assert "fig2" in db
        db.get("fig2").validate()
        assert db.version("fig2") > 0
        db.drop("fig2")  # and a clean drop still works afterwards
        assert "fig2" not in db

    def test_drop_racing_deletion_succeeds(self, tmp_path):
        db = self._backed(tmp_path)
        spec = FaultSpec("db.drop.unlink", exception=FileNotFoundError)
        with FaultInjector(spec) as injector:
            db.drop("fig2")  # no error: the unlink raced a concurrent delete
        assert injector.fired() == 1
        # The drop completed; the injected error left the real file behind
        # (a true race would have removed it), so clear it and confirm the
        # catalog forgot the name.
        (tmp_path / "fig2.pxml.json").unlink(missing_ok=True)
        assert "fig2" not in db

    def test_save_retries_transient_write_errors(self, tmp_path):
        db = self._backed(tmp_path)
        spec = FaultSpec("codec.write.tmp", exception=OSError, times=2)
        with FaultInjector(spec) as injector:
            db.save("fig2")
        assert injector.fired() == 2
        read_instance(tmp_path / "fig2.pxml.json").validate()


# ----------------------------------------------------------------------
# Seeded chaos over the PXQL example corpus and the catalog operations
# ----------------------------------------------------------------------
def _chaos_seeds():
    seeds = [101, 202, 303]
    env = os.environ.get("PXML_CHAOS_SEED")
    if env:
        seeds.append(int(env))
    return seeds


def _corpus_statements():
    lines = (FIXTURES / "queries.pxql").read_text(encoding="utf-8").splitlines()
    return [line.strip() for line in lines
            if line.strip() and not line.strip().startswith("#")]


def _chaos_specs():
    """Probabilistic faults at every hook point the corpus can reach."""
    return (
        FaultSpec("codec.read.open", exception=OSError,
                  probability=0.15, times=None),
        FaultSpec("codec.read", kind="corrupt",
                  probability=0.1, times=None),
        FaultSpec("engine.cache.*", exception=RuntimeError,
                  probability=0.2, times=None),
        FaultSpec("db.drop.unlink", exception=OSError,
                  probability=0.3, times=None),
        FaultSpec("codec.write.tmp", exception=OSError,
                  probability=0.15, times=None),
        FaultSpec("codec.write.replace", exception=OSError,
                  probability=0.1, times=None),
    )


def _corpus_interpreter(directory):
    interpreter = Interpreter(
        Database(directory, on_corrupt="quarantine", retry_sleep=_no_sleep),
        check="warn",
    )
    # Runtime certificate verification on every statement: observed
    # cardinalities/probabilities must stay inside the absint intervals
    # even while faults fire (the counter is asserted zero below).
    interpreter.engine.absint_verify = True
    return interpreter


def _absint_violations(interpreter):
    return interpreter.metrics.counter("check.absint_violations").value


def _run_corpus(interpreter):
    """Each statement's outcome: ("ok", text) or ("error", exception)."""
    outcomes = []
    for statement in _corpus_statements():
        try:
            outcomes.append(("ok", interpreter.execute(statement).text))
        except Exception as exc:  # noqa: BLE001 — the invariant under test
            outcomes.append(("error", exc))
    return outcomes


def _copy_fixtures(destination):
    destination.mkdir()
    for path in FIXTURES.glob("*.pxml.json"):
        shutil.copy(path, destination / path.name)
    return destination


class TestChaosSuite:
    def test_corpus_baseline_is_fault_free(self, tmp_path):
        interpreter = _corpus_interpreter(_copy_fixtures(tmp_path / "base"))
        outcomes = _run_corpus(interpreter)
        assert all(status == "ok" for status, _ in outcomes)
        assert _absint_violations(interpreter) == 0

    @pytest.mark.parametrize("seed", _chaos_seeds())
    def test_corpus_under_chaos(self, tmp_path, seed):
        """Fault-free result or typed PXMLError — nothing in between."""
        baseline = _run_corpus(
            _corpus_interpreter(_copy_fixtures(tmp_path / "base"))
        )
        chaotic = _corpus_interpreter(
            _copy_fixtures(tmp_path / f"chaos{seed}")
        )
        with FaultInjector(*_chaos_specs(), seed=seed, sleep=_no_sleep):
            outcomes = _run_corpus(chaotic)
        for (base_status, base_value), (status, value) in zip(
            baseline, outcomes
        ):
            assert base_status == "ok"
            if status == "ok":
                assert value == base_value  # identical fault-free answer
            else:
                assert isinstance(value, PXMLError), (
                    f"untyped {type(value).__name__} escaped: {value}"
                )
        assert _absint_violations(chaotic) == 0

    @pytest.mark.parametrize("seed", _chaos_seeds())
    def test_catalog_operations_under_chaos(self, tmp_path, seed):
        """Every catalog op succeeds or raises typed; storage never tears."""
        directory = tmp_path / f"cat{seed}"
        db = Database(
            directory, on_corrupt="quarantine", retry_sleep=_no_sleep
        )
        operations = [
            lambda: db.register("a", figure2_instance(), replace=True),
            lambda: db.save("a"),
            lambda: db.get("a"),
            lambda: db.register("b", figure2_instance(), replace=True),
            lambda: db.save("b"),
            lambda: db.reload("a"),
            lambda: db.drop("b"),
            lambda: db.save("a"),
            lambda: list(db.items()),
            lambda: db.drop("a"),
            lambda: db.register("a", figure2_instance(), replace=True),
            lambda: db.save("a"),
        ]
        with FaultInjector(*_chaos_specs(), seed=seed, sleep=_no_sleep):
            for operation in operations:
                try:
                    operation()
                except Exception as exc:  # noqa: BLE001
                    assert isinstance(exc, PXMLError), (
                        f"untyped {type(exc).__name__} escaped: {exc}"
                    )
        # Post-chaos, fault-free: every surviving file is either cleanly
        # loadable or detected as corrupt — never a torn half-write.
        fresh = Database(
            directory, on_corrupt="quarantine", retry_sleep=_no_sleep
        )
        for name in fresh.names():
            try:
                fresh.get(name).validate()
            except DatabaseError:
                pass  # typed detection (file quarantined) is acceptable
        for leftover in directory.glob("*.tmp"):
            raise AssertionError(f"torn tmp file survived: {leftover}")
