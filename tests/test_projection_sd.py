"""Tests for projection on ordinary semistructured instances."""

import pytest

from repro.algebra.projection import (
    ancestor_projection,
    descendant_projection,
    single_projection,
)
from repro.errors import AlgebraError
from repro.paper import figure1_instance
from repro.semistructured.instance import SemistructuredInstance


@pytest.fixture
def inst():
    return figure1_instance()


class TestAncestorProjection:
    def test_keeps_only_on_path_objects(self, inst):
        result = ancestor_projection(inst, "R.book.author")
        assert result.objects == frozenset({"R", "B1", "B2", "B3", "A1", "A2", "A3"})

    def test_keeps_only_on_path_edges(self, inst):
        result = ancestor_projection(inst, "R.book.author")
        assert ("B1", "T1") not in {(s, d) for s, d, _ in result.edges()}
        assert ("A1", "I1") not in {(s, d) for s, d, _ in result.edges()}

    def test_labels_preserved(self, inst):
        result = ancestor_projection(inst, "R.book.author")
        assert result.label("R", "B2") == "book"
        assert result.label("B2", "A1") == "author"

    def test_one_level(self, inst):
        result = ancestor_projection(inst, "R.book.title")
        assert result.objects == frozenset({"R", "B1", "B3", "T1", "T2"})
        # B2 has no title: pruned.
        assert "B2" not in result

    def test_leaf_annotations_survive(self, inst):
        result = ancestor_projection(inst, "R.book.title")
        assert result.val("T1") == "VQDB"
        assert result.tau("T1").name == "title-type"

    def test_empty_match_gives_bare_root(self, inst):
        result = ancestor_projection(inst, "R.nothing.here")
        assert result.objects == frozenset({"R"})

    def test_zero_label_path_gives_bare_root(self, inst):
        result = ancestor_projection(inst, "R")
        assert result.objects == frozenset({"R"})

    def test_wrong_root_rejected(self, inst):
        with pytest.raises(AlgebraError):
            ancestor_projection(inst, "B1.author")

    def test_idempotent(self, inst):
        once = ancestor_projection(inst, "R.book.author")
        twice = ancestor_projection(once, "R.book.author")
        assert once == twice

    def test_string_and_object_path_agree(self, inst):
        from repro.semistructured.paths import PathExpression

        a = ancestor_projection(inst, "R.book.author")
        b = ancestor_projection(inst, PathExpression.parse("R.book.author"))
        assert a == b

    def test_dag_shared_target(self):
        inst = SemistructuredInstance.from_edges(
            "r",
            [("r", "a", "x"), ("r", "b", "x"), ("a", "s", "y"), ("b", "s", "y"),
             ("a", "t", "z")],
        )
        result = ancestor_projection(inst, "r.x.y")
        assert result.objects == frozenset({"r", "a", "b", "s"})
        assert result.parents("s") == frozenset({"a", "b"})


class TestDescendantProjection:
    def test_keeps_subtrees_below_matches(self, inst):
        result = descendant_projection(inst, "R.book.author")
        # Institutions are descendants of the matched authors: kept.
        assert "I1" in result and "I2" in result
        assert result.label("A1", "I1") == "institution"

    def test_prunes_non_matching_branches(self, inst):
        result = descendant_projection(inst, "R.book.author")
        assert "T1" not in result  # titles are not below any author

    def test_matching_leaves_behave_like_ancestor(self, inst):
        anc = ancestor_projection(inst, "R.book.author.institution")
        des = descendant_projection(inst, "R.book.author.institution")
        assert anc == des


class TestSingleProjection:
    def test_matches_directly_under_root(self, inst):
        result = single_projection(inst, "R.book.author")
        assert result.objects == frozenset({"R", "A1", "A2", "A3"})
        assert result.children("R") == frozenset({"A1", "A2", "A3"})
        assert result.label("R", "A1") == "author"

    def test_zero_label_path(self, inst):
        result = single_projection(inst, "R")
        assert result.objects == frozenset({"R"})

    def test_values_survive(self, inst):
        result = single_projection(inst, "R.book.title")
        assert result.val("T1") == "VQDB"
