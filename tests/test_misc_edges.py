"""Edge-case and error-path tests across modules."""

import json

import pytest

from repro import errors
from repro.bench.__main__ import main as bench_main
from repro.core.builder import InstanceBuilder
from repro.core.interpretation import LocalInterpretation
from repro.core.distributions import TabularOPF, TabularVPF
from repro.errors import CodecError, CorruptInstanceError, ModelError, PXMLError
from repro.io import json_codec, xml_codec
from repro.paper import figure2_instance


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, PXMLError), name

    def test_unknown_object_error_carries_oid(self):
        error = errors.UnknownObjectError("x")
        assert error.oid == "x"
        assert "x" in str(error)

    def test_unknown_label_error_message(self):
        error = errors.UnknownLabelError("o", "l")
        assert "o" in str(error) and "l" in str(error)


class TestLocalInterpretationEdges:
    def test_opf_and_vpf_conflict_rejected(self):
        interp = LocalInterpretation()
        interp.set_opf("a", TabularOPF({(): 1.0}))
        with pytest.raises(ModelError):
            interp.set_vpf("a", TabularVPF({"x": 1.0}))

    def test_constructor_conflict_rejected(self):
        with pytest.raises(ModelError):
            LocalInterpretation(
                {"a": TabularOPF({(): 1.0})}, {"a": TabularVPF({"x": 1.0})}
            )

    def test_drop_then_reassign(self):
        interp = LocalInterpretation()
        interp.set_opf("a", TabularOPF({(): 1.0}))
        interp.drop("a")
        interp.set_vpf("a", TabularVPF({"x": 1.0}))
        assert interp.vpf("a") is not None

    def test_set_value_shorthand(self):
        interp = LocalInterpretation()
        interp.set_value("a", "v")
        assert interp.vpf("a").prob("v") == 1.0


class TestCodecErrorPaths:
    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CorruptInstanceError):
            json_codec.read_instance(path)

    def test_unknown_opf_kind_rejected(self):
        payload = json_codec.encode_instance(figure2_instance())
        for entry in payload["objects"].values():
            if "opf" in entry:
                entry["opf"]["kind"] = "martian"
        with pytest.raises(CodecError):
            json_codec.decode_instance(payload)

    def test_xml_element_without_oid_rejected(self):
        with pytest.raises(CodecError):
            xml_codec.loads('<pxml-root oid="r"><book/></pxml-root>')

    def test_xml_root_without_oid_rejected(self):
        with pytest.raises(CodecError):
            xml_codec.loads("<pxml-root/>")

    def test_xml_ref_without_label_rejected(self):
        text = (
            '<pxml-root oid="r"><a oid="x"/><pxml-ref oid="x"/></pxml-root>'
        )
        with pytest.raises(CodecError):
            xml_codec.loads(text)


class TestBenchCLI:
    def test_quick_fig7b(self, capsys):
        code = bench_main(["fig7b", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7(b)" in out
        assert "b=2 SL" in out

    def test_json_dump(self, tmp_path, capsys):
        target = tmp_path / "records.json"
        code = bench_main(["fig7c", "--quick", "--json", str(target)])
        assert code == 0
        records = json.loads(target.read_text())
        assert records and records[0]["operation"] == "selection"

    def test_independent_flag(self, capsys):
        code = bench_main(["fig7b", "--quick", "--independent"])
        assert code == 0


class TestPXQLStdinMode:
    def test_statements_from_stdin(self, tmp_path, monkeypatch, capsys):
        import io as _io

        from repro.io.json_codec import write_instance
        from repro.pxql.__main__ import main as pxql_main

        write_instance(figure2_instance(), tmp_path / "fig2.pxml.json")
        monkeypatch.setattr(
            "sys.stdin",
            _io.StringIO("# a comment\n\nPROB B1 IN fig2\n"),
        )
        code = pxql_main(["-d", str(tmp_path)])
        assert code == 0
        assert "P(B1 exists) = 0.8" in capsys.readouterr().out


class TestBuilderEdges:
    def test_children_with_interval_object(self):
        from repro.core.cardinality import CardinalityInterval

        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"], card=CardinalityInterval(1, 1))
        builder.opf("r", {("a",): 1.0})
        builder.leaf("a", "t", ["x"], {"x": 1.0})
        pi = builder.build()
        assert pi.card("r", "l").min == 1

    def test_value_extends_unknown_domain(self):
        builder = InstanceBuilder("r")
        builder.children("r", "l", ["a"])
        builder.opf("r", {("a",): 1.0})
        builder.value("a", "fresh-type", "v")
        pi = builder.build()
        assert pi.vpf("a").prob("v") == 1.0


class TestBenchReport:
    def test_report_round_trip(self, tmp_path, capsys):
        code = bench_main(["fig7b", "--quick", "--json",
                           str(tmp_path / "r.json")])
        assert code == 0
        capsys.readouterr()
        code = bench_main(["report", "--json", str(tmp_path / "r.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7(b)" in out

    def test_report_without_json_errors(self):
        with pytest.raises(SystemExit):
            bench_main(["report"])
