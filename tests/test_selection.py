"""Tests for selection: conditions, global semantics, efficient algorithm."""

import random

import pytest

from repro.algebra.selection import (
    CardinalityCondition,
    ObjectCondition,
    ObjectValueCondition,
    ValueCondition,
    chain_to,
    select_global,
    select_local,
)
from repro.core.builder import InstanceBuilder
from repro.core.cardinality import CardinalityInterval
from repro.errors import AlgebraError, EmptyResultError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression

from tests.helpers import random_tree_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1", "A2"])
    builder.opf("B1", {("A1",): 0.5, ("A2",): 0.2, ("A1", "A2"): 0.3})
    builder.children("B2", "author", ["A3"])
    builder.opf("B2", {("A3",): 0.6, (): 0.4})
    builder.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    builder.leaf("A2", "name", vpf={"x": 1.0})
    builder.leaf("A3", "name", vpf={"y": 1.0})
    return builder.build()


def path(text):
    return PathExpression.parse(text)


class TestConditions:
    def test_object_condition(self, tree):
        condition = ObjectCondition(path("R.book"), "B1")
        worlds = GlobalInterpretation.from_local(tree)
        satisfied = worlds.event_probability(condition.satisfied_by)
        assert satisfied == pytest.approx(0.7)

    def test_value_condition_existential(self, tree):
        condition = ValueCondition(path("R.book.author"), "y")
        worlds = GlobalInterpretation.from_local(tree)
        satisfied = worlds.event_probability(condition.satisfied_by)
        # y via A1 (p=0.3 when A1 present) or via A3 (always when present).
        assert 0.0 < satisfied < 1.0

    def test_object_value_condition(self, tree):
        condition = ObjectValueCondition(path("R.book.author"), "A1", "x")
        worlds = GlobalInterpretation.from_local(tree)
        # P(A1 via path) * P(A1 = x) = 0.7 * 0.8 * 0.7.
        expected = 0.7 * 0.8 * 0.7
        assert worlds.event_probability(condition.satisfied_by) == pytest.approx(
            expected
        )

    def test_cardinality_condition(self, tree):
        condition = CardinalityCondition(
            path("R.book"), "author", CardinalityInterval(2, 2)
        )
        worlds = GlobalInterpretation.from_local(tree)
        # Only B1 can have two authors: P(B1 present) * 0.3.
        assert worlds.event_probability(condition.satisfied_by) == pytest.approx(
            0.7 * 0.3
        )

    def test_condition_str(self, tree):
        assert "B1" in str(ObjectCondition(path("R.book"), "B1"))
        assert "val" in str(ValueCondition(path("R.book"), "v"))


class TestGlobalSelection:
    def test_definition56_normalization(self, tree):
        condition = ObjectCondition(path("R.book"), "B1")
        result = select_global(tree, condition)
        result.validate()
        for world, _ in result.support():
            assert condition.satisfied_by(world)

    def test_null_condition_raises(self, tree):
        condition = ObjectCondition(path("R.book"), "GHOST")
        with pytest.raises(EmptyResultError):
            select_global(tree, condition)


class TestLocalSelection:
    def test_matches_global_object_condition(self, tree):
        condition = ObjectCondition(path("R.book.author"), "A1")
        reference = select_global(tree, condition)
        local = select_local(tree, condition)
        local.instance.validate()
        assert GlobalInterpretation.from_local(local.instance).is_close_to(reference)
        assert local.probability == pytest.approx(0.7 * 0.8)

    def test_matches_global_object_value_condition(self, tree):
        condition = ObjectValueCondition(path("R.book.author"), "A1", "y")
        reference = select_global(tree, condition)
        local = select_local(tree, condition)
        assert GlobalInterpretation.from_local(local.instance).is_close_to(reference)
        assert local.probability == pytest.approx(0.7 * 0.8 * 0.3)

    def test_structure_unchanged(self, tree):
        condition = ObjectCondition(path("R.book"), "B2")
        local = select_local(tree, condition)
        assert local.instance.objects == tree.objects
        assert local.instance.weak.lch_map("R") == tree.weak.lch_map("R")

    def test_only_chain_opfs_touched(self, tree):
        condition = ObjectCondition(path("R.book.author"), "A3")
        local = select_local(tree, condition)
        # B1 is off the chain: its OPF object is shared, not rewritten.
        assert local.instance.opf("B1") is tree.opf("B1")
        assert local.instance.opf("B2") is not tree.opf("B2")

    def test_input_not_mutated(self, tree):
        before = tree.opf("R").prob(frozenset({"B2"}))
        select_local(tree, ObjectCondition(path("R.book"), "B1"))
        assert tree.opf("R").prob(frozenset({"B2"})) == before

    def test_selected_object_becomes_certain(self, tree):
        condition = ObjectCondition(path("R.book"), "B1")
        local = select_local(tree, condition)
        engine = GlobalInterpretation.from_local(local.instance)
        assert engine.prob_object_exists("B1") == pytest.approx(1.0)

    def test_impossible_target_raises(self, tree):
        with pytest.raises((EmptyResultError, AlgebraError)):
            select_local(tree, ObjectCondition(path("R.book"), "A1"))

    def test_unsupported_condition_raises(self, tree):
        condition = ValueCondition(path("R.book.author"), "x")
        with pytest.raises(AlgebraError):
            select_local(tree, condition)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_trees(self, seed):
        rng = random.Random(seed)
        pi = random_tree_instance(rng, depth=2, max_children=2,
                                  allow_empty_choice=True)
        graph = pi.weak.graph()
        # Pick a random leaf and its actual root chain.
        leaves = sorted(pi.weak.leaves())
        target = rng.choice(leaves)
        labels = []
        current = target
        while current != pi.root:
            (parent,) = graph.parents(current)
            labels.append(graph.label(parent, current))
            current = parent
        labels.reverse()
        condition = ObjectCondition(PathExpression(pi.root, tuple(labels)), target)
        try:
            local = select_local(pi, condition)
        except EmptyResultError:
            return  # target unreachable probabilistically: nothing to compare
        reference = select_global(pi, condition)
        assert GlobalInterpretation.from_local(local.instance).is_close_to(reference)


class TestChainTo:
    def test_finds_chain(self, tree):
        assert chain_to(tree, path("R.book.author"), "A2") == ["R", "B1", "A2"]

    def test_wrong_label_rejected(self, tree):
        with pytest.raises(AlgebraError):
            chain_to(tree, path("R.title.author"), "A2")

    def test_wrong_length_rejected(self, tree):
        with pytest.raises(AlgebraError):
            chain_to(tree, path("R.book"), "A2")

    def test_unknown_object_rejected(self, tree):
        with pytest.raises(AlgebraError):
            chain_to(tree, path("R.book"), "GHOST")
