"""Tests for aggregate queries."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import QueryError
from repro.queries.aggregates import (
    child_count_distribution,
    expected_chain_extensions,
    expected_child_count,
    expected_match_count,
    match_count_distribution,
    value_distribution_at,
    value_point_query,
)
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression, evaluate_path


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1", "A2"])
    builder.opf("B1", {("A1",): 0.5, ("A2",): 0.2, ("A1", "A2"): 0.3})
    builder.children("B2", "author", ["A3"])
    builder.opf("B2", {("A3",): 0.6, (): 0.4})
    builder.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    builder.leaf("A2", "name", vpf={"x": 1.0})
    builder.leaf("A3", "name", vpf={"y": 1.0})
    return builder.build()


class TestChildCounts:
    def test_distribution(self, tree):
        dist = child_count_distribution(tree, "B1", "author")
        assert dist == {1: pytest.approx(0.7), 2: pytest.approx(0.3)}

    def test_distribution_counts_only_that_label(self, tree):
        dist = child_count_distribution(tree, "R", "book")
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[0] == pytest.approx(0.1)

    def test_leaf_rejected(self, tree):
        with pytest.raises(QueryError):
            child_count_distribution(tree, "A1", "x")

    def test_expected_count_conditional(self, tree):
        assert expected_child_count(tree, "B1", "author") == pytest.approx(1.3)

    def test_expected_count_unconditional(self, tree):
        # P(B1) = 0.7; E[authors | B1] = 1.3.
        assert expected_child_count(
            tree, "B1", "author", conditional=False
        ) == pytest.approx(0.7 * 1.3)


class TestMatchCounts:
    def test_expected_match_count_matches_enumeration(self, tree):
        path = PathExpression.parse("R.book.author")
        worlds = GlobalInterpretation.from_local(tree)
        brute = sum(
            p * len(evaluate_path(w.graph, path)) for w, p in worlds.support()
        )
        assert expected_match_count(tree, path) == pytest.approx(brute)

    def test_match_count_distribution_matches_enumeration(self, tree):
        path = PathExpression.parse("R.book.author")
        worlds = GlobalInterpretation.from_local(tree)
        brute: dict[int, float] = {}
        for world, probability in worlds.support():
            count = len(evaluate_path(world.graph, path))
            brute[count] = brute.get(count, 0.0) + probability
        computed = match_count_distribution(tree, path)
        assert set(computed) == set(brute)
        for count, probability in brute.items():
            assert computed[count] == pytest.approx(probability)

    def test_distribution_mean_equals_expectation(self, tree):
        path = PathExpression.parse("R.book.author")
        dist = match_count_distribution(tree, path)
        mean = sum(k * p for k, p in dist.items())
        assert mean == pytest.approx(expected_match_count(tree, path))

    def test_empty_path_distribution(self, tree):
        assert match_count_distribution(tree, "R.ghost") == {0: 1.0}

    def test_zero_label_path_distribution(self, tree):
        assert match_count_distribution(tree, "R") == {1: 1.0}

    def test_distribution_sums_to_one(self, tree):
        dist = match_count_distribution(tree, "R.book")
        assert sum(dist.values()) == pytest.approx(1.0)


class TestValueAggregates:
    def test_value_point_query_matches_enumeration(self, tree):
        path = PathExpression.parse("R.book.author")
        worlds = GlobalInterpretation.from_local(tree)
        brute = worlds.event_probability(
            lambda w: "A1" in evaluate_path(w.graph, path) and w.val("A1") == "y"
            if "A1" in w else False
        )
        assert value_point_query(tree, path, "A1", "y") == pytest.approx(brute)

    def test_value_point_query_zero_off_path(self, tree):
        assert value_point_query(tree, "R.book", "A1", "x") == 0.0

    def test_value_distribution_at(self, tree):
        dist = value_distribution_at(tree, "R.book.author", "A1")
        assert dist == {"x": pytest.approx(0.7), "y": pytest.approx(0.3)}

    def test_value_distribution_unreachable_rejected(self, tree):
        with pytest.raises(QueryError):
            value_distribution_at(tree, "R.title", "A1")

    def test_valueless_target_rejected(self, tree):
        with pytest.raises(QueryError):
            value_point_query(tree, "R.book", "B1", "x")


class TestChainAggregates:
    def test_expected_extensions(self, tree):
        # P(R.B1) = 0.7, E[authors | B1] = 1.3.
        assert expected_chain_extensions(tree, ["R", "B1"], "author") == (
            pytest.approx(0.7 * 1.3)
        )

    def test_impossible_chain_zero(self, tree):
        assert expected_chain_extensions(tree, ["R", "A1"], "author") == 0.0
