"""Tests for the plan IR, builder API, fingerprints and cost model."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.engine import (
    CostModel,
    PlanBuilder,
    PlanError,
    ProductNode,
    ProjectNode,
    QueryNode,
    ScanNode,
    SelectNode,
    fingerprint,
    plan_statement,
    scan_names,
)
from repro.pxql import parse
from repro.pxql import ast
from repro.storage.database import Database


def small_instance(root="R", leaf="A"):
    b = InstanceBuilder(root)
    b.children(root, "x", [leaf])
    b.opf(root, {(leaf,): 0.6, (): 0.4})
    b.leaf(leaf, "t", ["v"], {"v": 1.0})
    return b.build()


class TestPlanStatement:
    def test_project_statement(self):
        plan = plan_statement(parse("PROJECT R.book FROM bib"))
        assert isinstance(plan, ProjectNode)
        assert plan.kind == "ancestor"
        assert plan.child == ScanNode("bib")

    def test_select_statement(self):
        plan = plan_statement(parse('SELECT R.b = B1 AND VALUE = "y" FROM bib'))
        assert isinstance(plan, SelectNode)
        assert plan.oid == "B1"
        assert plan.value == "y"

    def test_product_statement(self):
        plan = plan_statement(parse("PRODUCT a, b ROOT r"))
        assert plan == ProductNode(ScanNode("a"), ScanNode("b"), "r")

    def test_query_statements(self):
        for text, kind in [
            ("POINT R.b : B1 IN bib", "point"),
            ("EXISTS R.b IN bib", "exists"),
            ("CHAIN R.B1 IN bib", "chain"),
            ("PROB B1 IN bib", "prob"),
            ("COUNT R.b IN bib", "count"),
            ("DIST R.b IN bib", "dist"),
        ]:
            plan = plan_statement(parse(text))
            assert isinstance(plan, QueryNode)
            assert plan.kind == kind

    def test_unplannable_statements(self):
        for text in ("LIST", "SHOW bib", "WORLDS bib", "DROP bib"):
            assert plan_statement(parse(text)) is None

    def test_bad_projection_kind_rejected(self):
        with pytest.raises(PlanError):
            ProjectNode("sideways", None, ScanNode("a"))

    def test_bad_query_kind_rejected(self):
        with pytest.raises(PlanError):
            QueryNode("median", ScanNode("a"))


class TestBuilder:
    def test_pipeline(self):
        plan = (
            PlanBuilder.scan("bib")
            .project("R.book.author")
            .select("R.book.author", "A1")
            .point("R.book.author", "A1")
            .build()
        )
        assert isinstance(plan, QueryNode)
        assert isinstance(plan.child, SelectNode)
        assert isinstance(plan.child.child, ProjectNode)
        assert plan.child.child.child == ScanNode("bib")

    def test_product_of_builders(self):
        plan = PlanBuilder.scan("a").product(PlanBuilder.scan("b"), "r").build()
        assert plan == ProductNode(ScanNode("a"), ScanNode("b"), "r")

    def test_product_of_name(self):
        plan = PlanBuilder.scan("a").product("b").build()
        assert plan.right == ScanNode("b")


class TestFingerprint:
    def test_deterministic(self):
        one = plan_statement(parse("PROJECT R.book FROM bib"))
        two = plan_statement(parse("PROJECT R.book FROM bib"))
        assert fingerprint(one) == fingerprint(two)

    def test_distinguishes_parameters(self):
        plans = [
            plan_statement(parse("PROJECT R.book FROM bib")),
            plan_statement(parse("PROJECT R.author FROM bib")),
            plan_statement(parse("PROJECT DESCENDANT R.book FROM bib")),
            plan_statement(parse("PROJECT R.book FROM other")),
            plan_statement(parse("SELECT R.book = B1 FROM bib")),
        ]
        prints = {fingerprint(plan) for plan in plans}
        assert len(prints) == len(plans)

    def test_target_name_is_not_part_of_the_plan(self):
        named = plan_statement(parse("PROJECT R.book FROM bib AS x"))
        anon = plan_statement(parse("PROJECT R.book FROM bib"))
        assert fingerprint(named) == fingerprint(anon)

    def test_scan_names_sorted_unique(self):
        plan = ProductNode(ScanNode("b"), ScanNode("a"))
        assert scan_names(plan) == ("a", "b")
        nested = ProductNode(plan, ScanNode("a"), "r")
        assert scan_names(nested) == ("a", "b")


class TestCostModel:
    @pytest.fixture
    def database(self):
        db = Database()
        db.register("one", small_instance("R", "A"))
        db.register("two", small_instance("S", "B"))
        return db

    def test_scan_measured_exactly(self, database):
        cost = CostModel(database)
        estimate = cost.estimate(ScanNode("one"))
        assert estimate.objects == 2
        assert estimate.is_tree
        assert estimate.root == "R"
        assert estimate.entries == database.get("one").total_interpretation_entries()

    def test_select_and_project_preserve_size(self, database):
        cost = CostModel(database)
        plan = PlanBuilder.scan("one").project("R.x").build()
        assert cost.estimate(plan).objects == 2

    def test_product_combines(self, database):
        cost = CostModel(database)
        plan = PlanBuilder.scan("one").product("two", "r").build()
        estimate = cost.estimate(plan)
        assert estimate.objects == 3  # 2 + 2 - merged roots
        assert estimate.root == "r"
        default_root = cost.estimate(
            PlanBuilder.scan("one").product("two").build()
        ).root
        assert default_root == "RxS"

    def test_memoized_per_version(self, database):
        cost = CostModel(database)
        cost.estimate(ScanNode("one"))
        # Re-registration bumps the version, so the estimate refreshes.
        b = InstanceBuilder("R")
        b.children("R", "x", ["A", "B"])
        b.opf("R", {("A", "B"): 1.0})
        b.leaf("A", "t", ["v"], {"v": 1.0})
        b.leaf("B", "t", ["v"], {"v": 1.0})
        database.register("one", b.build(), replace=True)
        assert cost.estimate(ScanNode("one")).objects == 3

    def test_strategy_choice(self, database):
        from repro.engine.cost import SAMPLE_ENTRY_THRESHOLD, Estimate

        cost = CostModel(database)
        tree = Estimate(10, 100, True, "R")
        dag = Estimate(10, 100, False, "R")
        huge_dag = Estimate(10, SAMPLE_ENTRY_THRESHOLD + 1, False, "R")
        assert cost.choose_strategy(tree) == "local"
        assert cost.choose_strategy(dag) == "bayes"
        assert cost.choose_strategy(huge_dag) == "sample"


class TestExplainParsing:
    def test_explain_wraps_statement(self):
        stmt = parse("EXPLAIN PROJECT R.book FROM bib")
        assert isinstance(stmt, ast.ExplainStatement)
        assert not stmt.analyze
        assert isinstance(stmt.statement, ast.ProjectStatement)

    def test_explain_analyze(self):
        stmt = parse("EXPLAIN ANALYZE POINT R.b : B1 IN bib")
        assert stmt.analyze
        assert isinstance(stmt.statement, ast.PointStatement)

    def test_nested_explain_rejected(self):
        from repro.pxql import PXQLSyntaxError

        with pytest.raises(PXQLSyntaxError):
            parse("EXPLAIN EXPLAIN LIST")
