"""Unit tests for leaf types and the type registry."""

import pytest

from repro.errors import TypeDomainError
from repro.semistructured.types import LeafType, TypeRegistry


class TestLeafType:
    def test_basic_domain(self):
        t = LeafType("title", ["VQDB", "Lore"])
        assert t.name == "title"
        assert t.domain == ("VQDB", "Lore")
        assert "VQDB" in t
        assert "Nope" not in t
        assert len(t) == 2

    def test_iteration_preserves_order(self):
        t = LeafType("n", [3, 1, 2])
        assert list(t) == [3, 1, 2]

    def test_empty_domain_rejected(self):
        with pytest.raises(TypeDomainError):
            LeafType("bad", [])

    def test_duplicate_domain_rejected(self):
        with pytest.raises(TypeDomainError):
            LeafType("bad", ["a", "a"])

    def test_check_accepts_member(self):
        LeafType("t", ["a"]).check("a")

    def test_check_rejects_non_member(self):
        with pytest.raises(TypeDomainError):
            LeafType("t", ["a"]).check("b")

    def test_equality_ignores_domain_order(self):
        assert LeafType("t", ["a", "b"]) == LeafType("t", ["b", "a"])
        assert LeafType("t", ["a"]) != LeafType("t", ["a", "b"])
        assert LeafType("t", ["a"]) != LeafType("u", ["a"])

    def test_hashable(self):
        assert {LeafType("t", ["a", "b"]), LeafType("t", ["b", "a"])} == {
            LeafType("t", ["a", "b"])
        }

    def test_mixed_value_types(self):
        t = LeafType("mixed", ["a", 7, 2.5])
        assert 7 in t and 2.5 in t

    def test_bool_int_collision_detected(self):
        # Python treats True == 1; the duplicate check must catch it.
        with pytest.raises(TypeDomainError):
            LeafType("mixed", [1, True])


class TestTypeRegistry:
    def test_define_and_lookup(self):
        reg = TypeRegistry()
        t = reg.define("title", ["a", "b"])
        assert reg["title"] is t
        assert "title" in reg
        assert len(reg) == 1

    def test_unknown_lookup_raises(self):
        with pytest.raises(TypeDomainError):
            TypeRegistry()["ghost"]

    def test_reregistering_equal_type_is_noop(self):
        reg = TypeRegistry()
        reg.define("t", ["a"])
        reg.define("t", ["a"])
        assert len(reg) == 1

    def test_conflicting_redefinition_rejected(self):
        reg = TypeRegistry()
        reg.define("t", ["a"])
        with pytest.raises(TypeDomainError):
            reg.define("t", ["a", "b"])

    def test_constructor_accepts_iterable(self):
        reg = TypeRegistry([LeafType("x", [1]), LeafType("y", [2])])
        assert reg.names() == frozenset({"x", "y"})

    def test_iteration(self):
        reg = TypeRegistry([LeafType("x", [1])])
        assert [t.name for t in reg] == ["x"]
