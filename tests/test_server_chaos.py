"""The seeded concurrency chaos suite.

Eight submitter threads hammer a running :class:`PXQLServer` (queries,
instance-producing statements, saves, drops) while a seeded
:class:`FaultInjector` perturbs thread scheduling at lock boundaries
(``barrier`` faults piling threads up at the catalog and cache locks),
stalls cache lookups, and injects ``OSError`` s into drops.  The suite
asserts the whole concurrency contract at once:

* every request is answered — a correct value or a *typed* error
  (``Overloaded`` / ``BudgetExceeded`` / ``DatabaseError`` /
  ``CheckError``), never a wrong answer, an untyped crash, or a hang;
* queries against the untouched instance always return the
  single-threaded reference value;
* afterwards the catalog is consistent: a fresh ``Database`` reloads
  every surviving file checksum-clean, the catalog lock is acquirable
  (not wedged), and the generation counter moved;
* no torn stats: each worker's cache counters reconcile
  (``gets == hits + misses``) and the server's request counters add up.

Seeds 0..2 run by default; set ``PXML_CHAOS_SEED`` to add another (the
CI stress job drives a seed matrix through exactly this hook).
"""

from __future__ import annotations

import contextvars
import os
import random
import threading
import time

import pytest

from repro.algebra import rename_objects
from repro.check.diagnostics import CheckError
from repro.core.builder import InstanceBuilder
from repro.errors import (
    BudgetExceeded,
    FaultError,
    Overloaded,
    ServerError,
)
from repro.io.json_codec import dumps
from repro.pxql.interpreter import Interpreter
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.server import PXQLServer, ShardedServer
from repro.storage.database import Database, DatabaseError
from repro.storage.locking import CATALOG_LOCK_NAME, FileLock

THREADS = 8
OPS_PER_THREAD = 10
STABLE_QUERY = "EXISTS R.book.author IN bib"

#: Errors a chaotic request may legitimately end in.  Anything else —
#: or a wrong value — fails the suite.
TYPED_ERRORS = (Overloaded, BudgetExceeded, DatabaseError, CheckError,
                FaultError)


def _seeds() -> list[int]:
    seeds = [0, 1, 2]
    extra = os.environ.get("PXML_CHAOS_SEED")
    if extra is not None and int(extra) not in seeds:
        seeds.append(int(extra))
    return seeds


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"])
    b.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    b.children("B1", "author", ["A1"])
    b.opf("B1", {("A1",): 0.5, (): 0.5})
    b.children("B2", "author", ["A3"])
    b.opf("B2", {("A3",): 0.6, (): 0.4})
    b.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    b.leaf("A3", "name", vpf={"y": 1.0})
    return b.build()


def chaos_injector(seed: int) -> FaultInjector:
    """Scheduling chaos at every lock boundary plus real drop failures."""
    return FaultInjector(
        # Pile submitters/workers up at the catalog's lock boundaries
        # and release them simultaneously — the race amplifier.
        FaultSpec(site="lock.db.*", kind="barrier", parties=3,
                  probability=0.3, delay_s=0.02),
        # Stampede the engine caches' internal lock.
        FaultSpec(site="lock.engine.cache.*", kind="barrier", parties=2,
                  probability=0.2, delay_s=0.01),
        # Stall the breaker's state lock now and then.
        FaultSpec(site="lock.breaker", kind="slow", probability=0.1,
                  delay_s=0.001),
        # And make some drops genuinely fail at the unlink.
        FaultSpec(site="db.drop.unlink", kind="error", exception=OSError,
                  nth=4, times=2),
        seed=seed,
    )


@pytest.mark.parametrize("seed", _seeds())
def test_chaos_suite(tmp_path, seed):
    database = Database(tmp_path)
    database.register("bib", build_bib())
    database.save("bib")
    reference = Interpreter(database=database).execute(STABLE_QUERY).value

    # Capture each worker's interpreter so cache stats can be audited
    # afterwards.  Every instance-producing statement in the mix carries
    # an AS name, so plain interpreters cannot collide on fresh names.
    interpreters: list[Interpreter] = []

    def factory(index: int) -> Interpreter:
        interpreter = Interpreter(database=database)
        interpreters.append(interpreter)
        return interpreter

    server = PXQLServer(
        database=database,
        workers=THREADS,
        queue_size=64,
        interpreter_factory=factory,
        poll_s=0.005,
    )
    injector = chaos_injector(seed)

    outcomes: list[tuple[str, object]] = []
    outcome_lock = threading.Lock()
    start_barrier = threading.Barrier(THREADS)

    def record(kind: str, payload: object) -> None:
        with outcome_lock:
            outcomes.append((kind, payload))

    def hammer(index: int) -> None:
        rng = random.Random(seed * 1000 + index)
        start_barrier.wait()
        for op in range(OPS_PER_THREAD):
            name = f"t{index}_{op % 3}"
            roll = rng.random()
            if roll < 0.4:
                statement = STABLE_QUERY
            elif roll < 0.6:
                statement = f"PROJECT R.book FROM bib AS {name}"
            elif roll < 0.75:
                statement = f"SAVE {name}" if rng.random() < 0.5 else "SAVE bib"
            elif roll < 0.9:
                statement = f"DROP {name}"
            else:
                statement = "LIST"
            try:
                future = server.submit(statement)
            except Overloaded as exc:
                record("rejected", exc.reason)
                continue
            try:
                result = future.result(30.0)
            except TYPED_ERRORS as exc:
                record("typed_error", (statement, type(exc).__name__))
            except BaseException as exc:  # noqa: BLE001 - suite verdict
                record("untyped", (statement, repr(exc)))
            else:
                if statement == STABLE_QUERY:
                    record("stable_value", result.value)
                else:
                    record("ok", statement)

    server.start()
    errors: list[BaseException] = []
    with injector:
        context = contextvars.copy_context()

        def wrap(index: int) -> None:
            try:
                contextvars.Context.run(context.copy(), hammer, index)
            except BaseException as exc:  # noqa: BLE001 - suite verdict
                errors.append(exc)

        threads = [
            threading.Thread(target=wrap, args=(i,), name=f"chaos-{i}")
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads), "submitters deadlocked"
    assert server.stop(drain=True, timeout_s=30.0), "drain/stop timed out"

    assert errors == []
    kinds = [kind for kind, _ in outcomes]
    untyped = [payload for kind, payload in outcomes if kind == "untyped"]
    assert untyped == []  # typed errors only, never a raw crash

    # Every submitted request was answered with something.
    answered = sum(
        1 for kind in kinds if kind in ("ok", "stable_value", "typed_error")
    )
    rejected = kinds.count("rejected")
    assert answered + rejected == THREADS * OPS_PER_THREAD

    # The untouched instance always answers with the reference value.
    stable_values = [p for kind, p in outcomes if kind == "stable_value"]
    assert stable_values, "chaos mix never queried the stable instance"
    for value in stable_values:
        assert value == pytest.approx(reference)

    # Server counters reconcile: nothing lost, nothing double-counted.
    submitted = server.metrics.value("server.submitted")
    completed = server.metrics.value("server.completed")
    failed = server.metrics.value("server.failed")
    aborted = server.metrics.value("server.aborted")
    assert submitted == completed + failed
    assert aborted == 0  # graceful drain answers everything
    assert submitted + server.metrics.value("server.rejected") >= (
        THREADS * OPS_PER_THREAD
    )

    # No torn cache stats in any worker's engine.  (The persistent
    # "disk" section counts hits/misses but has no gets counter — the
    # locked-LRU invariant is about the in-memory caches.)
    for interpreter in interpreters:
        for name, stats in interpreter.engine.cache_stats.items():
            if name == "disk":
                continue
            assert stats["gets"] == stats["hits"] + stats["misses"], name

    # The catalog came out consistent: every surviving file reloads
    # checksum-clean in a fresh Database, the cross-process lock is
    # free (not wedged by the chaos), and the generation moved.
    fresh = Database(tmp_path)
    for name in fresh.names():
        instance = fresh.get(name)
        assert len(instance) > 0
    with FileLock(tmp_path / CATALOG_LOCK_NAME, timeout_s=1.0):
        pass
    assert fresh.generation() >= 1  # the setup save alone bumps it

    # The injector actually perturbed the run (the suite is not a no-op).
    assert injector.fired("lock.*") > 0


# ----------------------------------------------------------------------
# Multi-process sharded chaos
# ----------------------------------------------------------------------
SHARD_THREADS = 4
SHARD_OPS = 6

#: What a request against a degrading sharded deployment may end in.
#: ``ServerError`` covers its transported subtypes too —
#: ``ShardUnavailable`` (killed shard), ``RemoteExecutionError``
#: (non-reconstructible shard errors such as ``CheckError``), and
#: ``Overloaded`` — plus the scatter-gather wrapper itself.
SHARDED_TYPED_ERRORS = (
    Overloaded, BudgetExceeded, DatabaseError, CheckError, FaultError,
    ServerError,
)


def _sharded_seeds() -> list[int]:
    seeds = [0]
    extra = os.environ.get("PXML_CHAOS_SEED")
    if extra is not None and int(extra) not in seeds:
        seeds.append(int(extra))
    return seeds


def shard_fault_specs() -> tuple[FaultSpec, ...]:
    """In-shard faults, shipped picklable through ``ShardConfig``
    (the router's ambient injector cannot cross the spawn boundary)."""
    return (
        FaultSpec(site="lock.db.*", kind="barrier", parties=2,
                  probability=0.2, delay_s=0.01),
        FaultSpec(site="lock.engine.cache.*", kind="slow",
                  probability=0.15, delay_s=0.002),
        FaultSpec(site="db.drop.unlink", kind="error", exception=OSError,
                  nth=3, times=1),
    )


def _pick_name(server: ShardedServer, shard: int, stem: str) -> str:
    for index in range(200):
        candidate = f"{stem}{index}"
        if server.owner(candidate) == shard:
            return candidate
    raise AssertionError(f"no candidate name routed to shard {shard}")


@pytest.mark.parametrize("seed", _sharded_seeds())
def test_sharded_chaos_suite(tmp_path, seed):
    """Kill and restart a shard process under concurrent cross-shard
    load; the deployment must stay typed, honest, and recoverable."""
    local = Database()
    bib = build_bib()
    local.register("bib", bib)
    reference = Interpreter(database=local).execute(STABLE_QUERY).value

    server = ShardedServer(
        tmp_path,
        shards=2,
        workers_per_shard=2,
        queue_size=32,
        poll_s=0.005,
        fault_specs=shard_fault_specs(),
        fault_seed=seed,
    )
    server.start()
    try:
        server.register_instance("bib", dumps(bib), save=True)
        victim_shard = 1 - server.owner("bib")
        mirror = _pick_name(server, victim_shard, "mirror")
        server.register_instance(
            mirror,
            dumps(rename_objects(
                bib, {oid: f"m_{oid}" for oid in bib.objects}
            )),
            save=True,
        )
        assert server.owner(mirror) != server.owner("bib")

        outcomes: list[tuple[str, object]] = []
        outcome_lock = threading.Lock()
        start_barrier = threading.Barrier(SHARD_THREADS + 1)

        def record(kind: str, payload: object) -> None:
            with outcome_lock:
                outcomes.append((kind, payload))

        def hammer(index: int) -> None:
            rng = random.Random(seed * 1000 + index)
            start_barrier.wait()
            for op in range(SHARD_OPS):
                name = f"t{index}_{op % 2}"
                roll = rng.random()
                if roll < 0.35:
                    statement = STABLE_QUERY
                elif roll < 0.55:
                    statement = f"PROJECT R.book FROM bib AS {name}"
                elif roll < 0.75:
                    statement = (
                        f"PRODUCT bib, {mirror} ROOT xr AS p{index}_{op % 2}"
                    )
                elif roll < 0.9:
                    statement = f"DROP {name}"
                else:
                    statement = "LIST"
                try:
                    future = server.submit(statement)
                except SHARDED_TYPED_ERRORS as exc:
                    record("rejected", type(exc).__name__)
                    time.sleep(0.01)
                    continue
                try:
                    result = future.result(60.0)
                except SHARDED_TYPED_ERRORS as exc:
                    record("typed_error", (statement, type(exc).__name__))
                except BaseException as exc:  # noqa: BLE001 - suite verdict
                    record("untyped", (statement, repr(exc)))
                else:
                    if statement == STABLE_QUERY:
                        record("stable_value", result.value)
                    else:
                        record("ok", statement)
                time.sleep(0.01)

        errors: list[BaseException] = []

        def wrap(index: int) -> None:
            try:
                hammer(index)
            except BaseException as exc:  # noqa: BLE001 - suite verdict
                errors.append(exc)

        threads = [
            threading.Thread(target=wrap, args=(i,), name=f"shard-chaos-{i}")
            for i in range(SHARD_THREADS)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()

        # Mid-load: hard-kill the mirror's shard, then bring it back.
        time.sleep(0.15)
        server.kill_shard(victim_shard)
        time.sleep(0.15)
        server.restart_shard(victim_shard)

        for thread in threads:
            thread.join(timeout=180.0)
        assert not any(t.is_alive() for t in threads), "submitters deadlocked"
        assert errors == []

        kinds = [kind for kind, _ in outcomes]
        untyped = [payload for kind, payload in outcomes if kind == "untyped"]
        assert untyped == []  # typed errors only, even across the kill

        answered = sum(
            1 for kind in kinds
            if kind in ("ok", "stable_value", "typed_error")
        )
        rejected = kinds.count("rejected")
        assert answered + rejected == SHARD_THREADS * SHARD_OPS

        # Successful stable queries always carry the reference value —
        # a killed shard may refuse them, but never corrupt them.
        for value in (p for kind, p in outcomes if kind == "stable_value"):
            assert value == pytest.approx(reference)

        # Router counters reconcile: every admitted statement resolved
        # exactly once; synchronous rejections resolved nothing.
        submitted = server.metrics.value("router.submitted")
        completed = server.metrics.value("router.completed")
        failed = server.metrics.value("router.failed")
        assert submitted == completed + failed + rejected
        assert server.metrics.value("router.shard_kills") == 1
        assert server.metrics.value("router.shard_restarts") == 1

        # The restarted shard serves its reloaded catalog: the
        # cross-shard product works again end to end.
        final = server.execute(
            f"PRODUCT bib, {mirror} ROOT xr AS aftermath", timeout_s=60.0
        )
        assert final.instance_name == "aftermath"
        directories = server.shard_directories()
    finally:
        assert server.stop(drain=True, timeout_s=30.0)

    # Every shard directory survives as a consistent, lock-free catalog:
    # surviving files reload checksum-clean and the generation moved on
    # every shard that saved.
    generations = []
    for directory in directories:
        fresh = Database(directory)
        for name in fresh.names():
            assert len(fresh.get(name)) > 0
        with FileLock(directory / CATALOG_LOCK_NAME, timeout_s=1.0):
            pass
        generations.append(fresh.generation())
    assert sum(generations) >= 2  # bib and mirror saves, one per shard
