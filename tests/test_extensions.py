"""Tests for the algebra extensions: rename, join, union, intersection."""

import pytest

from repro.algebra.extensions import (
    intersection_global,
    join,
    rename_objects,
    union_global,
)
from repro.algebra.selection import ObjectCondition
from repro.core.builder import InstanceBuilder
from repro.errors import AlgebraError, EmptyResultError
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression


def make_instance(root="r", child="c", p=0.6):
    builder = InstanceBuilder(root)
    builder.children(root, "l", [child], card=(0, 1))
    builder.opf(root, {(): 1.0 - p, (child,): p})
    builder.leaf(child, "t", ["x"], {"x": 1.0})
    return builder.build()


class TestRename:
    def test_rename_everywhere(self):
        pi = make_instance()
        renamed = rename_objects(pi, {"r": "root", "c": "child"})
        renamed.validate()
        assert renamed.root == "root"
        assert renamed.lch("root", "l") == frozenset({"child"})
        assert renamed.opf("root").prob(frozenset({"child"})) == pytest.approx(0.6)
        assert renamed.vpf("child").prob("x") == 1.0

    def test_partial_mapping(self):
        pi = make_instance()
        renamed = rename_objects(pi, {"c": "c2"})
        assert renamed.root == "r"
        assert "c2" in renamed

    def test_distribution_preserved(self):
        pi = make_instance()
        renamed = rename_objects(pi, {"c": "c2"})
        worlds = GlobalInterpretation.from_local(renamed)
        assert worlds.prob_object_exists("c2") == pytest.approx(0.6)

    def test_collision_rejected(self):
        pi = make_instance()
        with pytest.raises(AlgebraError):
            rename_objects(pi, {"c": "r"})

    def test_explicit_card_preserved(self):
        pi = make_instance()
        renamed = rename_objects(pi, {"c": "c2"})
        assert renamed.weak.has_explicit_card("r", "l")


class TestJoin:
    def test_join_is_conditioned_product(self):
        left = make_instance("r1", "a", 0.5)
        right = make_instance("r2", "b", 0.5)
        condition = ObjectCondition(PathExpression.parse("r.l"), "a")
        result = join(left, right, [condition], new_root="r")
        result.validate()
        for world, _ in result.support():
            assert "a" in world
        # b remains independent: P(b | a) = P(b) = 0.5.
        assert result.prob_object_exists("b") == pytest.approx(0.5)

    def test_join_with_two_conditions(self):
        left = make_instance("r1", "a", 0.5)
        right = make_instance("r2", "b", 0.5)
        conditions = [
            ObjectCondition(PathExpression.parse("r.l"), "a"),
            ObjectCondition(PathExpression.parse("r.l"), "b"),
        ]
        result = join(left, right, conditions, new_root="r")
        assert len(result) == 1

    def test_unsatisfiable_join_raises(self):
        left = make_instance("r1", "a", 1.0)
        right = make_instance("r2", "b", 1.0)
        condition = ObjectCondition(PathExpression.parse("r.l"), "GHOST")
        with pytest.raises(EmptyResultError):
            join(left, right, [condition], new_root="r")


class TestUnion:
    def test_mixture_weights(self):
        a = make_instance("r", "c", 1.0)   # c always present
        b = make_instance("r", "c", 0.0)   # c never present
        mixture = union_global(a, b, weight=0.25)
        mixture.validate()
        assert mixture.prob_object_exists("c") == pytest.approx(0.25)

    def test_default_weight_is_half(self):
        a = make_instance("r", "c", 1.0)
        b = make_instance("r", "c", 0.0)
        assert union_global(a, b).prob_object_exists("c") == pytest.approx(0.5)

    def test_bad_weight_rejected(self):
        a = make_instance()
        with pytest.raises(AlgebraError):
            union_global(a, a, weight=1.5)

    def test_accepts_global_interpretations(self):
        a = GlobalInterpretation.from_local(make_instance("r", "c", 1.0))
        b = GlobalInterpretation.from_local(make_instance("r", "c", 0.0))
        assert union_global(a, b, 0.5).total_mass() == pytest.approx(1.0)


class TestIntersection:
    def test_product_of_experts(self):
        a = make_instance("r", "c", 0.8)
        b = make_instance("r", "c", 0.5)
        result = intersection_global(a, b)
        result.validate()
        # P(c) proportional to 0.8*0.5 vs 0.2*0.5 -> 0.8.
        assert result.prob_object_exists("c") == pytest.approx(0.8)

    def test_disjoint_supports_raise(self):
        a = make_instance("r", "c", 1.0)
        b = make_instance("r", "c", 0.0)
        with pytest.raises(EmptyResultError):
            intersection_global(a, b)

    def test_agreeing_instances_unchanged(self):
        a = make_instance("r", "c", 0.5)
        result = intersection_global(a, a)
        assert result.prob_object_exists("c") == pytest.approx(0.5)
