"""Additional query-engine and selection-condition coverage."""

import random

import pytest

from repro.algebra.selection import (
    CardinalityCondition,
    ValueCondition,
    select_global,
)
from repro.core.builder import InstanceBuilder
from repro.core.cardinality import CardinalityInterval
from repro.errors import QueryError
from repro.queries.engine import QueryEngine
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semistructured.paths import PathExpression

from tests.helpers import random_dag_instance


@pytest.fixture
def tree():
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2"])
    builder.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    builder.children("B1", "author", ["A1", "A2"])
    builder.opf("B1", {("A1",): 0.5, ("A2",): 0.2, ("A1", "A2"): 0.3})
    builder.children("B2", "author", ["A3"])
    builder.opf("B2", {("A3",): 0.6, (): 0.4})
    builder.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    builder.leaf("A2", "name", vpf={"x": 1.0})
    builder.leaf("A3", "name", vpf={"y": 1.0})
    return builder.build()


class TestEngineCaching:
    def test_bayes_network_built_once(self, tree):
        engine = QueryEngine(tree, strategy="bayes")
        engine.point("R.book", "B1")
        first = engine._bn
        engine.exists("R.book")
        assert engine._bn is first

    def test_enumeration_cached(self, tree):
        engine = QueryEngine(tree, strategy="enumerate")
        engine.point("R.book", "B1")
        first = engine._global
        engine.chain(["R", "B1"])
        assert engine._global is first

    def test_string_and_object_paths_equivalent(self, tree):
        engine = QueryEngine(tree)
        a = engine.point("R.book.author", "A1")
        b = engine.point(PathExpression.parse("R.book.author"), "A1")
        assert a == b

    def test_sample_engine_deterministic_with_seed(self, tree):
        a = QueryEngine(tree, strategy="sample", samples=500, seed=3)
        b = QueryEngine(tree, strategy="sample", samples=500, seed=3)
        assert a.point("R.book", "B1") == b.point("R.book", "B1")

    def test_sample_object_exists_on_dag(self):
        pi = random_dag_instance(random.Random(1))
        exact = QueryEngine(pi, strategy="enumerate").object_exists("m0")
        sampled = QueryEngine(pi, strategy="sample", samples=4000, seed=2)
        assert sampled.object_exists("m0") == pytest.approx(exact, abs=0.04)


class TestGlobalOnlyConditions:
    def test_value_condition_filtering(self, tree):
        condition = ValueCondition(PathExpression.parse("R.book.author"), "y")
        result = select_global(tree, condition)
        result.validate()
        for world, _ in result.support():
            assert condition.satisfied_by(world)

    def test_cardinality_condition_filtering(self, tree):
        condition = CardinalityCondition(
            PathExpression.parse("R.book"), "author", CardinalityInterval(2, 2)
        )
        result = select_global(tree, condition)
        for world, _ in result.support():
            assert any(
                len(world.lch(oid, "author")) == 2
                for oid in world.children("R")
            )

    def test_conditioning_bayes_consistency(self, tree):
        # P(A1 | B1 has 2 authors) via selection == ratio of brute events.
        condition = CardinalityCondition(
            PathExpression.parse("R.book"), "author", CardinalityInterval(2, 2)
        )
        conditioned = select_global(tree, condition)
        worlds = GlobalInterpretation.from_local(tree)
        joint = worlds.event_probability(
            lambda w: condition.satisfied_by(w) and "A1" in w
        )
        prior = worlds.event_probability(condition.satisfied_by)
        assert conditioned.prob_object_exists("A1") == pytest.approx(joint / prior)


class TestEngineErrors:
    def test_unknown_strategy(self, tree):
        with pytest.raises(QueryError):
            QueryEngine(tree, strategy="quantum")

    def test_sample_strategy_rejects_zero_samples(self, tree):
        from repro.errors import SemanticsError

        engine = QueryEngine(tree, strategy="sample", samples=0)
        with pytest.raises(SemanticsError):
            engine.point("R.book", "B1")
