"""Unit tests for path expressions: parsing, evaluation, matching."""

import pytest

from repro.errors import PathSyntaxError
from repro.paper import figure1_instance
from repro.semistructured.graph import EdgeLabeledGraph
from repro.semistructured.paths import (
    PathExpression,
    evaluate_path,
    level_sets,
    match_path,
)


@pytest.fixture
def graph():
    return figure1_instance().graph


class TestParsing:
    def test_parse_simple(self):
        p = PathExpression.parse("R.book.author")
        assert p.root == "R"
        assert p.labels == ("book", "author")
        assert len(p) == 2

    def test_parse_root_only(self):
        p = PathExpression.parse("R")
        assert p.root == "R"
        assert p.labels == ()

    def test_str_round_trip(self):
        text = "R.book.author"
        assert str(PathExpression.parse(text)) == text

    def test_empty_component_rejected(self):
        with pytest.raises(PathSyntaxError):
            PathExpression.parse("R..author")

    def test_empty_string_rejected(self):
        with pytest.raises(PathSyntaxError):
            PathExpression.parse("")

    def test_empty_root_rejected(self):
        with pytest.raises(PathSyntaxError):
            PathExpression("", ("a",))

    def test_child_extends(self):
        p = PathExpression.parse("R.book").child("author")
        assert p.labels == ("book", "author")

    def test_prefix(self):
        p = PathExpression.parse("R.book.author.institution")
        assert p.prefix(1).labels == ("book",)
        assert p.prefix(0).labels == ()


class TestEvaluation:
    def test_paper_example(self, graph):
        # "A2 in R.book.author because there is a path from R to reach A2"
        result = evaluate_path(graph, PathExpression.parse("R.book.author"))
        assert result == frozenset({"A1", "A2", "A3"})

    def test_one_level(self, graph):
        result = evaluate_path(graph, PathExpression.parse("R.book"))
        assert result == frozenset({"B1", "B2", "B3"})

    def test_zero_labels_denotes_root(self, graph):
        assert evaluate_path(graph, PathExpression.parse("R")) == frozenset({"R"})

    def test_missing_root_is_empty(self, graph):
        assert evaluate_path(graph, PathExpression.parse("ghost.book")) == frozenset()

    def test_dead_label_is_empty(self, graph):
        assert evaluate_path(graph, PathExpression.parse("R.nope")) == frozenset()

    def test_three_levels(self, graph):
        result = evaluate_path(
            graph, PathExpression.parse("R.book.author.institution")
        )
        assert result == frozenset({"I1", "I2"})

    def test_level_sets_shape(self, graph):
        levels = level_sets(graph, PathExpression.parse("R.book.author"))
        assert levels[0] == frozenset({"R"})
        assert levels[1] == frozenset({"B1", "B2", "B3"})
        assert levels[2] == frozenset({"A1", "A2", "A3"})

    def test_level_sets_empty_tail(self, graph):
        levels = level_sets(graph, PathExpression.parse("R.book.nope.deeper"))
        assert levels[1] == frozenset({"B1", "B2", "B3"})
        assert levels[2] == frozenset()
        assert levels[3] == frozenset()


class TestMatching:
    def test_match_prunes_branch_without_continuation(self):
        g = EdgeLabeledGraph()
        g.add_edge("r", "b1", "book")
        g.add_edge("r", "b2", "book")
        g.add_edge("b1", "a1", "author")
        # b2 has no author: it must be pruned from level 1.
        match = match_path(g, PathExpression.parse("r.book.author"))
        assert match.levels[1] == frozenset({"b1"})
        assert match.matched == frozenset({"a1"})
        assert match.edges == frozenset({("r", "b1"), ("b1", "a1")})

    def test_match_on_figure1(self, graph):
        match = match_path(graph, PathExpression.parse("R.book.author"))
        assert match.matched == frozenset({"A1", "A2", "A3"})
        assert match.kept_objects() == frozenset(
            {"R", "B1", "B2", "B3", "A1", "A2", "A3"}
        )
        assert ("B1", "T1") not in match.edges

    def test_empty_match(self, graph):
        match = match_path(graph, PathExpression.parse("R.nope"))
        assert match.is_empty
        assert match.edges == frozenset()
        assert len(match.levels) == 2

    def test_zero_label_match(self, graph):
        match = match_path(graph, PathExpression.parse("R"))
        assert match.matched == frozenset({"R"})
        assert not match.is_empty

    def test_level_edges_partition(self, graph):
        match = match_path(graph, PathExpression.parse("R.book.author"))
        combined = set()
        for edges in match.level_edges:
            combined |= edges
        assert combined == set(match.edges)

    def test_level_of_on_tree(self):
        g = EdgeLabeledGraph()
        g.add_edge("r", "a", "l")
        g.add_edge("a", "b", "l")
        match = match_path(g, PathExpression.parse("r.l.l"))
        membership = match.level_of()
        assert membership["r"] == [0]
        assert membership["a"] == [1]
        assert membership["b"] == [2]

    def test_dag_object_on_multiple_levels(self):
        g = EdgeLabeledGraph()
        g.add_edge("r", "a", "l")
        g.add_edge("r", "b", "l")
        g.add_edge("b", "a", "l")
        g.add_edge("a", "c", "l")
        # 'a' is reachable at level 1 (r.a) and level 2 (r.b.a).
        match = match_path(g, PathExpression.parse("r.l.l"))
        assert "a" in match.levels[1]
        assert "a" in match.levels[2]
