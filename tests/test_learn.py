"""Tests for learning probabilistic instances from observed worlds."""

import math
import random

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import ModelError
from repro.learn import learn_instance, log_likelihood
from repro.semantics.compatible import domain_distribution
from repro.semantics.global_interpretation import GlobalInterpretation
from repro.semantics.sampling import WorldSampler

from tests.helpers import random_tree_instance


@pytest.fixture
def source():
    builder = InstanceBuilder("r")
    builder.children("r", "l", ["a", "b"])
    builder.opf("r", {("a",): 0.5, ("b",): 0.2, ("a", "b"): 0.3})
    builder.children("a", "m", ["c"], card=(0, 1))
    builder.opf("a", {("c",): 0.7, (): 0.3})
    builder.leaf("c", "t", ["x", "y"], {"x": 0.6, "y": 0.4})
    builder.leaf("b", "t", vpf={"x": 1.0})
    return builder.build()


class TestExactRecovery:
    def test_learning_from_exact_distribution_recovers_instance(self, source):
        # Feeding the exact world distribution as weights is the empirical
        # Theorem 2: the learned instance must induce the same global
        # distribution.
        corpus = list(domain_distribution(source).items())
        learned = learn_instance(corpus)
        learned.validate()
        assert GlobalInterpretation.from_local(learned).is_close_to(
            GlobalInterpretation.from_local(source)
        )

    def test_learned_structure_matches(self, source):
        corpus = list(domain_distribution(source).items())
        learned = learn_instance(corpus)
        assert learned.weak.lch("r", "l") == frozenset({"a", "b"})
        assert learned.weak.card("a", "m").min == 0
        assert learned.weak.card("a", "m").max == 1
        assert learned.tau("c").name == "t"

    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances_round_trip(self, seed):
        pi = random_tree_instance(random.Random(seed), depth=2, max_children=2)
        corpus = list(domain_distribution(pi).items())
        learned = learn_instance(corpus)
        assert GlobalInterpretation.from_local(learned).is_close_to(
            GlobalInterpretation.from_local(pi)
        )


class TestSampleConsistency:
    def test_mle_converges(self, source):
        sampler = WorldSampler(source, seed=13)
        corpus = sampler.sample_many(6000)
        learned = learn_instance(corpus)
        learned.validate()
        assert learned.opf("r").prob(frozenset({"a"})) == pytest.approx(
            0.5, abs=0.04
        )
        assert learned.opf("a").prob(frozenset({"c"})) == pytest.approx(
            0.7, abs=0.04
        )
        assert learned.effective_vpf("c").prob("x") == pytest.approx(0.6, abs=0.05)

    def test_more_samples_improve_likelihood_of_truth(self, source):
        sampler = WorldSampler(source, seed=14)
        heldout = sampler.sample_many(300)
        small = learn_instance(WorldSampler(source, seed=15).sample_many(30),
                               smoothing=0.5)
        large = learn_instance(WorldSampler(source, seed=15).sample_many(3000),
                               smoothing=0.5)
        ll_small = log_likelihood(small, heldout)
        ll_large = log_likelihood(large, heldout)
        # The large-sample model is at least not much worse; typically better.
        assert ll_large >= ll_small - 5.0


class TestSmoothingAndLikelihood:
    def test_smoothing_flattens(self, source):
        sampler = WorldSampler(source, seed=16)
        corpus = sampler.sample_many(50)
        raw = learn_instance(corpus)
        smoothed = learn_instance(corpus, smoothing=10.0)
        raw_probs = sorted(p for _, p in raw.opf("r").support())
        smooth_probs = sorted(p for _, p in smoothed.opf("r").support())
        assert (max(smooth_probs) - min(smooth_probs)) <= (
            max(raw_probs) - min(raw_probs)
        )

    def test_log_likelihood_of_training_data(self, source):
        sampler = WorldSampler(source, seed=17)
        corpus = sampler.sample_many(200)
        learned = learn_instance(corpus)
        assert log_likelihood(learned, corpus) > -math.inf

    def test_impossible_world_gives_minus_inf(self, source):
        sampler = WorldSampler(source, seed=18)
        corpus = [w for w in sampler.sample_many(200) if "b" in w]
        learned = learn_instance(corpus)
        missing_b = next(
            w for w in WorldSampler(source, seed=19).sample_many(200)
            if "b" not in w
        )
        assert log_likelihood(learned, [missing_b]) == -math.inf


class TestErrors:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ModelError):
            learn_instance([])

    def test_disagreeing_roots_rejected(self, source):
        from repro.semistructured.instance import SemistructuredInstance

        with pytest.raises(ModelError):
            learn_instance([
                SemistructuredInstance("r"), SemistructuredInstance("other"),
            ])

    def test_conflicting_edge_labels_rejected(self):
        from repro.semistructured.instance import SemistructuredInstance

        a = SemistructuredInstance.from_edges("r", [("r", "x", "l1")])
        b = SemistructuredInstance.from_edges("r", [("r", "x", "l2")])
        with pytest.raises(ModelError):
            learn_instance([a, b])

    def test_negative_weight_rejected(self, source):
        from repro.semistructured.instance import SemistructuredInstance

        with pytest.raises(ModelError):
            learn_instance([(SemistructuredInstance("r"), -1.0)])
