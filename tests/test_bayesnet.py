"""Tests for the Bayesian-network substrate and the PXML mapping."""

import random

import pytest

from repro.bayesnet.elimination import eliminate_all, event_probability, query
from repro.bayesnet.factors import Factor
from repro.bayesnet.mapping import ABSENT, PXMLBayesianNetwork, existence_var
from repro.bayesnet.network import BayesianNetwork
from repro.errors import QueryError
from repro.paper import figure2_instance
from repro.semantics.global_interpretation import GlobalInterpretation

from tests.helpers import random_dag_instance


class TestFactor:
    def test_multiply_joins_on_shared_vars(self):
        f = Factor(("a",), {(True,): 0.6, (False,): 0.4})
        g = Factor(("a", "b"), {(True, "x"): 0.5, (True, "y"): 0.5, (False, "x"): 1.0})
        product = f.multiply(g)
        assert set(product.variables) == {"a", "b"}
        assert product.table[(True, "x")] == pytest.approx(0.3)
        assert product.table[(False, "x")] == pytest.approx(0.4)

    def test_multiply_disjoint_vars_is_outer_product(self):
        f = Factor(("a",), {(1,): 0.5, (2,): 0.5})
        g = Factor(("b",), {(3,): 1.0})
        product = f.multiply(g)
        assert product.table[(1, 3)] == pytest.approx(0.5)

    def test_sum_out(self):
        f = Factor(("a", "b"), {(1, "x"): 0.3, (2, "x"): 0.2, (1, "y"): 0.5})
        reduced = f.sum_out("a")
        assert reduced.variables == ("b",)
        assert reduced.table[("x",)] == pytest.approx(0.5)
        assert reduced.table[("y",)] == pytest.approx(0.5)

    def test_sum_out_absent_var_is_identity(self):
        f = Factor(("a",), {(1,): 1.0})
        assert f.sum_out("zzz") is f

    def test_restrict_drops_and_projects(self):
        f = Factor(("a", "b"), {(1, "x"): 0.3, (2, "x"): 0.7})
        restricted = f.restrict({"a": 1})
        assert restricted.variables == ("b",)
        assert restricted.table == {("x",): pytest.approx(0.3)}

    def test_weight_keeps_variable_in_scope(self):
        f = Factor(("a",), {(1,): 0.4, (2,): 0.6})
        weighted = f.weight(lambda v: v == 2, "a")
        assert weighted.variables == ("a",)
        assert weighted.total() == pytest.approx(0.6)

    def test_normalize(self):
        f = Factor(("a",), {(1,): 2.0, (2,): 6.0})
        n = f.normalize()
        assert n.table[(1,)] == pytest.approx(0.25)

    def test_normalize_zero_rejected(self):
        with pytest.raises(QueryError):
            Factor(("a",), {}).normalize()

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            Factor(("a", "b"), {(1,): 1.0})

    def test_negative_entry_rejected(self):
        with pytest.raises(QueryError):
            Factor(("a",), {(1,): -0.5})


class TestNetworkAndElimination:
    @pytest.fixture
    def sprinkler(self):
        """The classic rain/sprinkler/wet-grass network."""
        net = BayesianNetwork()
        net.add_variable("rain", (False, True))
        net.add_variable("sprinkler", (False, True))
        net.add_variable("wet", (False, True))
        net.add_cpt("rain", (), {(): {True: 0.2, False: 0.8}})
        net.add_cpt("sprinkler", ("rain",), {
            (True,): {True: 0.01, False: 0.99},
            (False,): {True: 0.4, False: 0.6},
        })
        net.add_cpt("wet", ("rain", "sprinkler"), {
            (True, True): {True: 0.99, False: 0.01},
            (True, False): {True: 0.8, False: 0.2},
            (False, True): {True: 0.9, False: 0.1},
            (False, False): {True: 0.0, False: 1.0},
        })
        return net

    def test_marginal(self, sprinkler):
        marginal = query(sprinkler, ["rain"])
        assert marginal.table[(True,)] == pytest.approx(0.2)

    def test_joint_eliminates_to_one(self, sprinkler):
        assert eliminate_all(sprinkler.factors()).total() == pytest.approx(1.0)

    def test_posterior(self, sprinkler):
        # P(rain | wet) — the classic explaining-away query.
        posterior = query(sprinkler, ["rain"], evidence={"wet": True})
        p_true = posterior.table[(True,)]
        # Known value: ~0.3577.
        assert p_true == pytest.approx(0.3577, abs=1e-3)

    def test_impossible_evidence_rejected(self, sprinkler):
        net = sprinkler
        net_cpt = net.cpt("wet")
        assert net_cpt is not None
        with pytest.raises(QueryError):
            query(net, ["rain"], evidence={"wet": "not-a-value"})

    def test_bad_cpt_row_rejected(self):
        net = BayesianNetwork()
        net.add_variable("a", (1, 2))
        with pytest.raises(QueryError):
            net.add_cpt("a", (), {(): {1: 0.7}})

    def test_event_probability_with_indicators(self, sprinkler):
        p = event_probability(sprinkler, [("rain", lambda v: v is True)])
        assert p == pytest.approx(0.2)

    def test_event_probability_with_evidence(self, sprinkler):
        p = event_probability(
            sprinkler,
            [("rain", lambda v: v is True)],
            evidence={"wet": True},
        )
        assert p == pytest.approx(0.3577, abs=1e-3)

    def test_missing_indicator_variable_rejected(self, sprinkler):
        with pytest.raises(QueryError):
            event_probability(sprinkler, [("ghost", lambda v: True)])

    def test_copy_shares_factors(self, sprinkler):
        clone = sprinkler.copy()
        clone.add_variable("extra", (1,))
        assert "extra" not in sprinkler.variables()
        assert clone.cpt("rain") is sprinkler.cpt("rain")


class TestPXMLMapping:
    def test_choice_cpt_follows_opf(self):
        pi = figure2_instance()
        bn = PXMLBayesianNetwork(pi)
        marginal = query(bn.network, ["C:R"], evidence={existence_var("R"): True})
        assert marginal.table[(frozenset({"B1", "B2", "B3"}),)] == pytest.approx(0.4)

    def test_absent_object_has_absent_choice(self):
        pi = figure2_instance()
        bn = PXMLBayesianNetwork(pi)
        marginal = query(bn.network, ["C:B1"], evidence={existence_var("B1"): False})
        assert marginal.table[(ABSENT,)] == pytest.approx(1.0)

    def test_existence_marginals_match_enumeration(self):
        pi = figure2_instance()
        bn = PXMLBayesianNetwork(pi)
        worlds = GlobalInterpretation.from_local(pi)
        for oid in ["B1", "B2", "B3", "A1", "A2", "A3", "I1", "I2", "T1", "T2"]:
            assert bn.prob_exists(oid) == pytest.approx(
                worlds.prob_object_exists(oid)
            ), oid

    def test_value_marginal(self):
        pi = figure2_instance()
        bn = PXMLBayesianNetwork(pi)
        worlds = GlobalInterpretation.from_local(pi)
        brute = worlds.event_probability(
            lambda w: "I1" in w and w.val("I1") == "Stanford"
        )
        assert bn.prob_value("I1", "Stanford") == pytest.approx(brute)

    def test_point_and_existential_on_dag(self):
        pi = figure2_instance()
        bn = PXMLBayesianNetwork(pi)
        worlds = GlobalInterpretation.from_local(pi)
        from repro.semistructured.paths import PathExpression

        path = PathExpression.parse("R.book.author.institution")
        for oid in ["I1", "I2"]:
            assert bn.point_query(path, oid) == pytest.approx(
                worlds.prob_object_at_path(path, oid)
            )
        assert bn.existential_query(path) == pytest.approx(
            worlds.prob_path_nonempty(path)
        )

    def test_unmatched_path_zero(self):
        bn = PXMLBayesianNetwork(figure2_instance())
        assert bn.point_query("R.ghost", "B1") == 0.0
        assert bn.existential_query("R.ghost") == 0.0

    def test_wrong_root_zero(self):
        bn = PXMLBayesianNetwork(figure2_instance())
        assert bn.point_query("X.book", "B1") == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dag_existence(self, seed):
        pi = random_dag_instance(random.Random(seed))
        bn = PXMLBayesianNetwork(pi)
        worlds = GlobalInterpretation.from_local(pi)
        for oid in sorted(pi.objects):
            assert bn.prob_exists(oid) == pytest.approx(
                worlds.prob_object_exists(oid)
            ), oid
