"""Property tests for :func:`repro.server.rebalance.plan_rebalance`.

Three families of properties about the migration planner:

* **Exactness** — for ring-placed names, the moved-key set is *exactly*
  the set of names whose ring home changed between the old and new
  layouts: nothing that stays home travels, nothing whose home changed
  is left behind, and every move's endpoints are the old placement and
  the new home.
* **Disjointness** — applying a plan to disjoint per-shard name sets
  yields disjoint per-shard name sets: no name is ever assigned to two
  shards, none is lost, none is invented.
* **Boundedness** — consistent hashing's raison d'être: growing N → N+1
  moves roughly ``1/(N+1)`` of the keys, not all of them (measured over
  a large fixed name population, with generous tolerance).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.rebalance import (
    DEFAULT_VNODES,
    build_ring,
    plan_rebalance,
    ring_owner,
)

#: Name pools are seed-derived so the search space stays structured.
_names = st.lists(
    st.integers(min_value=0, max_value=100_000).map(lambda i: f"key-{i}"),
    min_size=1, max_size=64, unique=True,
)
_old_shards = st.integers(min_value=1, max_value=5)
_new_shards = st.integers(min_value=1, max_value=5)


def _homes(names: list[str], shards: int) -> dict[str, int]:
    positions, owners = build_ring(shards, DEFAULT_VNODES)
    return {name: ring_owner(positions, owners, name) for name in names}


@settings(max_examples=60, deadline=None)
@given(names=_names, old=_old_shards, new=_new_shards)
def test_moved_set_is_exactly_the_home_diff(names, old, new):
    placements = _homes(names, old)
    plan = plan_rebalance(placements, old_shards=old, new_shards=new)
    new_homes = _homes(names, new)
    moved = {move.name for move in plan.moves}
    expected = {
        name for name in names if new_homes[name] != placements[name]
    }
    assert moved == expected
    for move in plan.moves:
        assert move.source == placements[move.name]
        assert move.dest == new_homes[move.name]
    # Deterministic and idempotent: planning twice yields the same plan,
    # and planning the post-migration placements yields no moves.
    again = plan_rebalance(placements, old_shards=old, new_shards=new)
    assert again.moves == plan.moves
    settled = dict(placements)
    for move in plan.moves:
        settled[move.name] = move.dest
    assert plan_rebalance(
        settled, old_shards=max(old, new), new_shards=new
    ).moves == ()


@settings(max_examples=60, deadline=None)
@given(names=_names, old=_old_shards, new=_new_shards, data=st.data())
def test_disjoint_shards_stay_disjoint(names, old, new, data):
    # Arbitrary (not necessarily ring-home) placements: overlay strays
    # and pre-sharding adoptions sit wherever history put them.
    placements = {
        name: data.draw(
            st.integers(min_value=0, max_value=old - 1), label=name
        )
        for name in names
    }
    plan = plan_rebalance(placements, old_shards=old, new_shards=new)
    settled = dict(placements)
    for move in plan.moves:
        assert settled[move.name] == move.source
        settled[move.name] = move.dest
    # Every name ends on exactly one shard, inside the new layout, at
    # its new-ring home (the plan is self-healing for strays).
    new_homes = _homes(names, new)
    assert set(settled) == set(names)
    for name in names:
        assert 0 <= settled[name] < new
        assert settled[name] == new_homes[name]


@settings(max_examples=4, deadline=None)
@given(shards=st.integers(min_value=2, max_value=8))
def test_grow_by_one_moves_about_one_over_n_plus_one(shards):
    names = [f"bulk-{i}" for i in range(2000)]
    placements = _homes(names, shards)
    plan = plan_rebalance(
        placements, old_shards=shards, new_shards=shards + 1
    )
    fraction = len(plan.moves) / len(names)
    ideal = 1.0 / (shards + 1)
    # Generous band: vnode placement is hash-random, not perfectly
    # balanced, but nowhere near the ~100% a naive mod-N scheme moves.
    assert 0.4 * ideal <= fraction <= 2.5 * ideal, (
        f"{fraction:.3f} moved, ideal {ideal:.3f}"
    )
