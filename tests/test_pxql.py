"""Tests for the PXQL lexer, parser and interpreter."""

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import PXMLError
from repro.pxql import Interpreter, PXQLSyntaxError, parse, tokenize
from repro.pxql import ast
from repro.storage.database import Database


def build_bib():
    b = InstanceBuilder("R")
    b.children("R", "book", ["B1", "B2"])
    b.opf("R", {("B1",): 0.3, ("B2",): 0.2, ("B1", "B2"): 0.4, (): 0.1})
    b.children("B1", "author", ["A1", "A2"])
    b.opf("B1", {("A1",): 0.5, ("A2",): 0.2, ("A1", "A2"): 0.3})
    b.children("B2", "author", ["A3"])
    b.opf("B2", {("A3",): 0.6, (): 0.4})
    b.leaf("A1", "name", ["x", "y"], {"x": 0.7, "y": 0.3})
    b.leaf("A2", "name", vpf={"x": 1.0})
    b.leaf("A3", "name", vpf={"y": 1.0})
    return b.build()


@pytest.fixture
def interpreter():
    it = Interpreter()
    it.database.register("bib", build_bib())
    return it


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select Point EXISTS")]
        assert kinds == ["KEYWORD", "KEYWORD", "KEYWORD", "EOF"]

    def test_dotted_ident_is_one_token(self):
        tokens = tokenize("R.book.author")
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "R.book.author"

    def test_string_literal_unescaped(self):
        tokens = tokenize('"hello \\"x\\""')
        assert tokens[0].kind == "STRING"
        assert tokens[0].value == 'hello "x"'

    def test_numbers(self):
        tokens = tokenize("42 -1 3.5")
        assert [t.value for t in tokens[:-1]] == ["42", "-1", "3.5"]

    def test_punct(self):
        kinds = [t.kind for t in tokenize("= : , ( ) [ ]")[:-1]]
        assert kinds == ["PUNCT"] * 7

    def test_bad_character_rejected(self):
        with pytest.raises(PXQLSyntaxError):
            tokenize("SELECT $$$")

    def test_keyword_like_path_component_is_ident(self):
        # 'select' inside a dotted path must not become a keyword.
        tokens = tokenize("R.select.in")
        assert tokens[0].kind == "IDENT"


class TestParser:
    def test_project_defaults_to_ancestor(self):
        stmt = parse("PROJECT R.book FROM bib")
        assert isinstance(stmt, ast.ProjectStatement)
        assert stmt.kind == "ancestor"
        assert stmt.target is None

    def test_project_kinds_and_as(self):
        stmt = parse("PROJECT SINGLE R.book FROM bib AS flat")
        assert stmt.kind == "single"
        assert stmt.target == "flat"

    def test_select_with_value(self):
        stmt = parse('SELECT R.book.author = A1 AND VALUE = "y" FROM bib')
        assert stmt.value == "y"
        assert stmt.oid == "A1"

    def test_select_with_card(self):
        stmt = parse("SELECT R.book = B1 AND CARD (author) IN [1, 2] FROM bib")
        assert stmt.card_label == "author"
        assert stmt.card_bounds == (1, 2)

    def test_product(self):
        stmt = parse("PRODUCT a, b ROOT r AS c")
        assert (stmt.left, stmt.right, stmt.new_root, stmt.target) == (
            "a", "b", "r", "c"
        )

    def test_point(self):
        stmt = parse("POINT R.book : B1 IN bib")
        assert str(stmt.path) == "R.book"
        assert stmt.oid == "B1"

    def test_chain_splits_oids(self):
        stmt = parse("CHAIN R.B1.A1 IN bib")
        assert stmt.chain == ("R", "B1", "A1")

    def test_worlds_limit(self):
        assert parse("WORLDS bib LIMIT 3").limit == 3
        assert parse("WORLDS bib").limit == 20

    def test_load_save(self):
        load = parse('LOAD x FROM "f.json"')
        assert (load.name, load.path) == ("x", "f.json")
        save = parse('SAVE x TO "g.json"')
        assert save.path == "g.json"
        assert parse("SAVE x").path is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PXQLSyntaxError):
            parse("LIST LIST")

    def test_missing_from_rejected(self):
        with pytest.raises(PXQLSyntaxError):
            parse("PROJECT R.book bib")

    def test_path_where_name_expected_rejected(self):
        with pytest.raises(PXQLSyntaxError):
            parse("SHOW a.b")


class TestInterpreter:
    def test_point_query(self, interpreter):
        result = interpreter.execute("POINT R.book.author : A1 IN bib")
        assert result.value == pytest.approx(0.7 * 0.8)

    def test_exists_query(self, interpreter):
        result = interpreter.execute("EXISTS R.book.author IN bib")
        assert 0.0 < result.value < 1.0

    def test_chain_query(self, interpreter):
        result = interpreter.execute("CHAIN R.B2.A3 IN bib")
        assert result.value == pytest.approx(0.6 * 0.6)

    def test_prob_query(self, interpreter):
        result = interpreter.execute("PROB B1 IN bib")
        assert result.value == pytest.approx(0.7)

    def test_projection_registers_result(self, interpreter):
        result = interpreter.execute("PROJECT R.book.author FROM bib AS authors")
        assert result.instance_name == "authors"
        assert "authors" in interpreter.database
        # The result is itself queryable.
        follow = interpreter.execute("POINT R.book.author : A1 IN authors")
        assert follow.value == pytest.approx(0.56)

    def test_selection_composes(self, interpreter):
        interpreter.execute("SELECT R.book = B1 FROM bib AS sure")
        result = interpreter.execute("POINT R.book : B1 IN sure")
        assert result.value == pytest.approx(1.0)

    def test_auto_named_results(self, interpreter):
        result = interpreter.execute("PROJECT R.book FROM bib")
        assert result.instance_name.startswith("_result")
        assert result.instance_name in interpreter.database

    def test_value_selection(self, interpreter):
        result = interpreter.execute(
            'SELECT R.book.author = A1 AND VALUE = "y" FROM bib AS vy'
        )
        assert "0.168" in result.text

    def test_card_selection(self, interpreter):
        result = interpreter.execute(
            "SELECT R.book = B1 AND CARD (author) IN [2, 2] FROM bib"
        )
        assert "0.21" in result.text

    def test_product_statement(self, interpreter):
        other = InstanceBuilder("R2")
        other.children("R2", "paper", ["P1"], card=(0, 1))
        other.opf("R2", {(): 0.5, ("P1",): 0.5})
        other.leaf("P1", "t", ["v"], {"v": 1.0})
        interpreter.database.register("other", other.build())
        result = interpreter.execute("PRODUCT bib, other ROOT lib AS combined")
        assert result.instance_name == "combined"
        follow = interpreter.execute("POINT lib.paper : P1 IN combined")
        assert follow.value == pytest.approx(0.5)

    def test_worlds_statement(self, interpreter):
        result = interpreter.execute("WORLDS bib LIMIT 3")
        assert "more worlds" in result.text

    def test_show_statement(self, interpreter):
        result = interpreter.execute("SHOW bib")
        assert "PC(R)" in result.text
        assert "--book-->" in result.text

    def test_list_and_drop(self, interpreter):
        assert interpreter.execute("LIST").value == ["bib"]
        interpreter.execute("DROP bib")
        assert interpreter.execute("LIST").value == []

    def test_unknown_instance_errors(self, interpreter):
        with pytest.raises(PXMLError):
            interpreter.execute("SHOW ghost")

    def test_load_save_round_trip(self, tmp_path):
        db = Database(tmp_path)
        it = Interpreter(db)
        it.database.register("bib", build_bib())
        it.execute("SAVE bib")
        fresh = Interpreter(Database(tmp_path))
        result = fresh.execute("POINT R.book : B1 IN bib")
        assert result.value == pytest.approx(0.7)

    def test_save_to_explicit_path(self, interpreter, tmp_path):
        target = tmp_path / "out.json"
        interpreter.execute(f'SAVE bib TO "{target}"')
        assert target.exists()
        interpreter.execute(f'LOAD again FROM "{target}"')
        assert "again" in interpreter.database


class TestCLI:
    def test_cli_single_statement(self, tmp_path, capsys):
        from repro.pxql.__main__ import main

        db = Database(tmp_path)
        db.register("bib", build_bib())
        db.save("bib")
        code = main(["-d", str(tmp_path), "POINT R.book : B1 IN bib"])
        assert code == 0
        assert "0.7" in capsys.readouterr().out

    def test_cli_error_exit_code(self, tmp_path, capsys):
        from repro.pxql.__main__ import main

        code = main(["-d", str(tmp_path), "SHOW ghost"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestAggregateStatements:
    def test_count_statement(self, interpreter):
        result = interpreter.execute("COUNT R.book.author IN bib")
        assert result.value == pytest.approx(1.27)

    def test_dist_statement(self, interpreter):
        result = interpreter.execute("DIST R.book.author IN bib")
        assert sum(result.value.values()) == pytest.approx(1.0)
        assert result.value[0] == pytest.approx(0.18)
        assert "0: 0.18" in result.text

    def test_count_parse(self):
        stmt = parse("COUNT R.book IN bib")
        assert str(stmt.path) == "R.book"
        assert stmt.source == "bib"


class TestSampleStrategy:
    def test_sample_engine_close_to_exact(self):
        from repro.queries.engine import QueryEngine

        pi = build_bib()
        exact = QueryEngine(pi, strategy="local").point("R.book.author", "A1")
        sampled = QueryEngine(pi, strategy="sample", samples=4000, seed=9)
        assert sampled.point("R.book.author", "A1") == pytest.approx(exact, abs=0.05)
        assert sampled.exists("R.book.author") == pytest.approx(
            QueryEngine(pi, strategy="local").exists("R.book.author"), abs=0.05
        )
        assert sampled.chain(["R", "B1", "A1"]) == pytest.approx(exact, abs=0.05)
        assert sampled.object_exists("B1") == pytest.approx(0.7, abs=0.05)


class TestUnrollAndEstimate:
    @pytest.fixture
    def looped(self):
        from repro.core.distributions import TabularOPF
        from repro.core.instance import ProbabilisticInstance
        from repro.core.weak_instance import WeakInstance

        it = Interpreter()
        weak = WeakInstance("w")
        weak.set_lch("w", "next", ["w"])
        pi = ProbabilisticInstance(weak)
        pi.set_opf("w", TabularOPF({("w",): 0.3, (): 0.7}))
        it.database.register("loop", pi)
        return it

    def test_unroll_statement(self, looped):
        result = looped.execute("UNROLL loop HORIZON 3 AS flat")
        assert result.instance_name == "flat"
        chain = looped.execute("CHAIN w.w@1.w@2 IN flat")
        assert chain.value == pytest.approx(0.09)

    def test_unroll_parse(self):
        stmt = parse("UNROLL loop HORIZON 5")
        assert stmt.horizon == 5
        assert stmt.target is None

    def test_estimate_point(self, interpreter):
        result = interpreter.execute(
            "ESTIMATE R.book.author : A1 IN bib SAMPLES 3000"
        )
        assert result.value.probability == pytest.approx(0.56, abs=0.05)
        assert "±" in result.text

    def test_estimate_existential(self, interpreter):
        result = interpreter.execute("ESTIMATE R.book.author IN bib SAMPLES 3000")
        assert result.value.probability == pytest.approx(0.82, abs=0.05)

    def test_estimate_default_samples(self, interpreter):
        stmt = parse("ESTIMATE R.book IN bib")
        assert stmt.samples == 1000
        assert stmt.oid is None
