"""Tests for the rendering module."""

from repro.paper import example41_s1, figure1_instance, figure2_instance
from repro.render import (
    render_distribution,
    render_instance,
    render_tables,
    render_tree,
    render_weak_graph,
)
from repro.semantics.global_interpretation import GlobalInterpretation


class TestRenderTree:
    def test_contains_all_objects(self):
        text = render_tree(example41_s1())
        for oid in ["R", "B1", "B2", "A1", "A2", "T1", "I1"]:
            assert oid in text

    def test_edge_labels_shown(self):
        text = render_tree(example41_s1())
        assert "--book-->" in text
        assert "--author-->" in text

    def test_leaf_values_shown(self):
        text = render_tree(example41_s1())
        assert "T1: title-type = 'VQDB'" in text

    def test_shared_objects_marked(self):
        # Figure 1 is a DAG: A1 and I1 are shared.
        text = render_tree(figure1_instance())
        assert "*" in text

    def test_max_depth_truncates(self):
        text = render_tree(figure1_instance(), max_depth=1)
        assert "..." in text
        assert "I1" not in text

    def test_deterministic(self):
        assert render_tree(figure1_instance()) == render_tree(figure1_instance())


class TestRenderTables:
    def test_lch_section(self):
        text = render_tables(figure2_instance())
        assert "lch(o, l)" in text
        assert "{B1, B2, B3}" in text

    def test_card_section(self):
        text = render_tables(figure2_instance())
        assert "[2, 3]" in text  # card(R, book)

    def test_opf_section(self):
        text = render_tables(figure2_instance())
        assert "PC(R)" in text
        assert "0.4" in text

    def test_vpf_section(self):
        text = render_tables(figure2_instance())
        assert "dom(tau(T1))" in text
        assert "'VQDB'" in text

    def test_render_instance_combines_both(self):
        text = render_instance(figure2_instance())
        assert "--book-->" in text
        assert "PC(R)" in text


class TestRenderDistribution:
    def test_sorted_by_probability(self):
        worlds = GlobalInterpretation.from_local(figure2_instance())
        text = render_distribution(worlds, limit=5)
        lines = [l for l in text.splitlines() if not l.startswith("...")]
        probabilities = [float(line.split()[0]) for line in lines]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_limit_respected(self):
        worlds = GlobalInterpretation.from_local(figure2_instance())
        text = render_distribution(worlds, limit=3)
        assert "more worlds" in text
        assert len([l for l in text.splitlines() if l.strip()]) == 4

    def test_weak_graph_rendering(self):
        pi = figure2_instance()
        text = render_weak_graph(pi.weak.graph(), pi.root)
        assert "B3" in text
