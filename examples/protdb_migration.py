"""Migrating a ProTDB database into PXML (the Section 8 subsumption).

Run with:  python examples/protdb_migration.py

ProTDB (Nierman & Jagadish, VLDB 2002) attaches an independent existence
probability to every individual child.  PXML subsumes it: the translation
maps each node's per-child probabilities to a compact independent OPF and
preserves the distribution over possible worlds exactly.  The reverse
direction fails — PXML's correlated child sets have no ProTDB encoding —
which this example demonstrates too.
"""

from repro import InstanceBuilder, QueryEngine
from repro.protdb import ProTDBInstance, ProTDBNode, protdb_world_distribution, to_pxml
from repro.semantics import GlobalInterpretation
from repro.semistructured.types import LeafType

TITLE = LeafType("title", ["PXML", "ProTDB", "Lore"])


def build_protdb() -> ProTDBInstance:
    """A small ProTDB movie/book database."""
    root = ProTDBNode("db")
    b1 = root.add_child("book", ProTDBNode("b1"), 0.9)
    b1.add_child("title", ProTDBNode("t1", leaf_type=TITLE, value="PXML"), 0.95)
    b1.add_child("author", ProTDBNode("a1", leaf_type=TITLE, value="ProTDB"), 0.6)
    b2 = root.add_child("book", ProTDBNode("b2"), 0.4)
    b2.add_child("title", ProTDBNode("t2", leaf_type=TITLE, value="Lore"), 0.8)
    return ProTDBInstance(root)


def main() -> None:
    protdb = build_protdb()
    print(f"ProTDB source: {protdb!r}")

    pxml = to_pxml(protdb)
    pxml.validate()
    print(f"Translated:    {pxml!r}")

    # The two world distributions are identical.
    reference = protdb_world_distribution(protdb)
    translated = GlobalInterpretation.from_local(pxml)
    max_diff = max(
        abs(translated.prob(world) - probability)
        for world, probability in reference.items()
    )
    print(f"worlds: {len(reference)}, max probability difference: {max_diff:.2e}")

    # The translated instance answers PXML queries directly.
    engine = QueryEngine(pxml)
    print(f"P(b1 has a title) = {engine.point('db.book.title', 't1'):.4f}")
    print(f"P(any author)     = {engine.exists('db.book.author'):.4f}")

    # The subsumption is strict: PXML expresses child correlations that
    # no independent (ProTDB) model can.
    print("\nStrictness: an all-or-nothing PXML instance")
    builder = InstanceBuilder("r")
    builder.children("r", "book", ["x", "y"], card=(0, 2))
    builder.opf("r", {(): 0.5, ("x", "y"): 0.5})
    builder.leaf("x", "title", ["PXML"], {"PXML": 1.0})
    builder.leaf("y", "title", vpf={"PXML": 1.0})
    correlated = builder.build()
    worlds = GlobalInterpretation.from_local(correlated)
    p_x = worlds.prob_object_exists("x")
    p_y = worlds.prob_object_exists("y")
    joint = worlds.event_probability(lambda w: "x" in w and "y" in w)
    print(f"  P(x) = {p_x}, P(y) = {p_y}, P(x and y) = {joint}")
    print(f"  any ProTDB model would force P(x and y) = P(x) * P(y) = "
          f"{p_x * p_y}")




def pattern_query_demo() -> None:
    """ProTDB's query style (pattern trees) evaluated over PXML."""
    from repro.protdb import PatternNode, pattern_probability, to_pxml

    pxml = to_pxml(build_protdb())
    has_titled_book = PatternNode.root(
        PatternNode.child("book", PatternNode.child("title"))
    )
    full_book = PatternNode.root(
        PatternNode.child("book",
                          PatternNode.child("title"),
                          PatternNode.child("author")),
    )
    print("\nPattern-tree queries (ProTDB's primitive, on PXML data):")
    print(f"  P(some book has a title)            = "
          f"{pattern_probability(pxml, has_titled_book):.4f}")
    print(f"  P(some book has title AND author)   = "
          f"{pattern_probability(pxml, full_book):.4f}")


if __name__ == "__main__":
    main()
    pattern_query_demo()
