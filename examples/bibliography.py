"""The four motivating situations of Section 2, end to end.

Run with:  python examples/bibliography.py

1. "We want to know the authors of all books ... keep the result so that
   further enquiries can be made on it"      -> ancestor projection.
2. "Now we know that a particular book surely exists"  -> selection.
3. "We have two probabilistic instances about books of two different
   areas and want to combine them"           -> Cartesian product.
4. "We want to know the probability that a particular author exists"
                                             -> probabilistic point query.

The instance here is a tree-structured bibliography so the efficient
Section 6 algorithms apply throughout.
"""

from repro import (
    InstanceBuilder,
    ObjectCondition,
    PathExpression,
    QueryEngine,
    ancestor_projection_local,
    cartesian_product,
    select_local,
)
from repro.semantics import GlobalInterpretation


def build_databases():
    """Two bibliographic instances collected by two different systems."""
    db = InstanceBuilder("lib")
    db.children("lib", "book", ["B1", "B2"])
    db.opf("lib", {("B1",): 0.25, ("B2",): 0.15, ("B1", "B2"): 0.5, (): 0.1})
    db.children("B1", "author", ["A1", "A2"])
    db.children("B1", "title", ["T1"])
    db.opf("B1", {
        ("A1", "T1"): 0.4, ("A1", "A2", "T1"): 0.3, ("A2",): 0.1, ("T1",): 0.2,
    })
    db.children("B2", "author", ["A3"])
    db.opf("B2", {("A3",): 0.7, (): 0.3})
    db.leaf("A1", "name", ["Hung", "Getoor"], {"Hung": 0.9, "Getoor": 0.1})
    db.leaf("A2", "name", vpf={"Getoor": 1.0})
    db.leaf("A3", "name", vpf={"Hung": 1.0})
    db.leaf("T1", "title", ["PXML", "Lore"], {"PXML": 0.8, "Lore": 0.2})

    other = InstanceBuilder("lib2")
    other.children("lib2", "book", ["C1"])
    other.opf("lib2", {("C1",): 0.6, (): 0.4})
    other.children("C1", "author", ["D1"])
    other.opf("C1", {("D1",): 1.0})
    other.leaf("D1", "name", ["Subrahmanian"], {"Subrahmanian": 1.0})
    return db.build(), other.build()


def main() -> None:
    bib, other_area = build_databases()
    engine = QueryEngine(bib)

    print("== Situation 1: project onto authors, keep it queryable ==")
    authors_only = ancestor_projection_local(bib, "lib.book.author")
    print(f"  projection result: {authors_only!r}")
    print(f"  objects kept: {sorted(authors_only.objects)}")
    # The result is itself a probabilistic instance: enquire further.
    followup = QueryEngine(authors_only)
    print(f"  P(A1 still present in result) = "
          f"{followup.point('lib.book.author', 'A1'):.4f}")
    print(f"  P(result is just the root)    = "
          f"{authors_only.opf('lib').prob(frozenset()):.4f}")

    print("\n== Situation 2: book B1 surely exists ==")
    before = engine.point("lib.book", "B1")
    condition = ObjectCondition(PathExpression.parse("lib.book"), "B1")
    selected = select_local(bib, condition)
    after_engine = QueryEngine(selected.instance)
    print(f"  P(B1) before selection: {before:.4f}")
    print(f"  P(B1) after  selection: {after_engine.point('lib.book', 'B1'):.4f}")
    print(f"  prior probability of the condition: {selected.probability:.4f}")
    print(f"  P(A1) rises from {engine.point('lib.book.author', 'A1'):.4f} "
          f"to {after_engine.point('lib.book.author', 'A1'):.4f}")

    print("\n== Situation 3: combine two areas into one instance ==")
    combined = cartesian_product(bib, other_area, new_root="lib")
    print(f"  combined: {combined!r}")
    worlds = GlobalInterpretation.from_local(combined)
    print(f"  P(B1 in combined) = {worlds.prob_object_exists('B1'):.4f} "
          "(unchanged marginal)")
    print(f"  P(C1 in combined) = {worlds.prob_object_exists('C1'):.4f}")
    joint = worlds.event_probability(lambda w: "B1" in w and "C1" in w)
    print(f"  P(B1 and C1)      = {joint:.4f} (independent product)")

    print("\n== Situation 4: probability a particular author exists ==")
    for author in ["A1", "A2", "A3"]:
        print(f"  P({author} in lib.book.author) = "
              f"{engine.point('lib.book.author', author):.4f}")
    print(f"  P(any author at all)       = "
          f"{engine.exists('lib.book.author'):.4f}")


if __name__ == "__main__":
    main()
