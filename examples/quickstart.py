"""Quickstart: build the paper's Figure 2 instance and query it.

Run with:  python examples/quickstart.py

Walks through the core API: building a probabilistic instance with the
fluent builder, checking coherence (Theorem 1), enumerating compatible
worlds, computing a specific world's probability (Example 4.1), and
asking point queries with the automatic query engine.
"""

from repro import InstanceBuilder, QueryEngine, verify_theorem1
from repro.paper import example41_s1
from repro.semantics import world_probability


def build_figure2():
    """The probabilistic instance of the paper's Figure 2."""
    builder = InstanceBuilder("R")
    builder.children("R", "book", ["B1", "B2", "B3"], card=(2, 3))
    builder.opf("R", {
        ("B1", "B2"): 0.2, ("B1", "B3"): 0.2,
        ("B2", "B3"): 0.2, ("B1", "B2", "B3"): 0.4,
    })
    builder.children("B1", "title", ["T1"], card=(0, 1))
    builder.children("B1", "author", ["A1", "A2"], card=(1, 2))
    builder.opf("B1", {
        ("A1",): 0.3, ("A1", "T1"): 0.35, ("A2",): 0.1,
        ("A2", "T1"): 0.15, ("A1", "A2"): 0.05, ("A1", "A2", "T1"): 0.05,
    })
    builder.children("B2", "author", ["A1", "A2", "A3"], card=(2, 2))
    builder.opf("B2", {("A1", "A2"): 0.4, ("A1", "A3"): 0.4, ("A2", "A3"): 0.2})
    builder.children("B3", "title", ["T2"], card=(1, 1))
    builder.children("B3", "author", ["A3"], card=(1, 1))
    builder.opf("B3", {("A3", "T2"): 1.0})
    builder.children("A1", "institution", ["I1"], card=(0, 1))
    builder.opf("A1", {(): 0.2, ("I1",): 0.8})
    builder.children("A2", "institution", ["I1", "I2"], card=(1, 1))
    builder.opf("A2", {("I1",): 0.5, ("I2",): 0.5})
    builder.children("A3", "institution", ["I2"], card=(1, 1))
    builder.opf("A3", {("I2",): 1.0})
    builder.leaf("T1", "title-type", ["VQDB", "Lore"], {"VQDB": 1.0})
    builder.leaf("T2", "title-type", vpf={"Lore": 1.0})
    builder.leaf("I1", "institution-type", ["Stanford", "UMD"], {"Stanford": 1.0})
    builder.leaf("I2", "institution-type", vpf={"UMD": 1.0})
    return builder.build()


def main() -> None:
    pi = build_figure2()
    print(f"Built {pi!r}")

    # Theorem 1: the local interpretation induces a legal distribution
    # over compatible semistructured worlds.
    worlds = verify_theorem1(pi)
    print(f"Compatible worlds: {len(worlds)} (total mass = {worlds.total_mass():.6f})")

    # Example 4.1: the probability of the specific world S1.
    s1 = example41_s1()
    print(f"P(S1) = {world_probability(pi, s1):.6f}  "
          "(= 0.2 * 0.35 * 0.4 * 0.8 * 0.5)")

    # Point queries: the probability an object satisfies a path expression.
    # Figure 2 is a DAG (authors are shared), so the engine automatically
    # uses exact Bayesian-network inference.
    engine = QueryEngine(pi)
    print(f"Query engine strategy: {engine.strategy}")
    for author in ["A1", "A2", "A3"]:
        p = engine.point("R.book.author", author)
        print(f"  P({author} in R.book.author) = {p:.4f}")
    print(f"  P(some author exists)        = "
          f"{engine.exists('R.book.author'):.4f}")
    print(f"  P(chain R -> B1 -> A1)       = "
          f"{engine.chain(['R', 'B1', 'A1']):.4f}")


if __name__ == "__main__":
    main()
