"""Learning a PXML model from observed worlds, then querying it.

Run with:  python examples/learning_pipeline.py

The full statistical loop: a hidden "true" probabilistic instance
generates observed semistructured documents (think: crawls of a site
whose structure varies); we estimate a probabilistic instance from the
corpus by maximum likelihood, measure how close it is to the truth
(total variation, held-out log-likelihood), and then answer compound
boolean-event queries on the learned model.
"""

from repro import (
    HasValue,
    InstanceBuilder,
    ObjectExists,
    QueryEngine,
    conditional_probability,
    learn_instance,
    log_likelihood,
    probability,
)
from repro.analysis import total_variation
from repro.semantics import GlobalInterpretation, WorldSampler


def hidden_truth():
    builder = InstanceBuilder("site")
    builder.children("site", "page", ["home", "blog"])
    builder.opf("site", {
        ("home",): 0.15, ("blog",): 0.05, ("home", "blog"): 0.75, (): 0.05,
    })
    builder.children("home", "banner", ["ad1"], card=(0, 1))
    builder.opf("home", {("ad1",): 0.4, (): 0.6})
    builder.children("blog", "post", ["p1", "p2"])
    builder.opf("blog", {("p1",): 0.3, ("p2",): 0.1, ("p1", "p2"): 0.5, (): 0.1})
    builder.leaf("p1", "topic", ["db", "ml"], {"db": 0.8, "ml": 0.2})
    builder.leaf("p2", "topic", vpf={"ml": 1.0})
    builder.leaf("ad1", "vendor", ["acme"], {"acme": 1.0})
    return builder.build()


def main() -> None:
    truth = hidden_truth()
    sampler = WorldSampler(truth, seed=42)

    print("Observed corpora of increasing size vs the hidden truth:")
    heldout = sampler.sample_many(500)
    truth_dist = GlobalInterpretation.from_local(truth)
    learned = None
    for size in (20, 200, 2000):
        corpus = WorldSampler(truth, seed=7).sample_many(size)
        learned = learn_instance(corpus, smoothing=0.1)
        distance = total_variation(
            GlobalInterpretation.from_local(learned), truth_dist
        )
        ll = log_likelihood(learned, heldout)
        print(f"  n={size:>5}: total variation to truth = {distance:.4f}, "
              f"held-out log-likelihood = {ll:8.1f}")

    print("\nQuerying the learned model (n=2000):")
    engine = QueryEngine(learned)
    print(f"  P(blog page)              = "
          f"{engine.point('site.page', 'blog'):.3f}  (truth 0.80)")
    print(f"  P(some post)              = "
          f"{engine.exists('site.page.post'):.3f}")

    print("\nCompound boolean events on the learned model:")
    db_post = HasValue("p1", "db")
    both_pages = ObjectExists("home") & ObjectExists("blog")
    print(f"  P(db post AND both pages) = "
          f"{probability(learned, db_post & both_pages):.3f}")
    print(f"  P(db post | both pages)   = "
          f"{conditional_probability(learned, db_post, both_pages):.3f}")
    print(f"  P(no ad on the homepage)  = "
          f"{probability(learned, ObjectExists('home') & ~ObjectExists('ad1')):.3f}")


if __name__ == "__main__":
    main()
