"""Building a probabilistic instance from a noisy citation extractor.

Run with:  python examples/information_extraction.py

The paper motivates PXML with citation indexes like Citeseer: crawled
documents are parsed by an imperfect extractor, so there is uncertainty
over whether a reference exists at all, which fields it has, and who the
author is ("does Hung refer to Edward Hung or Sheung-lun Hung?").

This example simulates that pipeline: a small synthetic extractor emits
field detections with confidences, and we compile them into a PXML
probabilistic instance — detection confidences become per-child
inclusion probabilities (a compact :class:`IndependentOPF`), and
ambiguous field resolutions become VPFs.  We then answer the questions a
curator would ask.
"""

import random
from dataclasses import dataclass

from repro import QueryEngine, IndependentOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.weak_instance import WeakInstance
from repro.semistructured.types import LeafType


@dataclass
class Detection:
    """One extracted field with the extractor's confidence."""

    field: str              # "title", "author", "year"
    confidence: float       # P(the field really is part of this reference)
    candidates: dict        # value -> P(value | field exists)


@dataclass
class ExtractedReference:
    """One candidate bibliographic reference found in a crawled document."""

    ref_id: str
    confidence: float       # P(this really is a reference)
    detections: list


def simulated_extractor(seed: int = 7) -> list[ExtractedReference]:
    """A deterministic stand-in for a probabilistic parser's output."""
    rng = random.Random(seed)
    author_pools = [
        {"Edward Hung": 0.7, "Sheung-lun Hung": 0.3},
        {"Lise Getoor": 1.0},
        {"V.S. Subrahmanian": 0.85, "S. Subrahmanian": 0.15},
    ]
    references = []
    for index in range(4):
        detections = [
            Detection("title", rng.uniform(0.85, 1.0),
                      {f"Paper {index}": 1.0}),
            Detection("author", rng.uniform(0.6, 0.95),
                      rng.choice(author_pools)),
            Detection("year", rng.uniform(0.4, 0.9),
                      {1998 + index: 0.8, 1999 + index: 0.2}),
        ]
        references.append(
            ExtractedReference(f"ref{index}", rng.uniform(0.5, 0.99), detections)
        )
    return references


def compile_to_pxml(references: list) -> ProbabilisticInstance:
    """Compile extractor output into a PXML probabilistic instance.

    * Each reference exists independently with the extractor's confidence
      -> the root gets an IndependentOPF over the reference objects.
    * Each field of a present reference exists independently with its
      detection confidence -> per-reference IndependentOPFs.
    * Field-value ambiguity -> VPFs over the candidate values.
    """
    weak = WeakInstance("index")
    pi = ProbabilisticInstance(weak)

    weak.set_lch("index", "reference", [r.ref_id for r in references])
    pi.set_opf("index", IndependentOPF({r.ref_id: r.confidence for r in references}))

    for ref in references:
        inclusion = {}
        for det in ref.detections:
            field_oid = f"{ref.ref_id}.{det.field}"
            weak.set_lch(ref.ref_id, det.field, [field_oid])
            inclusion[field_oid] = det.confidence
        pi.set_opf(ref.ref_id, IndependentOPF(inclusion))
        for det in ref.detections:
            field_oid = f"{ref.ref_id}.{det.field}"
            leaf_type = LeafType(
                f"{det.field}-type:{field_oid}", list(det.candidates)
            )
            weak.set_type(field_oid, leaf_type)
            pi.set_vpf(field_oid, TabularVPF(det.candidates))

    pi.validate()
    return pi


def main() -> None:
    references = simulated_extractor()
    pi = compile_to_pxml(references)
    print(f"Compiled extractor output into {pi!r}")
    print(f"  tree-structured: {pi.weak.is_tree()}")

    engine = QueryEngine(pi)
    print("\nCurator questions:")
    for ref in references:
        p_ref = engine.point("index.reference", ref.ref_id)
        p_author = engine.point("index.reference.author", f"{ref.ref_id}.author")
        print(f"  {ref.ref_id}: P(is a reference) = {p_ref:.3f}, "
              f"P(has an author field) = {p_author:.3f}")

    print(f"\n  P(at least one year field in the whole index) = "
          f"{engine.exists('index.reference.year'):.3f}")

    # Name disambiguation: the probability that ref0 was written by the
    # Edward Hung rather than Sheung-lun Hung, given the field exists.
    author = pi.vpf("ref0.author")
    if author is not None:
        print("\n  ref0 author disambiguation (given the field exists):")
        for value, probability in sorted(author.support(), key=lambda kv: -kv[1]):
            print(f"    {value}: {probability:.2f}")


if __name__ == "__main__":
    main()
