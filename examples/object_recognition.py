"""Indistinguishable objects in a surveillance scene (Section 3.2).

Run with:  python examples/object_recognition.py

The paper's object-recognition example: a scene may contain a bridge and
vehicles the recognizer cannot tell apart, so
``p(S1)({bridge1, vehicle1}) = p(S1)({bridge1, vehicle2})``.  The
symmetric compact OPF encodes exactly this: the probability of a child
set depends only on how many indistinguishable objects it contains.
"""

from repro import PerLabelOPF, QueryEngine, SymmetricOPF, TabularOPF, TabularVPF
from repro.core.instance import ProbabilisticInstance
from repro.core.weak_instance import WeakInstance
from repro.semistructured.types import LeafType


def build_scene() -> ProbabilisticInstance:
    weak = WeakInstance("scene")
    pi = ProbabilisticInstance(weak)

    vehicles = ["vehicle1", "vehicle2", "vehicle3"]
    weak.set_lch("scene", "vehicle", vehicles)
    weak.set_lch("scene", "bridge", ["bridge1"])

    # The recognizer believes: 1 vehicle with p=0.5, 2 with p=0.3,
    # 0 with p=0.2 — but cannot say WHICH vehicles.  The bridge is
    # detected independently with p=0.9.
    vehicle_dist = SymmetricOPF(vehicles, {0: 0.2, 1: 0.5, 2: 0.3})
    bridge_dist = TabularOPF({("bridge1",): 0.9, (): 0.1})
    pi.set_opf("scene", PerLabelOPF({
        "vehicle": (vehicles, vehicle_dist),
        "bridge": (["bridge1"], bridge_dist),
    }))

    # Each vehicle, if present, is classified as car or truck.
    kind = LeafType("vehicle-kind", ["car", "truck"])
    for vehicle in vehicles:
        weak.set_type(vehicle, kind)
        pi.set_vpf(vehicle, TabularVPF({"car": 0.6, "truck": 0.4}))
    weak.set_type("bridge1", LeafType("structure", ["bridge"]))
    pi.set_vpf("bridge1", TabularVPF({"bridge": 1.0}))

    pi.validate()
    return pi


def main() -> None:
    scene = build_scene()
    opf = scene.opf("scene")
    print(f"Scene model: {scene!r}")
    print(f"  compact OPF entries: {opf.entry_count()} "
          f"(the explicit table would need {opf.to_tabular().entry_count()})")

    # The symmetry the paper describes:
    p_bv1 = opf.prob(frozenset({"bridge1", "vehicle1"}))
    p_bv2 = opf.prob(frozenset({"bridge1", "vehicle2"}))
    print(f"  P(bridge1, vehicle1) = {p_bv1:.4f}")
    print(f"  P(bridge1, vehicle2) = {p_bv2:.4f}  (indistinguishable)")

    engine = QueryEngine(scene)
    print("\nScene queries:")
    print(f"  P(some vehicle in scene)  = {engine.exists('scene.vehicle'):.4f}")
    print(f"  P(vehicle1 specifically)  = "
          f"{engine.point('scene.vehicle', 'vehicle1'):.4f}")
    print(f"  P(the bridge is there)    = "
          f"{engine.point('scene.bridge', 'bridge1'):.4f}")

    # Marginal count distribution, recovered from the joint.
    from repro.semantics import GlobalInterpretation

    worlds = GlobalInterpretation.from_local(scene)
    print("\n  vehicles seen   probability")
    for count in range(4):
        p = worlds.event_probability(
            lambda w, c=count: len(w.lch("scene", "vehicle")) == c
        )
        print(f"       {count}            {p:.4f}")


if __name__ == "__main__":
    main()
