"""Interval probabilities for disagreeing sources (the PIXML extension).

Run with:  python examples/interval_sources.py

When two extraction systems disagree about the same bibliography, a
single point probability over-commits; the PIXML extension (after the
companion ICDT 2003 paper) keeps *interval* probabilities that bracket
every source.  This example builds an interval instance from two point
instances, tightens the bounds with the sum-to-one constraint, answers
interval queries, and shows that each source's point answers fall inside
the computed bounds.
"""

from repro.core import InstanceBuilder
from repro.pixml import (
    IntervalOPF,
    IntervalProbabilisticInstance,
    ProbInterval,
    interval_chain_probability,
    interval_existential_query,
    interval_point_query,
)
from repro.queries import existential_query, point_query


def source_instance(p_book1, p_author_given_b1, p_book2):
    builder = InstanceBuilder("lib")
    builder.children("lib", "book", ["B1", "B2"])
    builder.opf("lib", {
        ("B1",): p_book1 * (1 - p_book2),
        ("B2",): (1 - p_book1) * p_book2,
        ("B1", "B2"): p_book1 * p_book2,
        (): (1 - p_book1) * (1 - p_book2),
    })
    builder.children("B1", "author", ["A1"])
    builder.opf("B1", {("A1",): p_author_given_b1, (): 1 - p_author_given_b1})
    builder.children("B2", "author", ["A2"])
    builder.opf("B2", {("A2",): 0.5, (): 0.5})
    builder.leaf("A1", "name", ["Hung"], {"Hung": 1.0})
    builder.leaf("A2", "name", vpf={"Hung": 1.0})
    return builder.build()


def envelope(instances):
    """The interval instance bracketing every source's OPF entry."""
    first = instances[0]
    ipi = IntervalProbabilisticInstance(first.weak.copy())
    for oid in first.weak.non_leaves():
        entries = {}
        child_sets = set()
        for pi in instances:
            child_sets |= {c for c, _ in pi.opf(oid).support()}
        for child_set in child_sets:
            values = [pi.opf(oid).prob(child_set) for pi in instances]
            entries[child_set] = ProbInterval(min(values), max(values))
        ipi.set_iopf(oid, IntervalOPF(entries))
    return ipi


def main() -> None:
    system_a = source_instance(0.8, 0.9, 0.4)
    system_b = source_instance(0.6, 0.7, 0.5)
    sources = [system_a, system_b]

    combined = envelope(sources)
    combined.validate()
    print("Interval envelope over two extraction systems:")
    for pi in sources:
        print(f"  contains source? {combined.contains_point_instance(pi)}")

    tightened = combined.tighten()
    before = combined.iopf("lib").interval(frozenset({"B1"}))
    after = tightened.iopf("lib").interval(frozenset({"B1"}))
    print(f"\n  sum-to-one tightening of P(exactly B1): {before} -> {after}")

    print("\nInterval queries (each source's exact answer must fall inside):")
    chain = interval_chain_probability(combined, ["lib", "B1", "A1"])
    print(f"  P(lib -> B1 -> A1) in {chain}")
    for index, pi in enumerate(sources):
        from repro.queries import chain_probability

        exact = chain_probability(pi, ["lib", "B1", "A1"])
        inside = chain.lo - 1e-9 <= exact <= chain.hi + 1e-9
        print(f"    system {'AB'[index]}: {exact:.4f}  inside: {inside}")

    point = interval_point_query(combined, "lib.book.author", "A1")
    print(f"  P(A1 in lib.book.author) in {point}")
    exists = interval_existential_query(combined, "lib.book.author")
    print(f"  P(any author)            in {exists}")
    for index, pi in enumerate(sources):
        exact_point = point_query(pi, "lib.book.author", "A1")
        exact_exists = existential_query(pi, "lib.book.author")
        print(f"    system {'AB'[index]}: point {exact_point:.4f}, "
              f"exists {exact_exists:.4f}")

    mid = combined.midpoint_instance()
    print(f"\n  midpoint selection P(A1) = "
          f"{point_query(mid, 'lib.book.author', 'A1'):.4f} "
          "(one representative inside the envelope)")


if __name__ == "__main__":
    main()
