"""A PXQL session: the query language driving a persistent database.

Run with:  python examples/pxql_session.py

Demonstrates the textual layer on top of the algebra: a database of
named probabilistic instances (persisted as JSON files in a temporary
directory), loaded and manipulated entirely through PXQL statements —
including the cross-statement composition the paper's Section 2
situations require (project, then query the projection; select, then
query the selection).
"""

import tempfile

from repro.core.builder import InstanceBuilder
from repro.pxql import Interpreter
from repro.storage import Database


def build_catalog() -> InstanceBuilder:
    builder = InstanceBuilder("shop")
    builder.children("shop", "item", ["laptop", "phone"])
    builder.opf("shop", {
        ("laptop",): 0.2, ("phone",): 0.1, ("laptop", "phone"): 0.6, (): 0.1,
    })
    builder.children("laptop", "review", ["rev1", "rev2"])
    builder.opf("laptop", {
        ("rev1",): 0.4, ("rev2",): 0.1, ("rev1", "rev2"): 0.3, (): 0.2,
    })
    builder.children("phone", "review", ["rev3"])
    builder.opf("phone", {("rev3",): 0.7, (): 0.3})
    builder.leaf("rev1", "stars", [1, 2, 3, 4, 5], {4: 0.6, 5: 0.4})
    builder.leaf("rev2", "stars", vpf={1: 0.5, 3: 0.5})
    builder.leaf("rev3", "stars", vpf={5: 1.0})
    return builder


SESSION = """
LIST
SHOW catalog
POINT shop.item : laptop IN catalog
EXISTS shop.item.review IN catalog
PROJECT ANCESTOR shop.item.review FROM catalog AS reviews
POINT shop.item.review : rev1 IN reviews
SELECT shop.item = laptop FROM catalog AS laptop_sure
POINT shop.item.review : rev1 IN laptop_sure
SELECT shop.item.review = rev1 AND VALUE = 5 FROM catalog AS five_star
PROB rev1 IN five_star
PROJECT SINGLE shop.item.review FROM catalog AS flat_reviews
WORLDS flat_reviews LIMIT 6
SAVE reviews
LIST
"""


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="pxql-demo-") as tmp:
        database = Database(tmp)
        database.register("catalog", build_catalog().build())
        database.save("catalog")

        interpreter = Interpreter(database)
        for line in SESSION.strip().splitlines():
            line = line.strip()
            if not line:
                continue
            print(f"pxql> {line}")
            print(interpreter.execute(line).text)
            print()

        # The saved projection persists: a fresh session can reopen it.
        fresh = Interpreter(Database(tmp))
        print("pxql> (new session) POINT shop.item.review : rev1 IN reviews")
        print(fresh.execute("POINT shop.item.review : rev1 IN reviews").text)


if __name__ == "__main__":
    main()
