"""Maintaining a probabilistic knowledge base over time.

Run with:  python examples/kb_maintenance.py

A tour of the maintenance layer built around the core model: updates
(assert/retract/insert/soft evidence), the exhaustive linter, analysis
statistics, Monte-Carlo estimation on models too big to enumerate, and
bounded unrolling of a cyclic specification — the paper's stated future
work.
"""

from repro.algebra.updates import (
    assert_child,
    insert_child,
    retract_child,
    reweight_opf,
    set_value,
)
from repro.analysis import expected_size, summarize, world_entropy
from repro.core import InstanceBuilder, TabularOPF, lint_instance
from repro.core.instance import ProbabilisticInstance
from repro.core.lint import format_issues
from repro.core.unroll import unroll
from repro.core.weak_instance import WeakInstance
from repro.queries import QueryEngine, expected_match_count
from repro.semantics import estimate_point_query
from repro.workloads import WorkloadSpec, generate_workload


def build_kb():
    builder = InstanceBuilder("kb")
    builder.children("kb", "paper", ["P1", "P2"])
    builder.opf("kb", {("P1",): 0.3, ("P2",): 0.1, ("P1", "P2"): 0.5, (): 0.1})
    builder.children("P1", "author", ["a1", "a2"])
    builder.opf("P1", {("a1",): 0.6, ("a1", "a2"): 0.3, ("a2",): 0.1})
    builder.children("P2", "author", ["a3"])
    builder.opf("P2", {("a3",): 0.8, (): 0.2})
    builder.leaf("a1", "name", ["Hung", "Getoor"], {"Hung": 0.8, "Getoor": 0.2})
    builder.leaf("a2", "name", vpf={"Getoor": 1.0})
    builder.leaf("a3", "name", vpf={"Hung": 1.0})
    return builder.build()


def main() -> None:
    kb = build_kb()
    print("== Initial knowledge base ==")
    print(f"  {summarize(kb)}")
    print(f"  world entropy: {world_entropy(kb):.3f} bits")
    print(f"  lint: {format_issues(lint_instance(kb))}")

    print("\n== A curator confirms P1 and fixes a1's name ==")
    kb2 = assert_child(kb, "kb", "P1")
    kb2 = set_value(kb2, "a1", "Hung")
    engine = QueryEngine(kb2)
    print(f"  P(P1) now: {engine.point('kb.paper', 'P1'):.3f}")
    print(f"  world entropy fell to {world_entropy(kb2):.3f} bits")

    print("\n== A reviewer reports a2 is NOT an author of P1 ==")
    kb3 = retract_child(kb2, "P1", "a2")
    print(f"  objects now: {sorted(kb3.objects)}")
    print(f"  E[#authors via kb.paper.author] = "
          f"{expected_match_count(kb3, 'kb.paper.author'):.3f}")

    print("\n== A crawler finds a new candidate paper (p=0.35) ==")
    kb4 = insert_child(kb3, "kb", "paper", "P9", 0.35)
    print(f"  P(P9 exists) = {QueryEngine(kb4).point('kb.paper', 'P9'):.3f}")
    print(f"  E[|world|] = {expected_size(kb4):.2f} objects")

    print("\n== Soft evidence: a citation count suggests P2 has an author ==")
    kb5 = reweight_opf(kb4, "P2", lambda c: 3.0 if c else 1.0)
    print(f"  P(a3 | P2) before: 0.80, after: "
          f"{kb5.opf('P2').marginal_inclusion('a3'):.3f}")

    print("\n== Scale: estimating on a model too large to enumerate ==")
    big = generate_workload(
        WorkloadSpec(depth=6, branching=4, labeling="SL", seed=5,
                     opf_kind="independent")
    )
    target = sorted(big.instance.weak.leaves())[0]
    # Exact local answer (tree) vs Monte-Carlo estimate (works on DAGs too).
    graph = big.instance.weak.graph()
    labels, current = [], target
    while current != big.instance.root:
        (parent,) = graph.parents(current)
        labels.append(graph.label(parent, current))
        current = parent
    labels.reverse()
    path = ".".join([big.instance.root, *labels])
    exact = QueryEngine(big.instance).point(path, target)
    estimate = estimate_point_query(big.instance, path, target,
                                    samples=2000, seed=11)
    print(f"  instance: {big.num_objects} objects, "
          f"{big.total_entries} interpretation entries")
    print(f"  exact P = {exact:.4f}, sampled = {estimate}")

    print("\n== Future work made concrete: a cyclic model, unrolled ==")
    weak = WeakInstance("page")
    weak.set_lch("page", "link", ["page"])
    cyclic = ProbabilisticInstance(weak)
    cyclic.set_opf("page", TabularOPF({("page",): 0.6, (): 0.4}))
    for horizon in (1, 3, 6):
        flat = unroll(cyclic, horizon)
        engine = QueryEngine(flat)
        chain = ["page"] + [f"page@{d}" for d in range(1, min(horizon, 3) + 1)]
        print(f"  horizon {horizon}: {len(flat)} copies, "
              f"P(3-hop link chain) = {engine.chain(chain):.4f}"
              if horizon >= 3 else
              f"  horizon {horizon}: {len(flat)} copies")


if __name__ == "__main__":
    main()
